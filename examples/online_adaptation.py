"""Scenario: day-to-night operation with drift-triggered rescheduling.

§2.1's scheduler "periodically collects performance and resource
information" and re-decides.  Here a chemical-plant deployment (the
paper's §1 motivating example) runs through three operating phases:

1. normal daytime traffic — the deployed decision matches expectations;
2. an uplink degradation (weather) triples transmission latency;
3. recovery.

The :class:`~repro.core.OnlineScheduler` detects the sustained deviation
and re-optimizes, while a fire-and-forget scheduler would keep paying
the degraded latency.

Run:  python examples/online_adaptation.py
"""

import numpy as np

from repro.baselines import RandomSearch
from repro.bench.reporting import format_table
from repro.core import DriftDetector, EVAProblem, OnlineScheduler, make_preference


def main() -> None:
    problem = EVAProblem(n_streams=5, bandwidths_mbps=[10.0, 20.0, 30.0])
    pref = make_preference(problem, weights=[2.0, 1.5, 1.0, 0.5, 1.0])

    # Environment: epochs 3..6 suffer a degraded uplink (3x transmission
    # latency); before/after, the world matches the analytic outcome.
    degraded_problem = EVAProblem(
        n_streams=5, bandwidths_mbps=[1.0, 2.0, 3.0]  # a tenth of the uplink
    )

    def environment(decision, epoch):
        prob = degraded_problem if 3 <= epoch <= 6 else problem
        return prob.evaluate(decision.resolutions, decision.fps)

    # Scheduler factory: after drift, re-optimize against the *current*
    # conditions (a production system would re-profile; here the factory
    # peeks at the phase for brevity).
    phase = {"degraded": False}

    def factory(prob, epoch):
        active = degraded_problem if 3 <= epoch <= 6 else problem
        return RandomSearch(active, benefit_fn=pref.value, n_iterations=60, rng=epoch)

    online = OnlineScheduler(
        problem,
        factory,
        environment=environment,
        detector=DriftDetector(rel_threshold=0.5, patience=2),
    )
    log = online.run(10)

    rows = [
        [
            r.epoch,
            f"{r.expected[0]:.3f}",
            f"{r.observed[0]:.3f}",
            f"{r.deviation * 100:.0f}%",
            "RE-OPTIMIZED" if r.reoptimized else "",
        ]
        for r in log
    ]
    print(
        format_table(
            ["epoch", "expected ltc (s)", "observed ltc (s)", "max deviation", "action"],
            rows,
            title="Online monitoring log (uplink degraded during epochs 3-6)",
        )
    )
    print(f"\nre-optimizations triggered: {online.n_reoptimizations}")
    print(
        "The drift detector waits out single-epoch noise (patience=2) and "
        "re-plans only on sustained deviation; the post-recovery deviation "
        "stays under the threshold, so the adapted plan is kept."
    )


if __name__ == "__main__":
    main()
