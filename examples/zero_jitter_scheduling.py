"""Deep-dive: the zero-jitter scheduling theory made visible.

Walks through §3/§4.1 of the paper on the discrete-event testbed:

1. a high-rate stream self-contends (Fig. 3a) — splitting fixes it;
2. co-scheduling non-harmonic periods causes jitter (Fig. 4);
3. Algorithm 1's grouping + Theorem-1 staggering measures exactly
   zero queueing delay, validating Theorems 1–3 empirically.

Run:  python examples/zero_jitter_scheduling.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.sched import (
    PeriodicStream,
    group_streams,
    resolve_assignment,
    split_high_rate_streams,
    stagger_offsets,
    theorem1_zero_jitter,
)
from repro.sim import EdgeCluster, StreamSpec


def run_group(streams, assignment, offsets=None, horizon=12.0, n_servers=2):
    specs = [
        StreamSpec(
            s.stream_id,
            fps=s.fps,
            processing_time=s.processing_time,
            bits_per_frame=1e-3,
            offset=0.0 if offsets is None else offsets[i],
        )
        for i, s in enumerate(streams)
    ]
    rep = EdgeCluster([1e6] * n_servers).run(specs, assignment, horizon)
    return rep


def main() -> None:
    # ---- 1. self-contention of a high-rate stream -------------------------
    print("1) High-rate stream: 10 fps x 0.15 s/frame on one server")
    hot = PeriodicStream(0, fps=10.0, resolution=1600, processing_time=0.15,
                         bits_per_frame=1.0)
    rep = run_group([hot], [0], horizon=5.0)
    print(f"   un-split: max queueing delay = {rep.streams[0].queueing_delays.max():.2f} s"
          f" (grows every frame)")
    subs = split_high_rate_streams([hot])
    rep = run_group(subs, [0, 1], n_servers=2, horizon=5.0)
    worst = max(m.max_jitter for m in rep.streams.values())
    print(f"   split into {len(subs)} sub-streams on 2 servers: max delay = {worst:.4f} s")

    # ---- 2. non-harmonic co-scheduling ------------------------------------
    print("\n2) Non-harmonic periods (0.3 s & 0.5 s) share one server")
    s1 = PeriodicStream(1, fps=1 / 0.3, resolution=960, processing_time=0.12,
                        bits_per_frame=1.0)
    s2 = PeriodicStream(2, fps=2.0, resolution=960, processing_time=0.12,
                        bits_per_frame=1.0)
    rep = run_group([s1, s2], [0, 0])
    print(f"   Theorem-1 premise holds? {theorem1_zero_jitter([s1, s2])}")
    print(f"   measured max jitter = {rep.max_jitter * 1e3:.1f} ms  (Fig. 4's pathology)")

    # ---- 3. Algorithm 1 to the rescue --------------------------------------
    print("\n3) Algorithm 1 on six mixed-rate streams, 3 servers")
    rng = np.random.default_rng(0)
    streams = [
        PeriodicStream(
            i,
            fps=float(rng.choice([2.0, 5.0, 10.0, 15.0])),
            resolution=float(rng.choice([600, 900, 1200])),
            processing_time=float(rng.uniform(0.01, 0.05)),
            bits_per_frame=float(rng.uniform(1e4, 1e5)),
        )
        for i in range(6)
    ]
    grouping = group_streams(streams, 3)
    assignment = resolve_assignment(grouping, [10.0, 20.0, 30.0], streams)
    offsets_by_stream = {}
    for grp in grouping.groups:
        for s, off in zip(grp, stagger_offsets(grp)):
            offsets_by_stream[s.stream_id] = off
    offsets = [offsets_by_stream[s.stream_id] for s in streams]
    rep = run_group(streams, assignment, offsets=offsets, n_servers=3)

    rows = [
        [
            s.stream_id,
            f"{1 / s.period:.0f} fps",
            f"{s.processing_time * 1e3:.0f} ms",
            assignment[i],
            f"{rep.streams[s.stream_id].max_jitter * 1e6:.2f} µs",
        ]
        for i, s in enumerate(streams)
    ]
    print(
        format_table(
            ["stream", "rate", "proc time", "server", "max jitter"],
            rows,
        )
    )
    print(f"   cluster-wide max jitter: {rep.max_jitter * 1e6:.3f} µs "
          "(zero, as Theorem 1 promises)")


if __name__ == "__main__":
    main()
