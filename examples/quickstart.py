"""Quickstart: schedule 6 camera streams onto 4 edge servers with PaMO.

Builds an EVA problem, lets PaMO learn the (hidden) system preference
from pairwise comparisons, and prints the recommended per-stream
configuration and server assignment next to the JCAB/FACT baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import FACT, JCAB
from repro.bench.reporting import format_table
from repro.core import EVAProblem, PaMO, make_preference
from repro.pref import DecisionMaker


def main() -> None:
    # --- the system -------------------------------------------------------
    # 6 cameras, 4 edge servers with uneven uplinks (Mbps).
    problem = EVAProblem(n_streams=6, bandwidths_mbps=[5.0, 10.0, 20.0, 30.0])

    # --- the (hidden) system preference ------------------------------------
    # Eq. 13 with a latency- and energy-heavy weighting: this stands in
    # for the operator's pricing rules.  PaMO never sees these weights —
    # it only gets to ask "which of these two outcomes do you prefer?".
    true_pref = make_preference(problem, weights=[2.0, 1.0, 0.5, 0.5, 2.0])
    decision_maker = DecisionMaker(true_pref, rng=0)

    # --- run PaMO -----------------------------------------------------------
    pamo = PaMO(problem, decision_maker=decision_maker, rng=0, n_iterations=10, delta=0.01)
    result = pamo.optimize()
    d = result.decision
    print("PaMO recommendation")
    print(
        format_table(
            ["stream", "resolution (px)", "fps"],
            [[i, int(r), s] for i, (r, s) in enumerate(zip(d.resolutions, d.fps))],
        )
    )
    print(
        f"\nconverged in {result.n_iterations} BO iterations, "
        f"{result.n_dm_queries} decision-maker queries"
    )
    names = ("latency(s)", "mAP", "Mbps", "TFLOP/s", "W")
    print("outcome:", {n: round(v, 3) for n, v in zip(names, d.outcome)})

    # --- compare with the single-objective baselines -----------------------
    # Every method's final decision is replayed on the discrete-event
    # testbed, so schedules that violate the zero-jitter constraint pay
    # their real queueing delay (as on the paper's Jetson testbed).
    measured = problem.evaluate_measured(d.resolutions, d.fps)
    rows = [["PaMO", float(true_pref.value(measured))]]
    for method in (JCAB(problem, rng=0), FACT(problem)):
        out = method.optimize().decision
        y = problem.evaluate_decision(
            out.resolutions, out.fps, out.assignment, measured=True
        )
        rows.append([out.method, float(true_pref.value(y))])
    rows.sort(key=lambda r: -r[1])
    print()
    print(
        format_table(
            ["method", "true system benefit (higher is better)"],
            rows,
            title="True-benefit comparison",
        )
    )


if __name__ == "__main__":
    main()
