"""Scenario: city traffic monitoring under tiered electricity pricing.

The paper's §1 motivates preference-awareness with intricate pricing:
tiered electricity, per-operator traffic prices, QoS-dependent revenue.
This example models a city deployment of 8 intersection cameras on 5
edge servers, and contrasts two operating regimes:

* **off-peak** — electricity is cheap; the operator's benefit is
  dominated by detection accuracy (incident response quality);
* **peak** — tiered pricing kicks in; energy deviations cost 4x, and
  network traffic is billed at a premium.

PaMO is re-run per regime and adapts its configuration; the fixed
single-objective baselines (JCAB with its accuracy/energy weighting,
FACT with latency/accuracy) cannot follow the regime change as well.

Run:  python examples/traffic_monitoring.py
"""

import numpy as np

from repro.baselines import FACT, JCAB
from repro.bench.reporting import format_table
from repro.core import EVAProblem, PaMO, make_preference
from repro.pref import DecisionMaker
from repro.video import default_library

REGIMES = {
    # weights in canonical order [ltc, acc, net, com, eng]
    "off-peak (accuracy first)": [1.0, 3.0, 0.5, 0.5, 0.5],
    "peak (tiered energy/net)": [1.0, 1.0, 2.5, 0.5, 4.0],
}


def main() -> None:
    # Cameras watch different scenes: dense downtown crossings encode
    # hotter (texture) than sparse arterial roads.
    library = default_library(n_frames=30, rng=1)
    textures = [clip.config.texture for clip in library.take(8)]
    problem = EVAProblem(
        n_streams=8,
        bandwidths_mbps=[5.0, 10.0, 15.0, 25.0, 30.0],
        textures=textures,
    )

    for regime, weights in REGIMES.items():
        print(f"\n=== {regime} ===")
        pref = make_preference(problem, weights=weights)
        dm = DecisionMaker(pref, rng=0)
        pamo_out = PaMO(problem, decision_maker=dm, rng=0, n_iterations=8).optimize()

        rows = []
        d = pamo_out.decision
        rows.append(
            [
                "PaMO",
                float(pref.value(d.outcome)),
                round(float(np.mean(d.resolutions)), 0),
                round(float(np.mean(d.fps)), 1),
                round(d.outcome[4], 1),
            ]
        )
        for base in (JCAB(problem, rng=0), FACT(problem)):
            out = base.optimize().decision
            rows.append(
                [
                    out.method,
                    float(pref.value(out.outcome)),
                    round(float(np.mean(out.resolutions)), 0),
                    round(float(np.mean(out.fps)), 1),
                    round(out.outcome[4], 1),
                ]
            )
        rows.sort(key=lambda r: -r[1])
        print(
            format_table(
                ["method", "true benefit", "mean res", "mean fps", "power (W)"],
                rows,
            )
        )

    print(
        "\nPaMO shifts toward low-power / low-traffic configurations in the "
        "peak regime while the baselines keep their fixed operating point."
    )


if __name__ == "__main__":
    main()
