"""Deep-dive: learning a pricing preference from pairwise comparisons.

Reproduces §4.2's workflow interactively: a hidden Eq.-13 preference
(known only to the simulated decision maker) is recovered by the
pairwise-comparison GP — the machinery behind the paper's Fig. 9.

The EUBO-vs-random comparison also exposes a subtlety worth knowing:
EUBO asks about pairs likely to contain the *best* outcome, so it
concentrates model accuracy around the argmax (what the BO loop
needs), while uniformly random questions spread accuracy over the
whole space (which is what a uniform pairwise test set measures).
Both curves are printed; judge each against its own goal.

Run:  python examples/preference_exploration.py
"""

import numpy as np

from repro.bench.reporting import format_series
from repro.core import EVAProblem, make_preference
from repro.pref import DecisionMaker, PreferenceLearner
from repro.pref.metrics import pairwise_accuracy, sample_test_pairs


def learning_curve(eubo: bool, seed: int, checkpoints) -> list[float]:
    problem = EVAProblem(n_streams=6, bandwidths_mbps=[10.0, 20.0, 30.0, 15.0])
    hidden = make_preference(problem, weights=[1.0, 2.5, 0.4, 0.8, 1.8])
    dm = DecisionMaker(hidden, rng=seed)

    gen = np.random.default_rng(seed)
    outcomes = np.stack(
        [problem.evaluate(*problem.sample_decision(gen)) for _ in range(40)]
    )
    learner = PreferenceLearner(outcomes, decision_maker=dm, rng=seed)
    learner.initialize(3)
    test_pairs = sample_test_pairs(outcomes, 400, rng=999)

    curve = []
    asked = 3
    for target in checkpoints:
        while asked < target:
            if eubo:
                learner.query_step()
            else:
                i, j = gen.choice(len(outcomes), 2, replace=False)
                learner._ask(int(i), int(j))
                learner.model.fit(learner._data)
            asked += 1
        curve.append(pairwise_accuracy(learner.utility, hidden.value, test_pairs))
    return curve


def main() -> None:
    checkpoints = [3, 6, 9, 18, 27]
    seeds = range(3)
    eubo_curves = np.array([learning_curve(True, s, checkpoints) for s in seeds])
    rand_curves = np.array([learning_curve(False, s, checkpoints) for s in seeds])

    print(
        format_series(
            "comparisons",
            checkpoints,
            {
                "EUBO selection": eubo_curves.mean(axis=0),
                "random selection": rand_curves.mean(axis=0),
            },
            title="Pairwise prediction accuracy (uniform test pairs)",
        )
    )
    # Accuracy *at the top*: does the model pick the true best outcome?
    def top1_hit(eubo: bool) -> float:
        hits = 0
        for s in seeds:
            problem = EVAProblem(
                n_streams=6, bandwidths_mbps=[10.0, 20.0, 30.0, 15.0]
            )
            hidden = make_preference(problem, weights=[1.0, 2.5, 0.4, 0.8, 1.8])
            dm = DecisionMaker(hidden, rng=s)
            gen = np.random.default_rng(s)
            outcomes = np.stack(
                [problem.evaluate(*problem.sample_decision(gen)) for _ in range(40)]
            )
            learner = PreferenceLearner(outcomes, decision_maker=dm, rng=s).initialize(3)
            for _ in range(15):
                if eubo:
                    learner.query_step()
                else:
                    i, j = gen.choice(len(outcomes), 2, replace=False)
                    learner._ask(int(i), int(j))
                    learner.model.fit(learner._data)
            pred_best = int(np.argmax(learner.utility(outcomes)))
            true_order = np.argsort(-hidden.value(outcomes))
            hits += int(pred_best in true_order[:3])
        return hits / len(list(seeds))

    print(
        f"\ntop-3 identification of the truly best outcome after 18 queries: "
        f"EUBO {top1_hit(True) * 100:.0f}% vs random {top1_hit(False) * 100:.0f}% "
        "— EUBO spends its question budget where the optimizer needs it."
    )
    final = eubo_curves.mean(axis=0)[-1]
    print(
        f"With {checkpoints[-1]} comparisons the learned preference ranks "
        f"{final * 100:.1f}% of uniform outcome pairs like the hidden pricing "
        "rules — without ever seeing a single weight."
    )


if __name__ == "__main__":
    main()
