"""Setup shim.

The execution environment has no `wheel` package and no network, so PEP
660 editable installs (`pip install -e .`) fail with "invalid command
'bdist_wheel'".  `python setup.py develop` provides the equivalent
egg-link editable install using only setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
