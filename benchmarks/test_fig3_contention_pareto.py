"""Figure 3 — (a) latency accumulation under contention, (b) Pareto set.

Paper claims: (a) when two streams overload one server, queueing delay
accumulates frame over frame (Video 2's 10 fps × 0.1 s/frame alone
saturates the node); (b) the EVA outcome space contains multiple
mutually non-dominating solutions, so a scalar preference is required
to pick one.
"""

import numpy as np

from conftest import run_once
from repro.bench import fig3a_contention, fig3b_pareto, format_table


def test_fig3a_latency_accumulation(benchmark):
    data = run_once(benchmark, fig3a_contention, horizon=5.0)
    v2 = data["video2_delays"]
    # queueing delay grows essentially linearly — the figure's staircase
    assert v2[-1] > v2[0]
    assert v2[-1] > 0.5, "delay accumulates to large values"
    diffs = np.diff(v2)
    assert np.mean(diffs >= -1e-9) > 0.9, "delay is (weakly) increasing"
    # Video 1 (5 fps) also suffers because the server is shared
    assert data["video1_delays"].max() > 0.0
    print(f"\nFig.3a: video2 queueing delay frame1={v2[0]:.2f}s -> last={v2[-1]:.2f}s")


def test_fig3b_pareto_solutions(benchmark):
    data = run_once(benchmark, fig3b_pareto, n_decisions=60, rng=0)
    front = data["pareto_indices"]
    assert len(front) >= 3, "multiple Pareto-optimal solutions exist"

    # §2.3 check: representatives must be mutually non-dominating.
    from repro.baselines.search import orient_minimize

    oriented = orient_minimize(data["outcomes"])
    reps = data["representatives"]
    for i in reps:
        for j in reps:
            if i == j:
                continue
            dominates = np.all(oriented[i] <= oriented[j]) and np.any(
                oriented[i] < oriented[j]
            )
            assert not dominates

    rows = [
        [f"Solution {k + 1}"] + list(np.round(data["normalized"][idx], 3))
        for k, idx in enumerate(reps)
    ]
    print()
    print(
        format_table(
            ["solution", "ltc", "acc", "net", "com", "eng"],
            rows,
            title="Fig.3b normalized outcomes of Pareto representatives",
        )
    )
