"""Figure 4 — delay jitter from poor scheduling vs Algorithm 1.

Paper claim: co-scheduling streams with non-harmonic periods on one
server causes delay jitter (frames postponed behind earlier frames),
while the group-based heuristic produces schedules with exactly zero
jitter (Theorem 1 + Theorem 3).
"""

from conftest import run_once
from repro.bench import fig4_jitter


def test_fig4_zero_jitter_scheduling(benchmark):
    data = run_once(benchmark, fig4_jitter, horizon=12.0)
    assert data["bad_assignment_jitter"] > 0.01, "naive packing must jitter"
    assert data["algorithm1_jitter"] < 1e-9, "Algorithm 1 guarantees zero jitter"
    print(
        f"\nFig.4: naive co-scheduling max jitter = "
        f"{data['bad_assignment_jitter'] * 1e3:.1f} ms; "
        f"Algorithm 1 max jitter = {data['algorithm1_jitter'] * 1e3:.4f} ms"
    )
