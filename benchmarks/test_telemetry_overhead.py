"""Guard: disabled telemetry must add <2% to a small PaMO run.

The hot paths (BO loop, surrogate refits, simulator) are instrumented
unconditionally, so the disabled fast path — one attribute check and a
branch per call — has a hard budget.  This bench (1) times a small
PaMO run with telemetry off, (2) counts how many telemetry API calls
that run actually makes, (3) measures the per-call cost of the
disabled path in a tight loop, and asserts that the run's total
instrumentation cost stays under 2% of its wall-clock.
"""

import time

from conftest import run_once
from repro.bench.harness import make_problem, run_method
from repro.core import make_preference
from repro.obs import telemetry

TINY_PAMO = dict(
    n_profile=30,
    n_outcome_space=16,
    n_init_comparisons=2,
    n_pref_queries=6,
    batch_size=2,
    n_iterations=4,
    n_pool=12,
    n_mc_samples=16,
)


def _count_disabled_calls(fn) -> int:
    """Run ``fn`` with the registry's API wrapped in counting shims."""
    calls = {"n": 0}
    originals = {}
    for name in ("span", "counter", "gauge", "event"):
        orig = getattr(telemetry, name)
        originals[name] = orig

        def shim(*args, _orig=orig, **kwargs):
            calls["n"] += 1
            return _orig(*args, **kwargs)

        setattr(telemetry, name, shim)
    try:
        fn()
    finally:
        for name in originals:
            delattr(telemetry, name)  # uncover the bound methods
    return calls["n"]


def test_telemetry_overhead(benchmark):
    def run():
        assert not telemetry.enabled
        problem = make_problem(4, 3, rng=0)
        pref = make_preference(problem)

        t0 = time.perf_counter()
        run_method("PaMO", problem, pref, seed=0, pamo_kwargs=TINY_PAMO)
        run_s = time.perf_counter() - t0

        n_calls = _count_disabled_calls(
            lambda: run_method(
                "PaMO", problem, pref, seed=0, pamo_kwargs=TINY_PAMO
            )
        )

        m = 200_000
        t0 = time.perf_counter()
        for _ in range(m):
            with telemetry.span("bench"):
                pass
            telemetry.counter("bench")
        per_call = (time.perf_counter() - t0) / (2 * m)

        overhead_s = n_calls * per_call
        return run_s, n_calls, overhead_s

    run_s, n_calls, overhead_s = run_once(benchmark, run)
    print()
    print(
        f"small PaMO run: {run_s:.3f}s, {n_calls} telemetry calls, "
        f"estimated disabled-path cost {overhead_s * 1e3:.3f} ms "
        f"({100 * overhead_s / run_s:.4f}%)"
    )
    assert n_calls > 0, "PaMO run hit no instrumentation sites"
    assert overhead_s < 0.02 * run_s, (
        f"disabled telemetry costs {100 * overhead_s / run_s:.2f}% "
        f"of a small PaMO run (budget: 2%)"
    )
