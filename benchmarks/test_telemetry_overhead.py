"""Guards: telemetry and live metrics must each add <2% to a run.

The hot paths (BO loop, surrogate refits, simulator) are instrumented
unconditionally, so the disabled fast path — one attribute check and a
branch per call — has a hard budget.  The first bench (1) times a
small PaMO run with telemetry off, (2) counts how many telemetry API
calls that run actually makes, (3) measures the per-call cost of the
disabled path in a tight loop, and asserts that the run's total
instrumentation cost stays under 2% of its wall-clock.

The second bench applies the same budget to the live metrics layer:
during a churn-heavy serve run with a registry and health monitor
attached, the entire per-epoch observability step
(``SchedulerService._observe`` — counters, gauges, the latency
histogram, SLO evaluation) must cost under 2% of the run, and one
``/metrics`` scrape render is timed for the EXPERIMENTS log.
"""

import time

from conftest import run_once
from repro.bench.harness import make_problem, run_method
from repro.core import make_preference
from repro.obs import telemetry

TINY_PAMO = dict(
    n_profile=30,
    n_outcome_space=16,
    n_init_comparisons=2,
    n_pref_queries=6,
    batch_size=2,
    n_iterations=4,
    n_pool=12,
    n_mc_samples=16,
)


def _count_disabled_calls(fn) -> int:
    """Run ``fn`` with the registry's API wrapped in counting shims."""
    calls = {"n": 0}
    originals = {}
    for name in ("span", "counter", "gauge", "event"):
        orig = getattr(telemetry, name)
        originals[name] = orig

        def shim(*args, _orig=orig, **kwargs):
            calls["n"] += 1
            return _orig(*args, **kwargs)

        setattr(telemetry, name, shim)
    try:
        fn()
    finally:
        for name in originals:
            delattr(telemetry, name)  # uncover the bound methods
    return calls["n"]


def test_telemetry_overhead(benchmark):
    def run():
        assert not telemetry.enabled
        problem = make_problem(4, 3, rng=0)
        pref = make_preference(problem)

        t0 = time.perf_counter()
        run_method("PaMO", problem, pref, seed=0, pamo_kwargs=TINY_PAMO)
        run_s = time.perf_counter() - t0

        n_calls = _count_disabled_calls(
            lambda: run_method(
                "PaMO", problem, pref, seed=0, pamo_kwargs=TINY_PAMO
            )
        )

        m = 200_000
        t0 = time.perf_counter()
        for _ in range(m):
            with telemetry.span("bench"):
                pass
            telemetry.counter("bench")
        per_call = (time.perf_counter() - t0) / (2 * m)

        overhead_s = n_calls * per_call
        return run_s, n_calls, overhead_s

    run_s, n_calls, overhead_s = run_once(benchmark, run)
    print()
    print(
        f"small PaMO run: {run_s:.3f}s, {n_calls} telemetry calls, "
        f"estimated disabled-path cost {overhead_s * 1e3:.3f} ms "
        f"({100 * overhead_s / run_s:.4f}%)"
    )
    assert n_calls > 0, "PaMO run hit no instrumentation sites"
    assert overhead_s < 0.02 * run_s, (
        f"disabled telemetry costs {100 * overhead_s / run_s:.2f}% "
        f"of a small PaMO run (budget: 2%)"
    )


def test_metrics_overhead(benchmark):
    """Live registry + SLO evaluation under 2% of a churny serve run.

    Scale matches the paper's evaluation range (20-60 streams): a
    40-stream / 10-server fleet under heavy churn.  The serve run is
    repeated three times and the *best* (lowest) overhead ratio is
    gated — wall-clock on a shared CI host is noisy (scheduler
    preemption can triple one run's apparent per-epoch cost), and the
    minimum is the standard low-noise estimate of the true cost.
    """
    import numpy as np

    from repro.core.problem import EVAProblem
    from repro.obs import HealthMonitor, MetricsRegistry, default_rules
    from repro.obs.exposition import render_prometheus
    from repro.serve import ChurnProfile, SchedulerService, approx_preference
    from repro.serve.loadgen import generate_load

    def serve_run():
        rng = np.random.default_rng(0)
        problem = EVAProblem(
            40,
            rng.choice([10.0, 15.0, 20.0, 25.0], size=10),
            textures=rng.uniform(0.7, 1.3, size=40),
        )
        events = generate_load(
            40,
            10,
            profile=ChurnProfile(
                hours=0.2,
                arrivals_per_hour=600,
                departures_per_hour=400,
                drifts_per_hour=60,
                flaps_per_hour=30,
            ),
            seed=0,
        )
        service = SchedulerService(
            problem, preference=approx_preference(problem)
        )
        registry = MetricsRegistry()
        service.attach_observability(
            metrics=registry, monitor=HealthMonitor(default_rules())
        )

        # Wrap the per-epoch observability step with a timer: its total
        # is exactly what live metrics cost the serve loop.
        observed = {"s": 0.0, "n": 0}
        inner = service._observe

        def timed(decision):
            t0 = time.perf_counter()
            inner(decision)
            observed["s"] += time.perf_counter() - t0
            observed["n"] += 1

        service._observe = timed

        service.submit(events)
        t0 = time.perf_counter()
        service.run()
        run_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        text = render_prometheus(registry)
        scrape_s = time.perf_counter() - t0
        assert "repro_serve_decision_latency_seconds_count" in text
        return run_s, observed["s"], observed["n"], scrape_s

    def run():
        return min(
            (serve_run() for _ in range(3)),
            key=lambda r: r[1] / r[0],
        )

    run_s, obs_s, n_epochs, scrape_s = run_once(benchmark, run)
    print()
    print(
        f"serve run (best of 3): {run_s:.3f}s over {n_epochs} epochs, "
        f"metrics+SLO cost {obs_s * 1e3:.3f} ms "
        f"({100 * obs_s / run_s:.4f}%), "
        f"one /metrics render {scrape_s * 1e3:.3f} ms"
    )
    assert n_epochs > 10, "serve run produced too few epochs to measure"
    assert obs_s < 0.02 * run_s, (
        f"live metrics cost {100 * obs_s / run_s:.2f}% "
        f"of a serve run (budget: 2%)"
    )
