"""Benchmark configuration.

Every benchmark regenerates one paper figure.  The figure experiments
are minutes-scale end-to-end runs, so each executes exactly once
(``rounds=1``) — the timing recorded is the figure's regeneration
cost, and the assertions check the paper's qualitative claims.

Scale knobs: set ``REPRO_BENCH_SEEDS`` (default 1) to average over
more repetitions, as the paper does with 3.
"""

from __future__ import annotations

import os


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def bench_seeds() -> tuple[int, ...]:
    n = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
    return tuple(range(max(1, n)))
