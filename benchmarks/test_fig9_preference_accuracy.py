"""Figure 9 — preference-model accuracy vs number of comparison pairs.

Paper claims: pairwise prediction accuracy on 500-sample test sets
rises with the number of training comparisons (3, 6, 9, 18, 27) and
the error drops below 10% once 18 pairs are available.

An ablation run checks the EUBO selection earns its keep over random
pair selection.
"""

import numpy as np

from conftest import run_once
from repro.bench import fig9_preference_accuracy, format_series


def test_fig9_preference_accuracy(benchmark):
    data = run_once(
        benchmark,
        fig9_preference_accuracy,
        pair_counts=(3, 6, 9, 18, 27),
        n_test_pairs=500,
        n_reps=3,
        rng=0,
    )
    acc = np.array(data["accuracy"])
    print()
    print(
        format_series(
            "pairs",
            data["pair_counts"],
            {"accuracy": data["accuracy"], "std": data["accuracy_std"]},
            title="Fig.9 preference-model pairwise accuracy",
        )
    )
    # Trend: weakly improving with more pairs.  (Our preference GP's
    # long-lengthscale prior already scores ~0.85 at 3 pairs — higher
    # than the paper's ~0.45 start — so the growth is milder, but the
    # curve must not *degrade* and must peak past the seed pairs.)
    slope = np.polyfit(data["pair_counts"], acc, 1)[0]
    assert slope > -1e-3, f"accuracy trend negative: {slope:.4f}/pair"
    assert int(np.argmax(acc)) >= 1, "peak accuracy at the 3 seed pairs only"
    # paper band: error < 10% once 18 pairs are available
    assert acc[3] > 0.85, f"accuracy at 18 pairs = {acc[3]:.3f}"
    assert acc[-1] > 0.85


def test_fig9_eubo_vs_random_ablation(benchmark):
    def both():
        eubo = fig9_preference_accuracy(
            pair_counts=(12,), n_test_pairs=300, n_reps=4, rng=1, eubo=True
        )
        rand = fig9_preference_accuracy(
            pair_counts=(12,), n_test_pairs=300, n_reps=4, rng=1, eubo=False
        )
        return eubo["accuracy"][0], rand["accuracy"][0]

    acc_eubo, acc_rand = run_once(benchmark, both)
    print(f"\nFig.9 ablation @12 pairs: EUBO={acc_eubo:.3f}, random={acc_rand:.3f}")
    # EUBO should not lose to random selection (§4.2's efficiency claim)
    assert acc_eubo >= acc_rand - 0.05
