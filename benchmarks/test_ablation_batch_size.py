"""Ablation: qNEI batch size b and MC sample count (Algorithm 2 knobs).

The paper's qNEI "simultaneously recommends b candidate points in each
iteration to facilitate the system to observe benefit values
parallelly".  This bench sweeps b at a fixed total observation budget
and the Monte-Carlo sample count at fixed b — the two cost/quality
dials a deployment must set.
"""

import numpy as np

from conftest import run_once
from repro.bench.harness import FAST_PAMO_KWARGS, make_problem
from repro.bench.reporting import format_table
from repro.core import PaMOPlus, make_preference
from repro.pref import DecisionMaker


def test_ablation_batch_size(benchmark):
    def run():
        problem = make_problem(6, 4, rng=0)
        pref = make_preference(problem)
        total_budget = 24  # observations per run
        rows = []
        for b in (1, 2, 4, 8):
            vals = []
            for seed in range(2):
                kw = dict(FAST_PAMO_KWARGS)
                kw.update(batch_size=b, n_iterations=total_budget // b, delta=1e-9)
                out = PaMOPlus(
                    problem, DecisionMaker(pref, rng=seed), rng=seed, **kw
                ).optimize()
                vals.append(float(pref.value(out.decision.outcome)))
            rows.append((b, float(np.mean(vals))))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["batch size b", "mean true benefit (24-obs budget)"],
            rows,
            title="Ablation: qNEI batch size",
        )
    )
    by_b = dict(rows)
    # Every batch size must land in a sane band; huge batches trade
    # model updates for parallel observation and may degrade slightly.
    spread = max(by_b.values()) - min(by_b.values())
    assert spread < 0.8, f"batch size swings benefit by {spread:.2f}"
    # the paper's b≈4 regime should not be the worst choice
    assert by_b[4] >= min(by_b.values())


def test_ablation_mc_samples(benchmark):
    def run():
        problem = make_problem(6, 4, rng=1)
        pref = make_preference(problem)
        rows = []
        for n_mc in (8, 32, 128):
            vals = []
            for seed in range(2):
                kw = dict(FAST_PAMO_KWARGS)
                kw.update(n_mc_samples=n_mc)
                out = PaMOPlus(
                    problem, DecisionMaker(pref, rng=seed), rng=seed, **kw
                ).optimize()
                vals.append(float(pref.value(out.decision.outcome)))
            rows.append((n_mc, float(np.mean(vals))))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["MC samples", "mean true benefit"],
            rows,
            title="Ablation: qNEI Monte-Carlo sample count",
        )
    )
    vals = [v for _, v in rows]
    # more samples should not make things catastrophically worse
    assert vals[-1] >= vals[0] - 0.3
