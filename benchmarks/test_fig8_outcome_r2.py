"""Figure 8 — outcome-model R² vs training-set size.

Paper claims: R² of the five GP outcome models approaches 1 as the
training set grows 200→600; latency/accuracy/bandwidth/energy reach
<10% error around 400 samples and <5% at 600, computation being the
slowest to converge.
"""

import numpy as np

from conftest import run_once
from repro.bench import fig8_outcome_r2, format_series


def test_fig8_outcome_model_r2(benchmark):
    data = run_once(
        benchmark,
        fig8_outcome_r2,
        train_sizes=(200, 300, 400, 500, 600),
        n_test=20,
        n_reps=3,
        n_frames=36,
        rng=0,
    )
    sizes = data["train_sizes"]
    r2 = data["r2"]
    print()
    print(format_series("train size", sizes, r2, title="Fig.8 outcome-model R²"))

    for m, series in r2.items():
        arr = np.array(series)
        # R² high at scale for every objective
        assert arr[-1] > 0.85, f"{m}: final R² {arr[-1]:.3f} too low"
        # no catastrophic degradation with more data
        assert arr[-1] >= arr[0] - 0.05, f"{m}: R² degrades with data"
    # deterministic resource models are near-exact
    assert r2["net"][-1] > 0.97
    assert r2["com"][-1] > 0.97
    # the stochastic accuracy model is the hardest (mirrors the paper's
    # observation that one objective converges slower than the rest)
    assert r2["acc"][-1] <= max(r2["net"][-1], r2["com"][-1]) + 1e-9
