"""Figure 7 — normalized benefit vs server count and video count.

Paper claims (weights all 1, bandwidths drawn from {5..30} Mbps):
across 5–9 servers (10 videos) and 7–11 videos (5 servers), PaMO
improves over JCAB by 13.6%–53.9% and FACT by 6.5%–16.6%, staying
within 1.54% of PaMO+.
"""

import numpy as np

from conftest import bench_seeds, run_once
from repro.bench import fig7_scaling, format_series


def test_fig7_scaling(benchmark):
    data = run_once(
        benchmark,
        fig7_scaling,
        node_counts=(5, 6, 7, 8, 9),
        video_counts=(7, 8, 9, 10, 11),
        fixed_videos=10,
        fixed_nodes=5,
        seeds=bench_seeds(),
    )

    for key, label in (("by_nodes", "Node Number"), ("by_videos", "Video Number")):
        rows = data[key]
        methods = ("JCAB", "FACT", "PaMO", "PaMO+")
        series = {m: [r["normalized"][m] for r in rows] for m in methods}
        xs = [r["setting"] for r in rows]
        print()
        print(format_series(label, xs, series, title=f"Fig.7 ({label})"))

        pamo = np.array(series["PaMO"])
        jcab = np.array(series["JCAB"])
        fact = np.array(series["FACT"])
        plus = np.array(series["PaMO+"])
        # who wins: PaMO above both baselines on average, near PaMO+
        assert pamo.mean() > jcab.mean(), f"{key}: PaMO must beat JCAB"
        assert pamo.mean() > fact.mean() - 0.02, f"{key}: PaMO ~>= FACT"
        assert (pamo - jcab).max() > 0.1, f"{key}: double-digit JCAB gap"
        assert plus.mean() - pamo.mean() < 0.12, f"{key}: PaMO near ceiling"
