"""Regenerate the golden end-to-end PaMO records in tests/goldens/.

Run after an INTENTIONAL behavior change (new acquisition math, changed
candidate generation, …) and commit the refreshed JSON together with
the change:

    PYTHONPATH=src python benchmarks/regen_goldens.py

The goldens pin the full seeded pipeline — problem construction,
profiling, preference learning, BO loop with the fast GP/BO paths —
to the incumbent benefit and final decision, so any unintended drift
(e.g. a "pure refactor" that perturbs an RNG stream or a fast path
that stops matching its slow reference) fails
``tests/goldens/test_golden_regression.py`` loudly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

GOLDEN_DIR = REPO / "tests" / "goldens"

#: (method, n_streams, n_servers, seed) cases pinned by the goldens —
#: small budgets (bench FAST_PAMO_KWARGS) so the suite stays fast.
CASES = [
    ("PaMO", 4, 3, 0),
    ("PaMO", 4, 3, 1),
    ("PaMO+", 4, 3, 0),
]


def run_case(method: str, n_streams: int, n_servers: int, seed: int) -> dict:
    from repro.bench.harness import make_problem, run_method
    from repro.core import make_preference

    problem = make_problem(n_streams, n_servers, rng=seed)
    preference = make_preference(problem)
    result = run_method(method, problem, preference, seed=seed, measured=False)
    return {
        "method": method,
        "n_streams": n_streams,
        "n_servers": n_servers,
        "seed": seed,
        "true_benefit": result.true_benefit,
        "outcome": [float(v) for v in result.outcome],
        "resolutions": [float(v) for v in result.extras["resolutions"]],
        "fps": [float(v) for v in result.extras["fps"]],
        "n_iterations": int(result.extras["n_iterations"]),
        "n_dm_queries": int(result.extras["n_dm_queries"]),
    }


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    records = [run_case(*case) for case in CASES]
    path = GOLDEN_DIR / "pamo_goldens.json"
    path.write_text(json.dumps(records, indent=2) + "\n")
    for r in records:
        print(
            f"{r['method']} streams={r['n_streams']} seed={r['seed']}: "
            f"benefit={r['true_benefit']:.6f}"
        )
    print(f"wrote {len(records)} golden record(s) to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
