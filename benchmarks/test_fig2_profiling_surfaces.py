"""Figure 2 — outcome/resource surfaces of two clips over (r, s).

Paper claim: mAP, e2e latency, bandwidth, computation, and power all
follow consistent surface shapes across different video clips —
accuracy saturating in resolution and rising in fps; latency flat in
fps (uncontended); bandwidth/computation/power scaling with both knobs
up to ~15 Mbps / ~40 TFLOPs / ~100 W at (2000 px, 30 fps).
"""

import numpy as np

from conftest import run_once
from repro.bench import fig2_profiling_surfaces, format_table


def test_fig2_profiling_surfaces(benchmark):
    data = run_once(
        benchmark,
        fig2_profiling_surfaces,
        resolutions=(300, 600, 900, 1200, 1600, 2000),
        fps_values=(1, 5, 10, 15, 20, 25, 30),
        clip_names=("mot16-02-like", "mot16-05-like"),
        n_frames=45,
        rng=0,
    )
    res = data["resolutions"]
    fps = data["fps_values"]
    clips = ("mot16-02-like", "mot16-05-like")

    for clip in clips:
        s = data[clip]
        # -- paper shapes --------------------------------------------------
        acc = s["accuracy"]
        assert acc[-1, -1] > acc[0, 0], "mAP must grow with configuration"
        assert acc[-1, -1] > 0.55, "high-config mAP in the paper's ~0.8 band"
        assert acc[0, 0] < 0.45, "low-config mAP in the paper's ~0.2 band"
        # latency flat in fps, growing in resolution
        lat = s["latency"]
        assert np.allclose(lat, lat[:, :1], atol=1e-9)
        assert lat[-1, 0] > lat[0, 0]
        # bandwidth ceiling ~15 Mbps at full config
        net = s["network_mbps"]
        assert 8 < net[-1, -1] < 25
        # computation tens of TFLOPs at full config
        com = s["computation_tflops"]
        assert 20 < com[-1, -1] < 80
        # power grows with both knobs
        pw = s["power_watts"]
        assert pw[-1, -1] > pw[0, 0] > 0

    # consistent pattern across clips (the figure's headline message)
    for metric in ("accuracy", "network_mbps", "power_watts"):
        a = data[clips[0]][metric].ravel()
        b = data[clips[1]][metric].ravel()
        assert np.corrcoef(a, b)[0, 1] > 0.75, f"{metric} shapes diverge"

    # print one surface like the paper's subplot grid
    rows = [
        [r] + list(data[clips[0]]["accuracy"][i])
        for i, r in enumerate(res)
    ]
    print()
    print(
        format_table(
            ["res\\fps"] + [str(f) for f in fps],
            rows,
            title="Fig.2 (clip 1) mAP surface",
        )
    )
