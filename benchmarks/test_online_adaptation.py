"""Extension experiment: online drift detection and recovery.

§2.1's monitoring loop made quantitative: a deployment runs 12 epochs;
at epoch 4 every uplink degrades to a fifth of its bandwidth.  Compare
cumulative true benefit of (a) a fire-and-forget scheduler that never
re-plans, and (b) the OnlineScheduler with drift detection.  The
adaptive system must recover most of the benefit lost to the incident.
"""

import numpy as np

from conftest import run_once
from repro.baselines import RandomSearch
from repro.bench.reporting import format_table
from repro.core import DriftDetector, EVAProblem, OnlineScheduler, make_preference


def test_online_drift_recovery(benchmark):
    def run():
        normal = EVAProblem(n_streams=5, bandwidths_mbps=[10.0, 20.0, 30.0])
        degraded = EVAProblem(n_streams=5, bandwidths_mbps=[1.0, 1.5, 2.0])
        # accuracy-leaning preference: the chosen configs use big frames,
        # so an uplink incident visibly moves latency
        pref = make_preference(normal, weights=[1.0, 3.0, 0.3, 0.3, 0.3])
        n_epochs = 12
        incident = range(4, n_epochs)  # degradation persists to the end

        def env_problem(epoch):
            return degraded if epoch in incident else normal

        def environment(decision, epoch):
            return env_problem(epoch).evaluate(decision.resolutions, decision.fps)

        # (a) static: optimize once at epoch 0, never re-plan
        static_dec = RandomSearch(normal, benefit_fn=pref.value, n_iterations=80, rng=0).optimize().decision
        static_benefit = [
            float(pref.value(environment(static_dec, e))) for e in range(n_epochs)
        ]

        # (b) adaptive: OnlineScheduler with the same search budget per plan
        def factory(prob, epoch):
            return RandomSearch(env_problem(epoch), benefit_fn=pref.value, n_iterations=80, rng=epoch)

        online = OnlineScheduler(
            normal,
            factory,
            environment=environment,
            detector=DriftDetector(rel_threshold=0.4, patience=2),
        )
        log = online.run(n_epochs)
        adaptive_benefit = [float(pref.value(r.observed)) for r in log]
        return static_benefit, adaptive_benefit, online.n_reoptimizations

    static_b, adaptive_b, n_replans = run_once(benchmark, run)
    rows = [
        [e, static_b[e], adaptive_b[e]] for e in range(len(static_b))
    ]
    print()
    print(
        format_table(
            ["epoch", "static benefit", "adaptive benefit"],
            rows,
            title="Extension: online drift recovery (degradation from epoch 4)",
        )
    )
    print(f"re-optimizations: {n_replans}")

    assert n_replans >= 1, "drift must trigger at least one re-plan"
    # pre-incident: identical behavior
    np.testing.assert_allclose(static_b[:4], adaptive_b[:4], atol=1e-9)
    # post-recovery (after detection latency): adaptive strictly better
    post = slice(7, None)
    assert np.mean(adaptive_b[post]) > np.mean(static_b[post]) + 1e-6
    # cumulative benefit higher for the adaptive system
    assert np.sum(adaptive_b) > np.sum(static_b)
