"""Figure 10 — sensitivity ablations.

(a) Baseline weight sweep (0.05→5) on n5v8 / n6v10: however JCAB and
    FACT tune their internal weights, they never reach PaMO/PaMO+ —
    the paper's argument that linear weighting cannot capture the true
    preference.
(b) Termination-threshold sweep (0.02→0.2): PaMO's benefit stays high
    and stable; the baselines fluctuate and are threshold-sensitive.
"""

import numpy as np

from conftest import bench_seeds, run_once
from repro.bench import (
    fig10a_weight_sensitivity,
    fig10b_threshold_sensitivity,
    format_table,
)


def test_fig10a_weight_sensitivity(benchmark):
    records = run_once(
        benchmark,
        fig10a_weight_sensitivity,
        weight_values=(0.05, 0.1, 0.2, 0.5, 0.8, 1.0, 2.0, 5.0),
        configs=((5, 8), (6, 10)),
        seeds=bench_seeds(),
    )
    rows = [
        [r["config"], r["weight"], r["JCAB"], r["FACT"], r["PaMO"], r["PaMO+"]]
        for r in records
    ]
    print()
    print(
        format_table(
            ["config", "w", "JCAB", "FACT", "PaMO", "PaMO+"],
            rows,
            title="Fig.10a baseline weight sensitivity",
        )
    )
    for cfg in ("n5v8", "n6v10"):
        sub = [r for r in records if r["config"] == cfg]
        best_jcab = max(r["JCAB"] for r in sub)
        best_fact = max(r["FACT"] for r in sub)
        pamo = np.mean([r["PaMO"] for r in sub])
        plus = np.mean([r["PaMO+"] for r in sub])
        # even the best-tuned baselines stay below the PaMO family
        assert best_jcab < max(pamo, plus) + 1e-9, f"{cfg}: JCAB beats PaMO"
        assert best_fact <= max(pamo, plus) + 0.02, f"{cfg}: FACT beats PaMO"


def test_fig10b_threshold_sensitivity(benchmark):
    records = run_once(
        benchmark,
        fig10b_threshold_sensitivity,
        deltas=(0.02, 0.04, 0.06, 0.08, 0.1, 0.2),
        configs=((5, 8),),
        seeds=bench_seeds(),
    )
    rows = [
        [r["config"], r["delta"], r["JCAB"], r["FACT"], r["PaMO"], r["PaMO+"]]
        for r in records
    ]
    print()
    print(
        format_table(
            ["config", "delta", "JCAB", "FACT", "PaMO", "PaMO+"],
            rows,
            title="Fig.10b termination-threshold sensitivity",
        )
    )
    pamo = np.array([r["PaMO"] for r in records])
    jcab = np.array([r["JCAB"] for r in records])
    fact = np.array([r["FACT"] for r in records])
    # PaMO consistently above the baselines across thresholds
    assert pamo.mean() > jcab.mean()
    assert pamo.mean() > fact.mean() - 0.02
    # and reasonably stable (less fluctuation than the worst baseline)
    assert pamo.std() < max(jcab.std(), fact.std()) + 0.05
