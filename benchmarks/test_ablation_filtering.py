"""Ablation of the §6 extensions: frame filtering and ROI encoding.

The paper's related-work section positions frame filtering
(Reducto/Glimpse) and ROI encoding as complements to the resolution/fps
knobs, "to further improve video analysis performance and resource
efficiency".  This bench quantifies that on the substrate: for a fixed
(r, s) configuration across the clip library, camera-side reduction
should cut bandwidth and server load substantially on low-motion
content at modest accuracy cost, and cut less on high-motion content.
"""

import numpy as np

from conftest import run_once
from repro.bench.reporting import format_table
from repro.detection import SimulatedDetector
from repro.detection.evaluate import FrameResult, mean_average_precision
from repro.video import (
    EncoderModel,
    FrameDifferenceFilter,
    default_library,
    effective_stream_load,
)


def test_ablation_frame_filtering_and_roi(benchmark):
    def run():
        lib = default_library(n_frames=60, rng=0)
        enc = EncoderModel()
        filt = FrameDifferenceFilter(threshold=0.25)
        width, fps = 960.0, 30.0
        rows = []
        for clip in lib:
            base_fps, base_bits = effective_stream_load(
                clip, width, fps, encoder=enc
            )
            red_fps, red_bits = effective_stream_load(
                clip, width, fps, frame_filter=filt, roi=True, encoder=enc
            )
            bw_saving = 1.0 - (red_fps * red_bits) / (base_fps * base_bits)

            # accuracy impact: detector runs at the reduced frame rate
            det = SimulatedDetector(rng=0)
            full = det.detect_clip(clip.frames, width, base_fps)
            det2 = SimulatedDetector(rng=0)
            reduced = det2.detect_clip(clip.frames, width, max(red_fps, 1.0))
            acc_full = mean_average_precision(
                [FrameResult(g, d.boxes, d.scores) for g, d in zip(clip.frames, full)]
            )
            acc_red = mean_average_precision(
                [FrameResult(g, d.boxes, d.scores) for g, d in zip(clip.frames, reduced)]
            )
            rows.append(
                {
                    "clip": clip.name,
                    "speed": clip.config.speed,
                    "bw_saving": bw_saving,
                    "acc_full": acc_full,
                    "acc_reduced": acc_red,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["clip", "motion px/f", "bandwidth saved", "mAP full", "mAP reduced"],
            [
                [r["clip"], r["speed"], r["bw_saving"], r["acc_full"], r["acc_reduced"]]
                for r in rows
            ],
            title="Ablation: frame filtering + ROI encoding",
        )
    )
    savings = np.array([r["bw_saving"] for r in rows])
    speeds = np.array([r["speed"] for r in rows])
    acc_drop = np.array([r["acc_full"] - r["acc_reduced"] for r in rows])
    # substantial average saving
    assert savings.mean() > 0.3, f"mean saving {savings.mean():.2f}"
    # slower content saves more (negative correlation speed↔saving)
    assert np.corrcoef(speeds, savings)[0, 1] < 0.2
    # accuracy cost stays modest on average
    assert acc_drop.mean() < 0.25, f"mean mAP drop {acc_drop.mean():.3f}"
