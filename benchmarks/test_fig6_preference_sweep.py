"""Figure 6 — normalized benefit across 20 preference functions.

Paper claims (8 videos, 5 servers, each weight in {0.2, 0.4, 1.6, 3.2}
with the rest at 1): PaMO attains benefit close to PaMO+ (errors
1.02%–11.26%), and improves over JCAB by 3.9%–42.3% and over FACT by
0.42%–26.5%.  The benefit-ratio shades show PaMO's solutions track the
true preference distribution.
"""

import numpy as np

from conftest import bench_seeds, run_once
from repro.bench import fig6_preference_sweep, format_table


def test_fig6_preference_sweep(benchmark):
    records = run_once(
        benchmark,
        fig6_preference_sweep,
        weight_values=(0.2, 0.4, 1.6, 3.2),
        n_streams=8,
        n_servers=5,
        seeds=bench_seeds(),
    )
    assert len(records) == 20

    pamo = np.array([r["normalized"]["PaMO"] for r in records])
    plus = np.array([r["normalized"]["PaMO+"] for r in records])
    jcab = np.array([r["normalized"]["JCAB"] for r in records])
    fact = np.array([r["normalized"]["FACT"] for r in records])

    # PaMO near-optimal: mean gap to the per-setting max in the paper's band
    gap = 1.0 - pamo  # normalization max includes PaMO+ (and any edge case)
    assert gap.mean() < 0.15, f"PaMO mean gap {gap.mean():.3f} too large"
    # PaMO consistently beats the single-objective baselines on average
    assert pamo.mean() > jcab.mean() + 0.05
    assert pamo.mean() > fact.mean()
    # headline improvements exist: some setting where PaMO >> JCAB
    assert (pamo - jcab).max() > 0.2
    assert (pamo - fact).max() > 0.02
    # PaMO+ is (by normalization) the reference ceiling
    assert plus.mean() > 0.9

    rows = [
        [f"w_{r['objective']}={r['weight']}"]
        + [r["normalized"][m] for m in ("JCAB", "FACT", "PaMO", "PaMO+")]
        for r in records
    ]
    print()
    print(
        format_table(
            ["setting", "JCAB", "FACT", "PaMO", "PaMO+"],
            rows,
            title="Fig.6 normalized benefit across preference functions",
        )
    )
    print(
        f"\nPaMO vs JCAB: +{(pamo - jcab).max() * 100:.1f}% max; "
        f"PaMO vs FACT: +{(pamo - fact).max() * 100:.1f}% max; "
        f"PaMO gap to ceiling: {gap.min() * 100:.2f}%..{gap.max() * 100:.2f}%"
    )
