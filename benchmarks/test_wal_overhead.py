"""Guard: the write-ahead journal must add <2% to serve epoch cost.

The WAL sits on the per-event and per-epoch hot path (one JSON line
per submitted event, one fingerprinted line per decision, batched
fsync), so durability has a hard budget against the production serve
configuration — the paper-scale churn workload with periodic full
re-optimization (``reoptimize_every=8``, the CLI's documented drift
correction), which is what the recovery-smoke CI job journals.

Paired wall-clock runs cannot resolve a few-millisecond signal on a
shared host (run-to-run variance exceeds the budget itself), so the
gate uses the same low-noise methodology as the telemetry-overhead
guard: count the journal operations a real run performs, measure each
operation's cost in a tight loop (minimum over repetitions — the
standard low-noise estimator), and assert ops x per-op cost stays
under 2% of the best-of-3 run wall-clock.  A second benchmark pins the
recovery path: replaying the journal reproduces the run bit-identically
at benchmark scale.
"""

import time

import numpy as np
from conftest import run_once

from repro.core.problem import EVAProblem
from repro.serve import (
    ChurnProfile,
    SchedulerService,
    WriteAheadLog,
    approx_preference,
    build_service,
    recover_service,
    service_spec,
)
from repro.serve.loadgen import generate_load

N_STREAMS = 40
N_SERVERS = 10
REOPTIMIZE_EVERY = 8
PROFILE = ChurnProfile(
    hours=0.2,
    arrivals_per_hour=600,
    departures_per_hour=400,
    drifts_per_hour=120,
    flaps_per_hour=10,
)


def _events():
    return generate_load(N_STREAMS, N_SERVERS, profile=PROFILE, seed=0).events


def _service():
    rng = np.random.default_rng(0)
    problem = EVAProblem(
        N_STREAMS,
        rng.choice([10.0, 15.0, 20.0, 25.0], size=N_SERVERS),
        textures=rng.uniform(0.7, 1.3, size=N_STREAMS),
    )
    return SchedulerService(
        problem,
        preference=approx_preference(problem),
        reoptimize_every=REOPTIMIZE_EVERY,
    )


def test_wal_overhead(benchmark, tmp_path):
    def run():
        events = _events()
        run_s = float("inf")
        service = None
        for _ in range(3):
            service = _service()
            t0 = time.perf_counter()
            service.submit(list(events))
            service.start()
            service.run()
            run_s = min(run_s, time.perf_counter() - t0)
        n_epochs = len(service.decisions)

        # Per-op costs, tight loops, minimum of 3 repetitions each.
        wal = WriteAheadLog.create(
            tmp_path / "cost.wal",
            service_spec(n_streams=N_STREAMS, bandwidths_mbps=[1.0]),
        )
        sig_s = ev_s = ep_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for d in service.decisions:
                d.sig_hash()
            sig_s = min(sig_s, (time.perf_counter() - t0) / n_epochs)
            t0 = time.perf_counter()
            for i, e in enumerate(events):
                wal.append_event(i + 1, e)
            ev_s = min(ev_s, (time.perf_counter() - t0) / len(events))
            t0 = time.perf_counter()
            for i in range(n_epochs):
                wal.append_epoch(
                    epoch=i, mode="normal", full=False, sig="ab" * 8
                )
            ep_s = min(ep_s, (time.perf_counter() - t0) / n_epochs)
        wal.close()

        overhead_s = n_epochs * (sig_s + ep_s) + len(events) * ev_s
        return run_s, overhead_s, n_epochs, len(events), sig_s

    run_s, overhead_s, n_epochs, n_events, sig_s = run_once(benchmark, run)
    ratio = overhead_s / run_s
    print()
    print(
        f"serve run ({N_STREAMS} streams, {n_epochs} epochs, "
        f"{n_events} events, reoptimize_every={REOPTIMIZE_EVERY}): "
        f"{run_s:.3f}s; journaling {overhead_s * 1e3:.2f} ms "
        f"(sig {sig_s * 1e6:.1f} us/epoch) = {100 * ratio:.2f}% (budget: 2%)"
    )
    assert n_epochs > 50, "churn profile produced too few epochs to measure"
    assert ratio < 0.02, (
        f"WAL adds {100 * ratio:.2f}% to a churny serve run (budget: 2%)"
    )


def test_wal_recovery_at_scale(benchmark, tmp_path):
    """The benchmark-scale run recovers bit-identically from its WAL."""

    def run():
        wal_path = tmp_path / "scale.wal"
        spec = service_spec(
            n_streams=N_STREAMS,
            bandwidths_mbps=list(
                np.random.default_rng(0).choice(
                    [10.0, 15.0, 20.0, 25.0], size=N_SERVERS
                )
            ),
        )
        golden = build_service(spec)
        with WriteAheadLog.create(wal_path, spec) as wal:
            golden.attach_wal(wal)
            golden.submit(_events())
            golden.start()
            golden.run()
        t0 = time.perf_counter()
        recovered, info = recover_service(wal_path)
        recovered.run()
        recover_s = time.perf_counter() - t0
        mismatches = info.verify(recovered)
        return (
            mismatches,
            len(golden.decisions),
            [d.sig_hash() for d in golden.decisions]
            == [d.sig_hash() for d in recovered.decisions],
            recover_s,
        )

    mismatches, epochs, identical, recover_s = run_once(benchmark, run)
    print()
    print(
        f"recovered {epochs} epochs in {recover_s:.3f}s, "
        f"{len(mismatches)} journal mismatches"
    )
    assert mismatches == []
    assert identical, "recovered decision sequence diverged from golden"
