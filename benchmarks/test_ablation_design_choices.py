"""Ablations of PaMO's design choices (DESIGN.md §5).

Not a paper figure — these benches justify the choices the paper makes
by measuring the alternatives:

* qNEI vs qEI / qUCB / qSR acquisition (§5.1's PaMO variants);
* Algorithm 1's heuristic grouping vs exact branch-and-bound vs
  simulated annealing (§6's ILP/metaheuristic alternatives);
* GP outcome models vs the parametric θ(r)·ε(s) regression of Eq. 2–3.
"""

import time

import numpy as np

from conftest import run_once
from repro.bench.harness import FAST_PAMO_KWARGS, make_problem, run_method
from repro.bench.reporting import format_table
from repro.core import make_preference
from repro.sched import (
    AnnealedScheduler,
    InfeasibleScheduleError,
    PeriodicStream,
    communication_latency,
    exact_grouping,
    group_streams,
    resolve_assignment,
)
from repro.utils import as_generator


def test_ablation_acquisition_functions(benchmark):
    """qNEI should match or beat the other MC acquisitions on true benefit."""

    def run():
        rows = {}
        problem = make_problem(6, 4, rng=0)
        pref = make_preference(problem)
        for name in ("PaMO", "PaMO_qEI", "PaMO_qUCB", "PaMO_qSR"):
            vals = [
                run_method(name, problem, pref, seed=s).true_benefit
                for s in range(2)
            ]
            rows[name] = float(np.mean(vals))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["acquisition", "mean true benefit"],
            sorted(rows.items(), key=lambda kv: -kv[1]),
            title="Ablation: acquisition functions",
        )
    )
    # qNEI within noise of the best variant
    assert rows["PaMO"] >= max(rows.values()) - 0.25


def _random_streams(gen, m):
    return [
        PeriodicStream(
            stream_id=i,
            fps=float(gen.choice([1, 2, 5, 10, 15, 30])),
            resolution=float(gen.choice([300, 600, 900, 1200])),
            processing_time=float(gen.uniform(0.005, 0.05)),
            bits_per_frame=float(gen.uniform(1e4, 5e5)),
        )
        for i in range(m)
    ]


def test_ablation_grouping_solvers(benchmark):
    """Algorithm 1 vs exact B&B vs simulated annealing on 30 instances.

    Expected shape: the exact solver solves a superset of instances but
    costs orders of magnitude more time; Algorithm 1 solves nearly as
    many at microsecond cost with comparable communication latency; SA
    sits in between on both axes.
    """

    def run():
        gen = as_generator(0)
        bw = [10.0, 20.0, 30.0]
        stats = {
            m: {"feasible": 0, "time": 0.0, "comm": []}
            for m in ("algorithm1", "exact", "anneal")
        }
        n_instances = 30
        for k in range(n_instances):
            streams = _random_streams(gen, int(gen.integers(3, 7)))

            t0 = time.perf_counter()
            try:
                g = group_streams(streams, len(bw))
                q = resolve_assignment(g, bw, streams)
                stats["algorithm1"]["feasible"] += 1
                stats["algorithm1"]["comm"].append(
                    communication_latency(streams, q, bw)
                )
            except InfeasibleScheduleError:
                pass
            stats["algorithm1"]["time"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            try:
                g = exact_grouping(streams, len(bw), bandwidths_mbps=bw)
                q = resolve_assignment(g, bw, streams)
                stats["exact"]["feasible"] += 1
                stats["exact"]["comm"].append(
                    communication_latency(streams, q, bw)
                )
            except InfeasibleScheduleError:
                pass
            stats["exact"]["time"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            res = AnnealedScheduler(rng=k, n_iters=1500).solve(streams, bw)
            if res.feasible:
                stats["anneal"]["feasible"] += 1
                stats["anneal"]["comm"].append(
                    communication_latency(streams, res.assignment, bw)
                )
            stats["anneal"]["time"] += time.perf_counter() - t0
        return n_instances, stats

    n, stats = run_once(benchmark, run)
    rows = [
        [
            m,
            f"{s['feasible']}/{n}",
            np.mean(s["comm"]) if s["comm"] else float("nan"),
            s["time"] * 1e3 / n,
        ]
        for m, s in stats.items()
    ]
    print()
    print(
        format_table(
            ["solver", "feasible", "mean comm lat (s)", "ms/instance"],
            rows,
            title="Ablation: grouping solvers",
        )
    )
    # exact solves everything the heuristic solves
    assert stats["exact"]["feasible"] >= stats["algorithm1"]["feasible"]
    # heuristic is close to exact on feasibility (the paper's bet)
    assert stats["algorithm1"]["feasible"] >= stats["exact"]["feasible"] - 3
    # heuristic is never slower than the exact search (its node count is
    # linear; B&B prunes well on small instances but only grows from here)
    assert stats["algorithm1"]["time"] <= stats["exact"]["time"] + 1e-3
    # annealing never beats exact feasibility
    assert stats["anneal"]["feasible"] <= stats["exact"]["feasible"]


def test_ablation_gp_vs_parametric_outcomes(benchmark):
    """GP bank vs the paper's Eq. 2–3 separable regression on noisy data."""

    def run():
        from repro.outcomes import (
            OutcomeSurrogateBank,
            SeparableProduct,
            profile_configuration,
            r2_score,
        )
        from repro.outcomes.profiler import samples_to_arrays
        from repro.video import default_library

        clip = default_library(n_frames=30, rng=0)["mot16-04-like"]
        gen = as_generator(3)
        pts = np.column_stack(
            [gen.uniform(300, 2000, 150), gen.uniform(1, 30, 150)]
        )
        x_tr, y_tr = samples_to_arrays(
            [
                profile_configuration(clip, r, s, measurement_noise=0.15, rng=gen)
                for r, s in pts
            ]
        )
        pts_te = np.column_stack(
            [gen.uniform(300, 2000, 40), gen.uniform(1, 30, 40)]
        )
        x_te, y_te = samples_to_arrays(
            [profile_configuration(clip, r, s, rng=gen) for r, s in pts_te]
        )
        bank = OutcomeSurrogateBank(
            resolution_bounds=(300, 2000), fps_bounds=(1, 30)
        ).fit(x_tr, y_tr, rng=0)
        gp_r2 = bank.r2_per_objective(x_te, y_te)
        para_r2 = {}
        from repro.outcomes.functions import OBJECTIVES

        for j, name in enumerate(OBJECTIVES):
            model = SeparableProduct(deg_r=2, deg_s=2).fit(
                x_tr[:, 0], x_tr[:, 1], y_tr[:, j]
            )
            para_r2[name] = r2_score(y_te[:, j], model.predict(x_te[:, 0], x_te[:, 1]))
        return gp_r2, para_r2

    gp_r2, para_r2 = run_once(benchmark, run)
    rows = [[k, gp_r2[k], para_r2[k]] for k in gp_r2]
    print()
    print(
        format_table(
            ["objective", "GP R²", "θ(r)·ε(s) R²"],
            rows,
            title="Ablation: GP vs parametric outcome models",
        )
    )
    # GP at least as good on average (it contains the parametric shapes)
    assert np.mean(list(gp_r2.values())) >= np.mean(list(para_r2.values())) - 0.02
