"""Extension experiment: scheduling under *real* pricing rules.

The paper's §1 motivates preference learning with tiered tariffs and
QoS-based revenue, but §5 evaluates only the weighted-L1 stand-in.
This bench closes that loop: the true benefit is a currency-valued
PricingPreference (tiered energy + tiered traffic + SLO revenue — the
non-linear, non-separable case), and PaMO must learn it from pairwise
comparisons alone.  Expected shape: PaMO tracks PaMO+ closely and both
beat the fixed-formulation baselines, *more* decisively than under the
linear benefit, because no static weight vector expresses a tier
crossing.
"""

import numpy as np

from conftest import run_once
from repro.baselines import FACT, JCAB, WeightedSumScheduler
from repro.bench.harness import FAST_PAMO_KWARGS, make_problem
from repro.bench.reporting import format_table
from repro.core import PaMO, PaMOPlus
from repro.pref import DecisionMaker, PricingPreference


def test_pricing_rule_scheduling(benchmark):
    def run():
        pref = PricingPreference()
        results = {}
        for seed in range(2):
            problem = make_problem(6, 4, rng=seed)

            def score(decision):
                y = problem.evaluate_measured(decision.resolutions, decision.fps)
                return float(pref.value(y))

            def score_explicit(decision):
                y = problem.evaluate_decision(
                    decision.resolutions,
                    decision.fps,
                    decision.assignment,
                    measured=True,
                )
                return float(pref.value(y))

            pamo = PaMO(
                problem, DecisionMaker(pref, rng=seed), rng=seed, **FAST_PAMO_KWARGS
            ).optimize()
            plus = PaMOPlus(
                problem, DecisionMaker(pref, rng=seed), rng=seed, **FAST_PAMO_KWARGS
            ).optimize()
            jcab = JCAB(problem, rng=seed).optimize()
            fact = FACT(problem).optimize()
            weighted = WeightedSumScheduler(problem, "equal", rng=seed).optimize()

            for name, val in (
                ("PaMO", score(pamo.decision)),
                ("PaMO+", score(plus.decision)),
                ("JCAB", score_explicit(jcab.decision)),
                ("FACT", score_explicit(fact.decision)),
                ("Weighted[equal]", score_explicit(weighted.decision)),
            ):
                results.setdefault(name, []).append(val)
        return {k: float(np.mean(v)) for k, v in results.items()}

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["method", "mean profit (currency/s)"],
            sorted(rows.items(), key=lambda kv: -kv[1]),
            title="Extension: tiered-tariff + QoS-revenue scheduling",
        )
    )
    # PaMO learns the nonlinear rule well enough to stay near PaMO+ ...
    assert rows["PaMO"] > rows["PaMO+"] - 25.0
    # ... and both beat every fixed-formulation baseline
    best_baseline = max(rows["JCAB"], rows["FACT"], rows["Weighted[equal]"])
    assert rows["PaMO+"] > best_baseline
    assert rows["PaMO"] > best_baseline - 5.0
