"""The EVA scheduling problem of §3.

``EVAProblem`` bundles everything a scheduler needs: the M streams
(with per-stream content texture), the N servers with their uplink
bandwidths, the discrete configuration knobs (C_r resolutions × C_f
frame rates), and the outcome functions.  Evaluating a configuration
runs the zero-jitter heuristic (Algorithm 1) to obtain the server
assignment q, then computes the five-objective outcome vector — either
analytically (Eq. 2–5, fast path used inside optimization loops) or by
actually simulating the decision on the discrete-event testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.obs.diagnostics import emit_schedule_diagnostics
from repro.obs.telemetry import telemetry
from repro.outcomes.functions import OutcomeFunctions
from repro.sched.assignment import resolve_assignment
from repro.sched.grouping import InfeasibleScheduleError, group_streams
from repro.sched.streams import PeriodicStream, split_high_rate_streams
from repro.sim.runner import simulate_schedule
from repro.utils import as_generator, check_array_1d
from repro.utils.rng import RngLike
from repro.video.encoder import EncoderModel
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE


@dataclass(frozen=True)
class ConfigSpace:
    """Discrete knobs of §1: C_r resolutions × C_f frame sampling rates.

    Default knob sets span the ranges profiled in Fig. 2.  Frame-rate
    knobs are divisors/multiples chosen so harmonic groupings exist
    (1/T ratios are integers for many pairs), which is what makes
    Algorithm 1 effective.
    """

    resolutions: tuple[float, ...] = (300.0, 600.0, 900.0, 1200.0, 1600.0, 2000.0)
    fps_values: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 15.0, 30.0)

    def __post_init__(self) -> None:
        if len(self.resolutions) < 1 or len(self.fps_values) < 1:
            raise ValueError("config space must have at least one knob per axis")
        if any(r <= 0 for r in self.resolutions) or any(s <= 0 for s in self.fps_values):
            raise ValueError("knob values must be positive")

    @property
    def n_configs(self) -> int:
        return len(self.resolutions) * len(self.fps_values)

    def bounds(self) -> np.ndarray:
        """(2, 2) array of [(r_lo, r_hi), (s_lo, s_hi)]."""
        return np.array(
            [
                [min(self.resolutions), max(self.resolutions)],
                [min(self.fps_values), max(self.fps_values)],
            ]
        )

    def snap(self, resolution: float, fps: float) -> tuple[float, float]:
        """Nearest knob pair to a continuous (r, s) proposal."""
        r = min(self.resolutions, key=lambda v: abs(v - resolution))
        s = min(self.fps_values, key=lambda v: abs(v - fps))
        return r, s

    def sample(self, m: int, rng: RngLike = None) -> tuple[np.ndarray, np.ndarray]:
        """Random knob configuration for ``m`` streams."""
        gen = as_generator(rng)
        r = gen.choice(self.resolutions, size=m)
        s = gen.choice(self.fps_values, size=m)
        return np.asarray(r, dtype=float), np.asarray(s, dtype=float)

    def all_configs(self) -> np.ndarray:
        """All (r, s) knob pairs, shape (C_r·C_f, 2)."""
        grid = [(r, s) for r in self.resolutions for s in self.fps_values]
        return np.array(grid, dtype=float)


class EVAProblem:
    """Concrete problem instance: M streams on N servers.

    Parameters
    ----------
    n_streams:
        Number of video sources M′.
    bandwidths_mbps:
        Uplink bandwidth per edge server (defines N).
    config_space:
        Discrete decision knobs.
    textures:
        Per-stream content texture multipliers (default 1.0).
    profile, encoder, outcomes:
        Substrate models; ``outcomes`` defaults to the Eq. 2–5 closed
        forms over ``profile``/``encoder``.
    """

    def __init__(
        self,
        n_streams: int,
        bandwidths_mbps: Sequence[float],
        *,
        config_space: ConfigSpace | None = None,
        textures: Sequence[float] | None = None,
        profile: DeviceProfile = JETSON_NX_PROFILE,
        encoder: EncoderModel | None = None,
        outcomes: OutcomeFunctions | None = None,
    ) -> None:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        self.n_streams = int(n_streams)
        self.bandwidths_mbps = check_array_1d(
            "bandwidths_mbps", bandwidths_mbps, min_len=1
        )
        self.config_space = config_space or ConfigSpace()
        if textures is None:
            textures = [1.0] * self.n_streams
        if len(textures) != self.n_streams:
            raise ValueError(
                f"textures must have length {self.n_streams}, got {len(textures)}"
            )
        self.textures = np.asarray(textures, dtype=float)
        self.profile = profile
        self.encoder = encoder or EncoderModel()
        self.outcomes = outcomes or OutcomeFunctions(
            profile=self.profile, encoder=self.encoder
        )
        # Feasibility is queried repeatedly on the same knob decisions
        # (candidate pools, rejection sampling); the answer is a pure
        # function of the decision, so memoize it.
        self._feasible_cache: dict[bytes, bool] = {}

    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return self.bandwidths_mbps.size

    def _check_decision(self, resolutions, fps) -> tuple[np.ndarray, np.ndarray]:
        r = check_array_1d("resolutions", resolutions, min_len=1)
        s = check_array_1d("fps", fps, min_len=1)
        if r.size != self.n_streams or s.size != self.n_streams:
            raise ValueError(
                f"decision must cover {self.n_streams} streams, "
                f"got {r.size} resolutions / {s.size} rates"
            )
        return r, s

    def make_streams(self, resolutions, fps) -> list[PeriodicStream]:
        """Build (and split) the periodic stream set T for a decision."""
        r, s = self._check_decision(resolutions, fps)
        streams = [
            PeriodicStream(
                stream_id=i,
                fps=float(s[i]),
                resolution=float(r[i]),
                processing_time=self.profile.processing_time(r[i]),
                bits_per_frame=self.encoder.bits_per_frame(
                    r[i], texture=self.textures[i]
                ),
            )
            for i in range(self.n_streams)
        ]
        return split_high_rate_streams(streams)

    def schedule(
        self, resolutions, fps, *, strict: bool = False
    ) -> tuple[list[int], list[PeriodicStream]]:
        """Algorithm 1 end to end: grouping + Hungarian assignment.

        Returns (assignment aligned to the *split* stream list, split
        streams).  With ``strict=False`` (default) infeasible decisions
        fall back to best-effort placement rather than raising, since
        optimization loops must be able to evaluate bad candidates.
        """
        streams = self.make_streams(resolutions, fps)
        grouping = group_streams(streams, self.n_servers, strict=strict)
        assignment = resolve_assignment(grouping, self.bandwidths_mbps, streams)
        if telemetry.enabled:
            emit_schedule_diagnostics(streams, assignment)
        return assignment, streams

    def is_feasible(self, resolutions, fps) -> bool:
        """True iff Algorithm 1 finds a Const2-satisfying grouping."""
        r, s = self._check_decision(resolutions, fps)
        key = np.column_stack([r, s]).tobytes()
        cached = self._feasible_cache.get(key)
        if cached is not None:
            return cached
        try:
            self.schedule(r, s, strict=True)
            result = True
        except InfeasibleScheduleError:
            result = False
        if len(self._feasible_cache) < 100_000:
            self._feasible_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def evaluate(self, resolutions, fps) -> np.ndarray:
        """Analytic outcome vector [ltc, acc, net, com, eng] (Eq. 2–5).

        Latency uses the assignment Algorithm 1 produces for this
        decision; per-parent aggregation treats split sub-streams as
        their parent stream (resolution determines cost; the split only
        affects scheduling).
        """
        r, s = self._check_decision(resolutions, fps)
        assignment, streams = self.schedule(r, s)
        # latency per *parent* stream: compute + transmission on its server(s)
        per_parent_lat: dict[int, list[float]] = {}
        for st, q in zip(streams, assignment):
            lat = st.processing_time + st.bits_per_frame / (
                self.bandwidths_mbps[q] * 1e6
            )
            per_parent_lat.setdefault(st.parent_id, []).append(lat)
        ltc = float(np.mean([np.mean(v) for v in per_parent_lat.values()]))
        acc = self.outcomes.accuracy(r, s)
        net = self.outcomes.network_mbps(r, s)
        com = self.outcomes.computation_tflops(r, s)
        eng = self.outcomes.energy_watts(r, s)
        return np.array([ltc, acc, net, com, eng])

    def evaluate_measured(
        self,
        resolutions,
        fps,
        *,
        horizon: float = 5.0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Outcome vector measured on the discrete-event testbed.

        Slower but authoritative: latency includes any queueing the
        schedule causes; bandwidth/energy come from the event-level
        accounting.  Accuracy still comes from the outcome model (the
        simulator does not rerun the detector).
        """
        r, s = self._check_decision(resolutions, fps)
        assignment, streams = self.schedule(r, s)
        report = simulate_schedule(
            [st.resolution for st in streams],
            [st.fps for st in streams],
            assignment,
            self.bandwidths_mbps,
            horizon=horizon,
            profile=self.profile,
            encoder=self.encoder,
        )
        acc = self.outcomes.accuracy(r, s)
        return np.array(
            [
                report.mean_latency,
                acc,
                report.total_bandwidth_mbps,
                report.computation_tflops,
                report.total_power_watts,
            ]
        )

    def evaluate_decision(
        self,
        resolutions,
        fps,
        assignment: Sequence[int],
        *,
        measured: bool = False,
        horizon: float = 5.0,
        stagger: bool = False,
    ) -> np.ndarray:
        """Outcome vector for an *explicit* parent-level assignment.

        Used to evaluate baseline schedulers (JCAB, FACT) that produce
        their own server mapping without stream splitting or start-time
        staggering.  With ``measured=True`` the decision runs on the
        discrete-event testbed, so contention/jitter the assignment
        causes shows up in the latency (this is how the paper's real
        testbed treats baselines); analytically (default) latency is the
        idealized Eq. 5 value.
        """
        r, s = self._check_decision(resolutions, fps)
        if len(assignment) != self.n_streams:
            raise ValueError(
                f"assignment must cover {self.n_streams} streams, got {len(assignment)}"
            )
        acc = self.outcomes.accuracy(r, s)
        if measured:
            report = simulate_schedule(
                r,
                s,
                list(assignment),
                self.bandwidths_mbps,
                horizon=horizon,
                profile=self.profile,
                encoder=self.encoder,
                textures=self.textures,
                stagger=stagger,
            )
            return np.array(
                [
                    report.mean_latency,
                    acc,
                    report.total_bandwidth_mbps,
                    report.computation_tflops,
                    report.total_power_watts,
                ]
            )
        ltc = self.outcomes.latency(r, s, list(assignment), self.bandwidths_mbps)
        return np.array(
            [
                ltc,
                acc,
                self.outcomes.network_mbps(r, s),
                self.outcomes.computation_tflops(r, s),
                self.outcomes.energy_watts(r, s),
            ]
        )

    # ------------------------------------------------------------------
    # Flat configuration-vector codec for BO (x ∈ R^{2M}: r_1, s_1, ...).
    def encode(self, resolutions, fps) -> np.ndarray:
        """Pack a decision into the flat vector (r_1, s_1, r_2, s_2, …)."""
        r, s = self._check_decision(resolutions, fps)
        return np.column_stack([r, s]).reshape(-1)

    def decode(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Unpack a flat configuration vector into (resolutions, fps)."""
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.size != 2 * self.n_streams:
            raise ValueError(
                f"config vector must have {2 * self.n_streams} entries, got {x.size}"
            )
        pairs = x.reshape(self.n_streams, 2)
        return pairs[:, 0].copy(), pairs[:, 1].copy()

    def sample_decision(self, rng: RngLike = None) -> tuple[np.ndarray, np.ndarray]:
        """Random knob decision for all streams."""
        return self.config_space.sample(self.n_streams, rng)
