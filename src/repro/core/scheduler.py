"""The unified scheduler API surface.

Every optimizer in this repo — PaMO, PaMO+, and the §5.1 baselines —
satisfies the same structural contract: construct with the problem (and
keyword configuration), call :meth:`Scheduler.optimize`, get an
:class:`~repro.core.result.OptimizationOutcome` back, and call
:meth:`Scheduler.replan` when the topology changed under a live run.
The :class:`Scheduler` protocol names that contract so dispatch code
(the CLI, the bench harness, the serve loop,
:func:`repro.baselines.registry.make_scheduler`) can be written against
the interface instead of a hand-rolled if/elif ladder.

``replan`` has a default full-resolve implementation on
:class:`SchedulerMixin` (rebind the problem, optimize from scratch);
schedulers that can do better override it — PaMO warm-starts from its
surviving observation history (:meth:`repro.core.pamo.PaMO.replan`).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.result import OptimizationOutcome
from repro.obs import telemetry

__all__ = ["Scheduler", "SchedulerMixin"]


@runtime_checkable
class Scheduler(Protocol):
    """Structural interface of every scheduling optimizer.

    Attributes
    ----------
    name:
        Human-readable method name ('PaMO', 'JCAB', ...), stamped into
        :attr:`~repro.core.result.ScheduleDecision.method`.
    """

    name: str

    def optimize(self) -> OptimizationOutcome:
        """Solve the scheduling problem and return the full run record."""
        ...

    def replan(self, new_problem, *, reason: str = "") -> OptimizationOutcome:
        """Re-solve after a topology change (server loss, stream churn)."""
        ...


class SchedulerMixin:
    """Shared ``name``/``replan`` plumbing for concrete schedulers.

    Concrete classes declare ``method_name`` (the historical attribute,
    kept for compatibility); ``name`` is the protocol-facing alias.
    """

    method_name: str = ""

    @property
    def name(self) -> str:
        return self.method_name

    def replan(self, new_problem, *, reason: str = "") -> OptimizationOutcome:
        """Default full-resolve replan: rebind the problem, re-optimize.

        Every scheduler in this repo reads ``self.problem`` afresh on
        each :meth:`optimize` call, so rebinding is all a from-scratch
        replan needs.  Stateful optimizers override this to carry
        whatever survives the topology change (see PaMO).
        """
        old_problem = getattr(self, "problem", None)
        self.problem = new_problem
        telemetry.counter("sched.replans")
        telemetry.event(
            "sched.replan",
            method=self.name,
            reason=reason,
            warm=False,
            n_servers_before=(
                None if old_problem is None else int(old_problem.n_servers)
            ),
            n_servers_after=int(new_problem.n_servers),
            n_streams_before=(
                None if old_problem is None else int(old_problem.n_streams)
            ),
            n_streams_after=int(new_problem.n_streams),
        )
        return self.optimize()
