"""The unified scheduler API surface.

Every optimizer in this repo — PaMO, PaMO+, and the §5.1 baselines —
satisfies the same structural contract: construct with the problem (and
keyword configuration), call :meth:`Scheduler.optimize`, get an
:class:`~repro.core.result.OptimizationOutcome` back.  The
:class:`Scheduler` protocol names that contract so dispatch code (the
CLI, the bench harness, :func:`repro.baselines.registry.make_scheduler`)
can be written against the interface instead of a hand-rolled if/elif
ladder.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.result import OptimizationOutcome

__all__ = ["Scheduler", "SchedulerMixin"]


@runtime_checkable
class Scheduler(Protocol):
    """Structural interface of every scheduling optimizer.

    Attributes
    ----------
    name:
        Human-readable method name ('PaMO', 'JCAB', ...), stamped into
        :attr:`~repro.core.result.ScheduleDecision.method`.
    """

    name: str

    def optimize(self) -> OptimizationOutcome:
        """Solve the scheduling problem and return the full run record."""
        ...


class SchedulerMixin:
    """Shared ``name`` plumbing for concrete schedulers.

    Concrete classes declare ``method_name`` (the historical attribute,
    kept for compatibility); ``name`` is the protocol-facing alias.
    """

    method_name: str = ""

    @property
    def name(self) -> str:
        return self.method_name
