"""System-benefit machinery: utopia vectors, Eq. 13, normalization.

The paper's benefit metric needs three ingredients computed from the
problem instance:

* the **utopia vector** y* — per-objective single-objective optima
  (unattainable jointly, §5.1);
* **normalization bounds** per objective (outcome ranges over the
  decision space), so benefits are computed on ŷ ∈ [0, 1];
* the **normalized benefit** of footnote 2, mapping raw Eq.-13 values
  onto [0, 1] against PaMO+'s benefit (as max) and −½Σw (as min).
  (The footnote's formula as printed has an inverted sign — it would
  assign PaMO+ a score of 0; we use the clearly intended orientation.)
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EVAProblem
from repro.outcomes.functions import OBJECTIVES
from repro.pref.decision_maker import LinearL1Preference
from repro.utils import check_array_1d

#: objectives where lower raw values are better
LOWER_IS_BETTER = np.array([True, False, True, True, True])  # ltc, acc, net, com, eng


def _corner_outcomes(problem: EVAProblem) -> np.ndarray:
    """Outcome vectors at the extreme uniform configurations.

    All outcome functions are monotone in (r, s) per stream, so the
    all-min and all-max knob decisions bound every objective.
    """
    space = problem.config_space
    m = problem.n_streams
    lo_dec = (
        np.full(m, min(space.resolutions)),
        np.full(m, min(space.fps_values)),
    )
    hi_dec = (
        np.full(m, max(space.resolutions)),
        np.full(m, max(space.fps_values)),
    )
    return np.stack([problem.evaluate(*lo_dec), problem.evaluate(*hi_dec)])


def compute_bounds(problem: EVAProblem) -> tuple[np.ndarray, np.ndarray]:
    """(lo, hi) per-objective outcome ranges over the decision space."""
    corners = _corner_outcomes(problem)
    return corners.min(axis=0), corners.max(axis=0)


def compute_utopia(problem: EVAProblem) -> np.ndarray:
    """Utopia vector y*: each objective at its single-objective best.

    Latency/network/computation/energy take their minimum (achieved at
    the lowest configuration); accuracy takes its maximum (highest
    configuration).  This mirrors §5.1's "best outcomes obtained by
    single-objective optimization".
    """
    lo, hi = compute_bounds(problem)
    return np.where(LOWER_IS_BETTER, lo, hi)


def make_preference(
    problem: EVAProblem,
    weights=None,
) -> LinearL1Preference:
    """Construct the Eq. 13 ground-truth preference for a problem."""
    k = len(OBJECTIVES)
    if weights is None:
        weights = np.ones(k)
    weights = check_array_1d("weights", weights, min_len=k)
    lo, hi = compute_bounds(problem)
    return LinearL1Preference(
        weights=weights,
        utopia=compute_utopia(problem),
        lo=lo,
        hi=hi,
    )


def normalized_benefit(
    u: float | np.ndarray,
    u_max: float,
    u_min: float,
) -> np.ndarray:
    """Footnote-2 normalized benefit on [0, 1].

    ``u_max`` is the benefit of the PaMO+ solution, ``u_min`` is
    −½ Σ w_i.  Values clip to [0, 1] so degenerate runs stay plottable.
    """
    u = np.asarray(u, dtype=float)
    span = u_max - u_min
    if span <= 0:
        return np.ones_like(u)
    return np.clip((u - u_min) / span, 0.0, 1.0)


def benefit_ratio(
    preference: LinearL1Preference, y: np.ndarray
) -> np.ndarray:
    """Per-objective benefit shares (the stacked shades of Fig. 6).

    Objective i's contribution is w_i · (1 − |ŷ_i − ŷ*_i|) — how close
    the solution gets to utopia on that axis, weight-scaled — and the
    shares are normalized to sum to 1.
    """
    y = np.asarray(y, dtype=float)
    yn = preference.normalize(y)
    un = preference.normalize(preference.utopia)
    closeness = preference.weights * (1.0 - np.abs(yn - un))
    closeness = np.clip(closeness, 0.0, None)
    total = closeness.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(total > 0, closeness / total, 1.0 / len(OBJECTIVES))
    return out
