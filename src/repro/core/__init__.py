"""PaMO core: the paper's primary contribution.

* :class:`~repro.core.problem.EVAProblem` — the multi-objective EVA
  scheduling problem of §3 (streams, servers, configuration knobs,
  constraints, outcome evaluation through the zero-jitter scheduler);
* :mod:`repro.core.benefit` — Eq. 13 system benefit, utopia vectors,
  and the footnote-2 normalized benefit;
* :class:`~repro.core.pamo.PaMO` — the full Algorithm-2 scheduler
  (outcome GPs + preference learning + qNEI BO), plus the PaMO+ variant
  that uses the true preference function.
"""

from repro.core.problem import EVAProblem, ConfigSpace
from repro.core.benefit import (
    compute_utopia,
    compute_bounds,
    normalized_benefit,
    benefit_ratio,
    make_preference,
)
from repro.core.result import ScheduleDecision, OptimizationOutcome
from repro.core.scheduler import Scheduler, SchedulerMixin
from repro.core.pamo import PaMO, PaMOPlus
from repro.core.online import OnlineScheduler, DriftDetector, EpochRecord

__all__ = [
    "EVAProblem",
    "ConfigSpace",
    "compute_utopia",
    "compute_bounds",
    "normalized_benefit",
    "benefit_ratio",
    "make_preference",
    "ScheduleDecision",
    "OptimizationOutcome",
    "Scheduler",
    "SchedulerMixin",
    "PaMO",
    "PaMOPlus",
    "OnlineScheduler",
    "DriftDetector",
    "EpochRecord",
]
