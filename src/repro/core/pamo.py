"""PaMO: the full Algorithm-2 scheduler, and the PaMO+ oracle variant.

Three phases, exactly as the paper's Algorithm 2:

1. **Outcome function fitting** — profile ``n_profile`` per-stream
   configurations (with measurement noise) and fit the GP outcome bank
   f = [f_ltc, f_acc, f_net, f_com, f_eng].
2. **System preference modeling** — build an outcome space from random
   decisions, then collect ``n_init_comparisons + n_pref_queries``
   pairwise comparisons (random seeds, then EUBO-selected) from the
   decision maker and fit the preference GP ĝ.
3. **Best configuration solving** — a qNEI Bayesian-optimization loop
   over full decisions: each iteration recommends a batch of b
   configurations, runs them through Algorithm 1 + the outcome
   functions ("Profile_and_Algorithm1"), scores them with ĝ, updates
   both models, and stops when the iteration-best benefit moves less
   than δ.

``PaMOPlus`` replaces ĝ with the true preference function (the paper's
upper-bound baseline); everything else is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.acquisition import AcquisitionFunction, default_ladder, make_acquisition
from repro.bo.loop import BOLoop, BOLoopState
from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome, ScheduleDecision
from repro.core.scheduler import SchedulerMixin
from repro.obs import telemetry
from repro.obs.diagnostics import (
    emit_outcome_gp_diagnostics,
    emit_preference_diagnostics,
    holdout_rmse,
)
from repro.outcomes.functions import OBJECTIVES
from repro.outcomes.surrogate import OutcomeSurrogateBank
from repro.pref.decision_maker import DecisionMaker, TruePreference
from repro.pref.learner import PreferenceLearner
from repro.sched.grouping import InfeasibleScheduleError
from repro.utils import as_generator, check_positive
from repro.utils.compat import absorb_positional, resolve_deprecated
from repro.utils.rng import RngLike


class _BenefitSurrogate:
    """SurrogateAdapter composing the outcome bank with a utility head.

    The utility head is either the learned preference GP (PaMO) or the
    true preference function (PaMO+).  Benefit samples propagate
    outcome-model uncertainty through the head; for the learned head the
    preference posterior's marginal variance is added on top.
    """

    def __init__(
        self,
        problem: EVAProblem,
        bank: OutcomeSurrogateBank,
        *,
        learner: PreferenceLearner | None = None,
        true_preference: TruePreference | None = None,
    ) -> None:
        if (learner is None) == (true_preference is None):
            raise ValueError("provide exactly one of learner / true_preference")
        self.problem = problem
        self.bank = bank
        self.learner = learner
        self.true_preference = true_preference
        self._tx_cache: dict[bytes, float] = {}

    # -- transmission latency of a decision (deterministic) --------------
    def _tx_mean(self, x: np.ndarray) -> float:
        key = np.asarray(x, dtype=float).tobytes()
        if key not in self._tx_cache:
            telemetry.counter("pamo.tx_cache.miss")
            r, s = self.problem.decode(x)
            assignment, streams = self.problem.schedule(r, s)
            per_parent: dict[int, list[float]] = {}
            for st, q in zip(streams, assignment):
                per_parent.setdefault(st.parent_id, []).append(
                    st.bits_per_frame / (self.problem.bandwidths_mbps[q] * 1e6)
                )
            self._tx_cache[key] = float(
                np.mean([np.mean(v) for v in per_parent.values()])
            )
        else:
            telemetry.counter("pamo.tx_cache.hit")
        return self._tx_cache[key]

    # -- outcome posterior over decisions ---------------------------------
    def _decision_outcome_samples(
        self, x: np.ndarray, n_samples: int, rng
    ) -> np.ndarray:
        """(n_samples, n_decisions, 5) outcome samples for decisions x."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = x.shape[0]
        m = self.problem.n_streams
        pts = x.reshape(n * m, 2)
        per_stream = self.bank.sample_per_stream(pts, n_samples, rng=rng)
        per_stream = per_stream.reshape(n_samples, n, m, len(OBJECTIVES))
        agg = self.bank.aggregate(per_stream)  # (S, n, 5); ltc = compute only
        tx = np.array([self._tx_mean(xi) for xi in x])
        agg[..., 0] = agg[..., 0] + tx[None, :]
        return agg

    def _utility_of(self, y_flat: np.ndarray, rng) -> np.ndarray:
        if self.true_preference is not None:
            return self.true_preference.value(y_flat)
        assert self.learner is not None
        mean, var = self.learner.utility_with_uncertainty(y_flat)
        gen = as_generator(rng)
        return mean + np.sqrt(var) * gen.standard_normal(mean.shape)

    # -- SurrogateAdapter protocol ----------------------------------------
    def sample_benefit(self, x, n_samples, rng) -> np.ndarray:
        agg = self._decision_outcome_samples(x, n_samples, rng)
        s, n, k = agg.shape
        z = self._utility_of(agg.reshape(s * n, k), rng)
        return z.reshape(s, n)

    def benefit_mean(self, x) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = x.shape[0]
        m = self.problem.n_streams
        mean, _ = self.bank.predict_per_stream(x.reshape(n * m, 2))
        agg = self.bank.aggregate(mean.reshape(n, m, len(OBJECTIVES)))
        agg[..., 0] += np.array([self._tx_mean(xi) for xi in x])
        if self.true_preference is not None:
            return self.true_preference.value(agg)
        assert self.learner is not None
        return self.learner.utility(agg)

    def update(self, x, observations) -> None:
        per_stream_x, per_stream_y = observations["per_stream"]
        # Held-out RMSE: score the *pre-update* bank on the batch it is
        # about to condition on — a genuine out-of-sample error.
        rmse = (
            holdout_rmse(self.bank, per_stream_x, per_stream_y)
            if telemetry.enabled
            else None
        )
        with telemetry.span("pamo.outcome_refit"):
            self.bank = self.bank.update(per_stream_x, per_stream_y)
        telemetry.counter("pamo.outcome_gp_refits")
        if telemetry.enabled:
            emit_outcome_gp_diagnostics(self.bank, phase="update", rmse=rmse)


class PaMO(SchedulerMixin):
    """Preference-aware Multi-Objective scheduler (the paper's system).

    All configuration after ``problem`` is keyword-only (legacy
    positional ``decision_maker`` and the ``max_iters`` alias still work
    with a :class:`DeprecationWarning`).

    Parameters
    ----------
    problem:
        The EVA problem instance.
    decision_maker:
        Oracle answering pairwise outcome comparisons (§4.2).
    acquisition:
        'qNEI' (default, the paper's choice), 'qEI', 'qUCB', or 'qSR'
        — the §5.1 PaMO variants — or a pre-built acquisition object.
    n_profile:
        Per-stream profiling samples for outcome-model fitting (U).
    n_outcome_space:
        Random decisions forming the comparison outcome space Y.
    n_init_comparisons, n_pref_queries:
        Random seed pairs and EUBO-selected queries (V).
    batch_size, delta, n_iterations, n_mc_samples:
        BO controls (b, δ, MaxIterNum, MC sample count).
    profile_noise:
        Relative measurement noise applied when profiling outcomes.
    resilient:
        Degrade instead of dying: wrap the acquisition in the
        qNEI → qUCB → random fallback ladder and return a known-
        feasible schedule if the BO loop hits a model pathology.  The
        non-faulty path is bit-identical with or without it.
    checkpoint_path, checkpoint_every:
        When both are set, pickle a resumable checkpoint of the whole
        scheduler every ``checkpoint_every`` completed BO iterations
        (see :mod:`repro.resilience.checkpoint`).
    """

    method_name = "PaMO"

    def __init__(
        self,
        problem: EVAProblem,
        *args,
        decision_maker: DecisionMaker | None = None,
        acquisition: str | AcquisitionFunction = "qNEI",
        n_profile: int = 60,
        n_outcome_space: int = 30,
        n_init_comparisons: int = 3,
        n_pref_queries: int = 15,
        batch_size: int = 4,
        delta: float = 0.02,
        n_iterations: int | None = None,
        max_iters: int | None = None,
        n_mc_samples: int = 32,
        n_pool: int = 24,
        profile_noise: float = 0.02,
        resilient: bool = True,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        rng: RngLike = None,
    ) -> None:
        shim = absorb_positional(
            type(self).__name__, args, ("decision_maker",),
            {"decision_maker": decision_maker},
        )
        decision_maker = shim["decision_maker"]
        if decision_maker is None:
            raise TypeError(
                f"{type(self).__name__}() missing required keyword argument "
                "'decision_maker'"
            )
        n_iterations = resolve_deprecated(
            type(self).__name__, "max_iters", max_iters,
            "n_iterations", n_iterations, default=12,
        )
        self.problem = problem
        self.decision_maker = decision_maker
        if isinstance(acquisition, str):
            acquisition = make_acquisition(acquisition, n_samples=n_mc_samples)
        self.acquisition = acquisition
        self.n_profile = int(check_positive("n_profile", n_profile))
        self.n_outcome_space = int(check_positive("n_outcome_space", n_outcome_space))
        self.n_init_comparisons = int(
            check_positive("n_init_comparisons", n_init_comparisons)
        )
        self.n_pref_queries = int(
            check_positive("n_pref_queries", n_pref_queries, strict=False)
        )
        self.batch_size = int(check_positive("batch_size", batch_size))
        self.delta = check_positive("delta", delta)
        self.n_iterations = int(check_positive("n_iterations", n_iterations))
        self.n_pool = int(check_positive("n_pool", n_pool))
        self.profile_noise = check_positive(
            "profile_noise", profile_noise, strict=False
        )
        self.resilient = bool(resilient)
        self.checkpoint_path = checkpoint_path
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.checkpoint_every = int(checkpoint_every)
        self._rng = as_generator(rng)

        self.bank: OutcomeSurrogateBank | None = None
        self.learner: PreferenceLearner | None = None
        self._incumbent: tuple[float, np.ndarray] | None = None
        self._incumbent_outcome: np.ndarray | None = None
        self._last_observed: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def max_iters(self) -> int:
        """Deprecated alias of :attr:`n_iterations`."""
        return self.n_iterations

    # ------------------------------------------------------------------
    # Phase 1: outcome-function fitting
    def _per_stream_truth(self, pts: np.ndarray) -> np.ndarray:
        """Ground-truth per-stream outcomes at (r, s) points.

        ltc column holds the *compute* latency only (transmission is
        decision-dependent and added analytically downstream).
        """
        fns = self.problem.outcomes
        out = np.empty((pts.shape[0], len(OBJECTIVES)))
        for i, (r, s) in enumerate(pts):
            out[i, 0] = self.problem.profile.processing_time(r)
            out[i, 1] = fns.accuracy([r], [s])
            out[i, 2] = fns.network_mbps([r], [s])
            out[i, 3] = fns.computation_tflops([r], [s])
            out[i, 4] = fns.energy_watts([r], [s])
        return out

    def _profile_outcomes(self, pts: np.ndarray) -> np.ndarray:
        """Noisy profiling measurements (relative Gaussian noise)."""
        truth = self._per_stream_truth(pts)
        if self.profile_noise > 0:
            noise = self._rng.normal(1.0, self.profile_noise, truth.shape)
            truth = truth * noise
            truth[:, 1] = np.clip(truth[:, 1], 0.0, 1.0)
        return truth

    def fit_outcome_models(self) -> OutcomeSurrogateBank:
        """Algorithm 2, phase 1."""
        with telemetry.span("pamo.fit_outcomes"):
            space = self.problem.config_space
            all_cfg = space.all_configs()
            pts = all_cfg[self._rng.integers(0, all_cfg.shape[0], self.n_profile)]
            y = self._profile_outcomes(pts)
            telemetry.counter("pamo.profile_points", pts.shape[0])
            bounds = space.bounds()
            bank = OutcomeSurrogateBank(
                resolution_bounds=(bounds[0, 0], bounds[0, 1]),
                fps_bounds=(bounds[1, 0], bounds[1, 1]),
            )
            bank.fit(pts, y, rng=self._rng)
            telemetry.counter("pamo.outcome_gp_fits")
            self.bank = bank
            emit_outcome_gp_diagnostics(bank, phase="fit")
        return bank

    # ------------------------------------------------------------------
    # Phase 2: preference modeling
    def build_outcome_space(self) -> np.ndarray:
        """Outcome vectors of random decisions (the comparison space Y)."""
        ys = []
        for _ in range(self.n_outcome_space):
            r, s = self.problem.sample_decision(self._rng)
            ys.append(self.problem.evaluate(r, s))
        return np.stack(ys)

    def fit_preference_model(self) -> PreferenceLearner:
        """Algorithm 2, phase 2 (lines 5–11)."""
        with telemetry.span("pamo.fit_preference"):
            space = self.build_outcome_space()
            learner = PreferenceLearner(
                space,
                decision_maker=self.decision_maker,
                rng=self._rng,
            )
            learner.initialize(self.n_init_comparisons)
            learner.run(self.n_pref_queries)
            self.learner = learner
        return learner

    # ------------------------------------------------------------------
    # Phase 3: BO solving
    def _make_adapter(self) -> _BenefitSurrogate:
        assert self.bank is not None
        return _BenefitSurrogate(self.problem, self.bank, learner=self.learner)

    def _candidates(self, rng: np.random.Generator) -> np.ndarray:
        """Acquisition search pool: uniform, random, and local candidates.

        BoTorch optimizes the acquisition with gradient restarts over a
        continuous space; the discrete analog here mixes three candidate
        families so the pool covers both global structure and the
        incumbent's neighborhood:

        * *uniform decisions* — every stream at the same knob pair
          (these sweep the benefit landscape's main diagonal);
        * *random decisions* — independent knobs per stream;
        * *mutations* — the best observed decision with 1–2 streams'
          knobs re-rolled (local refinement).
        """
        m = self.problem.n_streams
        space = self.problem.config_space
        pool: list[np.ndarray] = []

        all_cfg = space.all_configs()
        n_uniform = min(len(all_cfg), max(4, self.n_pool // 3))
        for idx in rng.choice(len(all_cfg), size=n_uniform, replace=False):
            r, s = all_cfg[idx]
            pool.append(self.problem.encode(np.full(m, r), np.full(m, s)))

        n_random = max(4, self.n_pool // 3)
        for _ in range(n_random):
            r, s = self.problem.sample_decision(rng)
            pool.append(self.problem.encode(r, s))

        if self._incumbent is not None:
            n_mut = max(4, self.n_pool - len(pool))
            base_r, base_s = self.problem.decode(self._incumbent[1])
            for _ in range(n_mut):
                r = base_r.copy()
                s = base_s.copy()
                for i in rng.choice(m, size=min(m, int(rng.integers(1, 3))), replace=False):
                    r[i] = rng.choice(space.resolutions)
                    s[i] = rng.choice(space.fps_values)
                pool.append(self.problem.encode(r, s))

        uniq = np.unique(np.stack(pool), axis=0)
        # Search only the feasible region: decisions Algorithm 1 cannot
        # schedule under Const2 are invalid ("No feasible grouping
        # scheme") — evaluating them analytically would hide the
        # queueing delay they cause on the real system.
        feasible = np.array(
            [self.problem.is_feasible(*self.problem.decode(x)) for x in uniq]
        )
        if feasible.sum() >= 4:
            return uniq[feasible]
        # Tight instance (few feasible decisions): keep sampling random
        # decisions for feasible ones, anchored by the minimum
        # configuration, which is feasible in any schedulable system.
        extras: list[np.ndarray] = [
            self.problem.encode(
                np.full(m, min(space.resolutions)), np.full(m, min(space.fps_values))
            )
        ]
        attempts = 0
        while len(extras) + int(feasible.sum()) < 8 and attempts < 200:
            r, s = self.problem.sample_decision(rng)
            attempts += 1
            if self.problem.is_feasible(r, s):
                extras.append(self.problem.encode(r, s))
        return np.unique(np.vstack([uniq[feasible], np.stack(extras)]), axis=0)

    def _observe(self, x_batch: np.ndarray) -> dict:
        """Run a batch through Algorithm 1 + profiling (line 16)."""
        x_batch = np.atleast_2d(x_batch)
        telemetry.counter("pamo.observed_decisions", x_batch.shape[0])
        outcomes = []
        ps_x, ps_y = [], []
        for x in x_batch:
            r, s = self.problem.decode(x)
            outcomes.append(self.problem.evaluate(r, s))
            pts = np.column_stack([r, s])
            ps_x.append(pts)
            ps_y.append(self._profile_outcomes(pts))
        return {
            "x_batch": x_batch,
            "outcomes": np.stack(outcomes),
            "per_stream": (np.vstack(ps_x), np.vstack(ps_y)),
        }

    def _benefit_of(self, observations: dict) -> np.ndarray:
        """z = ĝ(y): benefit via the learned preference model (line 17)."""
        assert self.learner is not None
        return self.learner.utility(observations["outcomes"])

    def _track_incumbent(self, x_batch: np.ndarray, z_batch: np.ndarray) -> None:
        best = int(np.argmax(z_batch))
        if self._incumbent is None or z_batch[best] > self._incumbent[0]:
            self._incumbent = (float(z_batch[best]), x_batch[best].copy())

    def _emit_iteration_diagnostics(self, iteration: int) -> None:
        """BOLoop diagnostics hook: preference-model fidelity per iteration.

        The simulated decision maker exposes its hidden pricing rule, so
        Kendall-τ rank agreement against the truth is measurable here; a
        real deployment would omit the oracle and still get comparison
        counts.  PaMO+ has no learner — the helper no-ops.
        """
        emit_preference_diagnostics(
            self.learner,
            oracle=getattr(self.decision_maker, "preference", None),
            iteration=iteration,
        )

    def _refine_preference(self, outcomes: np.ndarray) -> None:
        """Algorithm 2 line 19: extend 𝒫 with comparisons at new outcomes.

        Each freshly observed outcome vector is compared (one decision-
        maker query each) against the incumbent's outcome, anchoring the
        preference model in the region the BO search is converging to.
        """
        if self.learner is None:
            return
        if self._incumbent_outcome is None:
            return
        self.learner.compare_against(outcomes, self._incumbent_outcome)

    def _save_checkpoint(self, state: BOLoopState) -> None:
        """BOLoop checkpoint hook: persist the whole scheduler + loop state."""
        assert self.checkpoint_path is not None
        import repro.resilience.checkpoint as ckpt_mod

        ckpt_mod.save_checkpoint(
            self.checkpoint_path,
            scheduler=self,
            bo_state=state,
            method=self.method_name,
            iteration=state.next_iteration - 1,
        )

    def _score_outcomes(self, outcomes: np.ndarray) -> np.ndarray:
        """Benefit of outcome vectors under this scheduler's utility head."""
        return self._benefit_of({"outcomes": np.atleast_2d(outcomes)})

    def _fallback_schedule(self, error: BaseException) -> OptimizationOutcome:
        """Last rung of the degradation ladder: a known-feasible decision.

        When the BO loop itself dies on a model pathology, fall back to
        the best decision already observed (if it is still feasible on
        the current topology) or to the minimum configuration, which is
        feasible in any schedulable system.  The run degrades — it does
        not crash.
        """
        telemetry.counter("pamo.bo_fallbacks")
        space = self.problem.config_space
        m = self.problem.n_streams
        source = "min_config"
        r = np.full(m, min(space.resolutions))
        s = np.full(m, min(space.fps_values))
        if self._incumbent is not None:
            inc_r, inc_s = self.problem.decode(self._incumbent[1])
            if self.problem.is_feasible(inc_r, inc_s):
                r, s = inc_r, inc_s
                source = "incumbent"
        assignment, _ = self.problem.schedule(r, s)
        outcome = self.problem.evaluate(r, s)
        z = float(self._score_outcomes(outcome)[0])
        telemetry.event(
            "fault.bo_fallback",
            source=source,
            error=f"{type(error).__name__}: {error}",
        )
        decision = ScheduleDecision(
            resolutions=r,
            fps=s,
            assignment=assignment,
            outcome=outcome,
            benefit=z,
            method=self.method_name,
        )
        return OptimizationOutcome(
            decision=decision,
            n_iterations=0,
            converged=False,
            history=[],
            n_dm_queries=self.decision_maker.n_queries,
            extras={
                "fallback": source,
                "error": f"{type(error).__name__}: {error}",
            },
        )

    def replan(self, new_problem: EVAProblem, *, reason: str = "") -> OptimizationOutcome:
        """Re-optimize after a topology change, warm-starting from history.

        The outcome-GP bank and preference learner are models over
        per-stream knobs and outcome vectors respectively — both
        topology-independent — so they carry over untouched.  Observed
        *benefits* do not: transmission latency depends on which servers
        exist, so prior observations are re-scored on ``new_problem``
        (and dropped entirely if the stream count changed, since the
        decision vector dimension differs).  Observations infeasible on
        the new topology are dropped.
        """
        with telemetry.span("pamo.replan"):
            old_problem = self.problem
            same_dim = new_problem.n_streams == old_problem.n_streams
            self.problem = new_problem
            warm_x = warm_z = None
            kept = dropped = 0
            if same_dim and self._last_observed is not None:
                keep_x, outs = [], []
                for x in np.unique(
                    np.atleast_2d(self._last_observed[0]), axis=0
                ):
                    r, s = new_problem.decode(x)
                    if new_problem.is_feasible(r, s):
                        keep_x.append(np.asarray(x, dtype=float))
                        outs.append(new_problem.evaluate(r, s))
                    else:
                        dropped += 1
                kept = len(keep_x)
                if kept:
                    warm_x = np.stack(keep_x)
                    warm_z = np.asarray(
                        self._score_outcomes(np.stack(outs)), dtype=float
                    )
            elif self._last_observed is not None:
                dropped = int(np.atleast_2d(self._last_observed[0]).shape[0])
            # The incumbent's benefit embeds the old topology's latency;
            # re-derive it from the re-scored warm set.
            self._incumbent = None
            self._incumbent_outcome = None
            self._last_observed = None
            if warm_z is not None and warm_z.size:
                best = int(np.argmax(warm_z))
                self._incumbent = (float(warm_z[best]), warm_x[best].copy())
                self._incumbent_outcome = np.asarray(outs[best], dtype=float)
            telemetry.counter("pamo.replans")
            telemetry.event(
                "fault.replan",
                reason=reason,
                n_servers_before=int(old_problem.n_servers),
                n_servers_after=int(new_problem.n_servers),
                n_streams_before=int(old_problem.n_streams),
                n_streams_after=int(new_problem.n_streams),
                observations_kept=kept,
                observations_dropped=dropped,
            )
            return self._optimize(warm_x=warm_x, warm_z=warm_z)

    def optimize(self, *, resume: BOLoopState | None = None) -> OptimizationOutcome:
        """Run all three phases; return the recommended decision.

        ``resume`` continues an interrupted run from a checkpointed
        :class:`~repro.bo.loop.BOLoopState` (see
        :mod:`repro.resilience.checkpoint`) — only meaningful on a
        scheduler object restored from the same checkpoint, where the
        models and RNG are in their at-checkpoint state.
        """
        with telemetry.span("pamo.optimize"):
            return self._optimize(resume=resume)

    def _optimize(
        self,
        resume: BOLoopState | None = None,
        warm_x: np.ndarray | None = None,
        warm_z: np.ndarray | None = None,
    ) -> OptimizationOutcome:
        if self.bank is None:
            self.fit_outcome_models()
        if self.learner is None and not isinstance(self, PaMOPlus):
            self.fit_preference_model()
        if self.learner is not None and self._incumbent_outcome is None:
            space = self.learner.outcome_space
            u = self.learner.utility(space)
            self._incumbent_outcome = space[int(np.argmax(u))].copy()
        adapter = self._make_adapter()

        def benefit_with_tracking(obs: dict) -> np.ndarray:
            # Refine ĝ with comparisons at the new outcomes (line 19),
            # then rescore so z reflects the refreshed model.
            self._refine_preference(obs["outcomes"])
            z = self._benefit_of(obs)
            self._track_incumbent(obs["x_batch"], z)
            best = int(np.argmax(z))
            if (
                self._incumbent_outcome is None
                or z[best] >= self._incumbent[0] - 1e-12
            ):
                self._incumbent_outcome = obs["outcomes"][best].copy()
            return z

        # The acquisition ladder only changes behavior when the primary
        # rung fails (its success path delegates verbatim, same RNG
        # stream), so seeded non-faulty runs are unaffected.
        acquisition = (
            default_ladder(self.acquisition) if self.resilient else self.acquisition
        )
        checkpointing = (
            self.checkpoint_path is not None and self.checkpoint_every > 0
        )
        loop = BOLoop(
            adapter,
            observe=self._observe,
            benefit_of=benefit_with_tracking,
            candidates=self._candidates,
            acquisition=acquisition,
            batch_size=self.batch_size,
            delta=self.delta,
            n_iterations=self.n_iterations,
            on_iteration=self._emit_iteration_diagnostics,
            checkpoint_every=self.checkpoint_every if checkpointing else 0,
            on_checkpoint=self._save_checkpoint if checkpointing else None,
            rng=self._rng,
        )
        try:
            with telemetry.span("pamo.bo_loop"):
                res = loop.run(initial_x=warm_x, initial_z=warm_z, resume=resume)
        except (
            np.linalg.LinAlgError,
            FloatingPointError,
            InfeasibleScheduleError,
            RuntimeError,
        ) as exc:
            if not self.resilient:
                raise
            return self._fallback_schedule(exc)
        self._last_observed = (res.observed_x, res.observed_z)
        r, s = self.problem.decode(res.best_x)
        assignment, _ = self.problem.schedule(r, s)
        outcome = self.problem.evaluate(r, s)
        decision = ScheduleDecision(
            resolutions=r,
            fps=s,
            assignment=assignment,
            outcome=outcome,
            benefit=res.best_z,
            method=self.method_name,
        )
        return OptimizationOutcome(
            decision=decision,
            n_iterations=res.n_iterations,
            converged=res.converged,
            history=res.history_z,
            n_dm_queries=self.decision_maker.n_queries,
        )


class PaMOPlus(PaMO):
    """PaMO with the *true* preference function (§5.1's upper bound).

    Skips preference learning entirely; the BO loop scores observations
    with the ground-truth benefit.  Needs the true preference exposed
    by the decision maker.
    """

    method_name = "PaMO+"

    def _make_adapter(self) -> _BenefitSurrogate:
        assert self.bank is not None
        return _BenefitSurrogate(
            self.problem,
            self.bank,
            true_preference=self.decision_maker.preference,
        )

    def _benefit_of(self, observations: dict) -> np.ndarray:
        return self.decision_maker.preference.value(observations["outcomes"])
