"""Decision and optimization result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScheduleDecision:
    """A complete scheduling decision plus its evaluated outcome.

    ``assignment``/``split_streams`` describe the Algorithm-1 schedule
    of the (possibly split) stream set; ``outcome`` is the five-vector
    [ltc, acc, net, com, eng]; ``benefit`` is whatever benefit function
    scored it (true preference for PaMO+/baselines, learned ĝ for PaMO).
    """

    resolutions: np.ndarray
    fps: np.ndarray
    assignment: list[int]
    outcome: np.ndarray
    benefit: float
    method: str = ""

    def __post_init__(self) -> None:
        self.resolutions = np.asarray(self.resolutions, dtype=float)
        self.fps = np.asarray(self.fps, dtype=float)
        self.outcome = np.asarray(self.outcome, dtype=float)

    @property
    def n_streams(self) -> int:
        return self.resolutions.size


@dataclass
class OptimizationOutcome:
    """Full record of one optimizer run."""

    decision: ScheduleDecision
    true_benefit: float | None = None
    n_iterations: int = 0
    converged: bool = False
    history: list[float] = field(default_factory=list)
    n_dm_queries: int = 0
    extras: dict = field(default_factory=dict)
