"""Decision and optimization result containers.

Both containers round-trip through JSON-safe dicts (``to_dict`` /
``from_dict``) so result persistence (:mod:`repro.bench.io`) and the
telemetry event log (:mod:`repro.obs`) share one serialization format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.serialization import to_jsonable


@dataclass
class ScheduleDecision:
    """A complete scheduling decision plus its evaluated outcome.

    ``assignment``/``split_streams`` describe the Algorithm-1 schedule
    of the (possibly split) stream set; ``outcome`` is the five-vector
    [ltc, acc, net, com, eng]; ``benefit`` is whatever benefit function
    scored it (true preference for PaMO+/baselines, learned ĝ for PaMO).
    """

    resolutions: np.ndarray
    fps: np.ndarray
    assignment: list[int]
    outcome: np.ndarray
    benefit: float
    method: str = ""

    def __post_init__(self) -> None:
        self.resolutions = np.asarray(self.resolutions, dtype=float)
        self.fps = np.asarray(self.fps, dtype=float)
        self.outcome = np.asarray(self.outcome, dtype=float)

    @property
    def n_streams(self) -> int:
        return self.resolutions.size

    def to_dict(self) -> dict:
        """JSON-safe dict (numpy arrays become lists)."""
        return {
            "resolutions": self.resolutions.tolist(),
            "fps": self.fps.tolist(),
            "assignment": [int(q) for q in self.assignment],
            "outcome": self.outcome.tolist(),
            "benefit": float(self.benefit),
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScheduleDecision":
        """Rebuild a decision from :meth:`to_dict` output."""
        return cls(
            resolutions=d["resolutions"],
            fps=d["fps"],
            assignment=[int(q) for q in d["assignment"]],
            outcome=d["outcome"],
            benefit=float(d["benefit"]),
            method=d.get("method", ""),
        )


@dataclass
class OptimizationOutcome:
    """Full record of one optimizer run."""

    decision: ScheduleDecision
    true_benefit: float | None = None
    n_iterations: int = 0
    converged: bool = False
    history: list[float] = field(default_factory=list)
    n_dm_queries: int = 0
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe dict; ``extras`` values pass through the shared encoder."""
        return {
            "decision": self.decision.to_dict(),
            "true_benefit": (
                None if self.true_benefit is None else float(self.true_benefit)
            ),
            "n_iterations": int(self.n_iterations),
            "converged": bool(self.converged),
            "history": [float(z) for z in self.history],
            "n_dm_queries": int(self.n_dm_queries),
            "extras": to_jsonable(self.extras),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "OptimizationOutcome":
        """Rebuild an outcome record from :meth:`to_dict` output."""
        return cls(
            decision=ScheduleDecision.from_dict(d["decision"]),
            true_benefit=d.get("true_benefit"),
            n_iterations=int(d.get("n_iterations", 0)),
            converged=bool(d.get("converged", False)),
            history=[float(z) for z in d.get("history", [])],
            n_dm_queries=int(d.get("n_dm_queries", 0)),
            extras=dict(d.get("extras", {})),
        )
