"""Online operation: periodic monitoring and re-optimization.

§2.1: "The scheduler periodically collects performance and resource
information ... According to these real-time data, the scheduler
adjusts configuration and scheduling decisions."  This module wraps a
PaMO (or any ``optimize()``-bearing scheduler) factory in that loop:

* each epoch, the current decision runs on the simulator and the
  observed outcome vector is compared to the expected one;
* a drift detector flags sustained deviation (content change, link
  degradation, server slowdown);
* on drift, the scheduler is re-instantiated against the *current*
  problem and a fresh decision deployed.

The loop is substrate-agnostic: the "environment" is any callable
mapping a decision to an observed outcome vector, so tests can inject
arbitrary disturbances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import ScheduleDecision
from repro.outcomes.functions import OBJECTIVES
from repro.utils import check_positive


@dataclass
class DriftDetector:
    """Flags sustained relative deviation of observed vs expected outcomes.

    Tracks, per epoch, the max relative deviation across objectives;
    drift fires after ``patience`` consecutive epochs above
    ``rel_threshold``.
    """

    rel_threshold: float = 0.25
    patience: int = 2
    _strikes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_positive("rel_threshold", self.rel_threshold)
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")

    def deviation(self, expected: np.ndarray, observed: np.ndarray) -> float:
        """Max relative per-objective deviation of observed vs expected."""
        expected = np.asarray(expected, dtype=float)
        observed = np.asarray(observed, dtype=float)
        denom = np.maximum(np.abs(expected), 1e-9)
        return float(np.max(np.abs(observed - expected) / denom))

    def update(self, expected: np.ndarray, observed: np.ndarray) -> bool:
        """Feed one epoch's observation; returns True when drift fires."""
        if self.deviation(expected, observed) > self.rel_threshold:
            self._strikes += 1
        else:
            self._strikes = 0
        if self._strikes >= self.patience:
            self._strikes = 0
            return True
        return False

    def reset(self) -> None:
        """Clear accumulated strikes (after a redeploy)."""
        self._strikes = 0


@dataclass
class EpochRecord:
    """One monitoring epoch."""

    epoch: int
    expected: np.ndarray
    observed: np.ndarray
    deviation: float
    reoptimized: bool


class OnlineScheduler:
    """Monitor → detect drift → re-optimize loop.

    Parameters
    ----------
    problem:
        The (current) EVA problem.
    make_scheduler:
        ``make_scheduler(problem, epoch) -> scheduler`` with an
        ``optimize()`` returning an object whose ``.decision`` is a
        :class:`ScheduleDecision` (PaMO, PaMOPlus, baselines...).
    environment:
        ``environment(decision, epoch) -> (5,) observed outcome``; the
        real system.  Defaults to the problem's measured evaluation.
    detector:
        Drift detector instance.
    """

    def __init__(
        self,
        problem: EVAProblem,
        make_scheduler: Callable[[EVAProblem, int], object],
        *,
        environment: Callable[[ScheduleDecision, int], np.ndarray] | None = None,
        detector: DriftDetector | None = None,
    ) -> None:
        self.problem = problem
        self.make_scheduler = make_scheduler
        self.environment = environment or self._default_environment
        self.detector = detector or DriftDetector()
        self.decision: ScheduleDecision | None = None
        self.history: list[EpochRecord] = []
        self.n_reoptimizations = 0

    def _default_environment(self, decision: ScheduleDecision, epoch: int) -> np.ndarray:
        return self.problem.evaluate_measured(decision.resolutions, decision.fps)

    def _deploy(self, epoch: int) -> None:
        scheduler = self.make_scheduler(self.problem, epoch)
        self.decision = scheduler.optimize().decision
        self.detector.reset()

    def run(self, n_epochs: int) -> list[EpochRecord]:
        """Run the monitoring loop for ``n_epochs``; returns the log."""
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if self.decision is None:
            self._deploy(epoch=0)
        assert self.decision is not None
        for epoch in range(n_epochs):
            expected = self.decision.outcome
            observed = self.environment(self.decision, epoch)
            dev = self.detector.deviation(expected, observed)
            drifted = self.detector.update(expected, observed)
            if drifted:
                self.n_reoptimizations += 1
                self._deploy(epoch)
            self.history.append(
                EpochRecord(
                    epoch=epoch,
                    expected=np.asarray(expected, dtype=float),
                    observed=np.asarray(observed, dtype=float),
                    deviation=dev,
                    reoptimized=drifted,
                )
            )
        return self.history
