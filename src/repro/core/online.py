"""Online operation: periodic monitoring and re-optimization (legacy).

§2.1: "The scheduler periodically collects performance and resource
information ... According to these real-time data, the scheduler
adjusts configuration and scheduling decisions."

This module predates :mod:`repro.serve`, which is now the home of the
online loop.  :class:`DriftDetector` and :class:`EpochRecord` remain
canonical here — the serve loop uses the detector as one of its event
sources — but :class:`OnlineScheduler` is a thin compatibility shim
over :meth:`repro.serve.service.SchedulerService.run_epochs` and warns
``DeprecationWarning`` on construction.  Migration (see the README
table):

=============================== =======================================
Legacy                          Serve equivalent
=============================== =======================================
``OnlineScheduler(p, f).run(n)``  ``SchedulerService(p, preference=...,
                                  scheduler_factory=f,
                                  reuse_scheduler=False)
                                  .run_epochs(n, environment=...)``
``EpochRecord``                 ``repro.serve.service.ServeEpochTick``
``DriftDetector``               unchanged (pass to ``run_epochs``)
=============================== =======================================

The shim preserves the historical semantics exactly: epochs are
numbered ``0..n-1`` per ``run()`` call, the scheduler is re-instantiated
fresh on every deploy, records land in ``history`` *after* a drift
redeploy with the pre-deploy expected/observed pair, and the default
environment replays the decision through the measured simulator.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import ScheduleDecision
from repro.utils import check_positive

__all__ = ["DriftDetector", "EpochRecord", "OnlineScheduler"]


@dataclass
class DriftDetector:
    """Flags sustained relative deviation of observed vs expected outcomes.

    Tracks, per epoch, the max relative deviation across objectives;
    drift fires after ``patience`` consecutive epochs above
    ``rel_threshold``.
    """

    rel_threshold: float = 0.25
    patience: int = 2
    _strikes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_positive("rel_threshold", self.rel_threshold)
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")

    def deviation(self, expected: np.ndarray, observed: np.ndarray) -> float:
        """Max relative per-objective deviation of observed vs expected."""
        expected = np.asarray(expected, dtype=float)
        observed = np.asarray(observed, dtype=float)
        denom = np.maximum(np.abs(expected), 1e-9)
        return float(np.max(np.abs(observed - expected) / denom))

    def update(self, expected: np.ndarray, observed: np.ndarray) -> bool:
        """Feed one epoch's observation; returns True when drift fires."""
        if self.deviation(expected, observed) > self.rel_threshold:
            self._strikes += 1
        else:
            self._strikes = 0
        if self._strikes >= self.patience:
            self._strikes = 0
            return True
        return False

    def reset(self) -> None:
        """Clear accumulated strikes (after a redeploy)."""
        self._strikes = 0


@dataclass
class EpochRecord:
    """One monitoring epoch."""

    epoch: int
    expected: np.ndarray
    observed: np.ndarray
    deviation: float
    reoptimized: bool


class OnlineScheduler:
    """Monitor → detect drift → re-optimize loop (deprecated shim).

    Deprecated: use :class:`repro.serve.service.SchedulerService` — its
    :meth:`~repro.serve.service.SchedulerService.run_epochs` is this
    loop, and its event interface subsumes it.  This class remains as a
    compatible front over the serve implementation.

    Parameters
    ----------
    problem:
        The (current) EVA problem.
    make_scheduler:
        ``make_scheduler(problem, epoch) -> scheduler`` with an
        ``optimize()`` returning an object whose ``.decision`` is a
        :class:`ScheduleDecision` (PaMO, PaMOPlus, baselines...).
    environment:
        ``environment(decision, epoch) -> (5,) observed outcome``; the
        real system.  Defaults to the problem's measured evaluation.
    detector:
        Drift detector instance.
    """

    def __init__(
        self,
        problem: EVAProblem,
        make_scheduler: Callable[[EVAProblem, int], object],
        *,
        environment: Callable[[ScheduleDecision, int], np.ndarray] | None = None,
        detector: DriftDetector | None = None,
    ) -> None:
        warnings.warn(
            "OnlineScheduler is deprecated; use "
            "repro.serve.SchedulerService (run_epochs for this loop, "
            "run for the event-driven serve loop)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.problem = problem
        self.make_scheduler = make_scheduler
        self.environment = environment or self._default_environment
        self.detector = detector or DriftDetector()
        self.history: list[EpochRecord] = []
        self.n_reoptimizations = 0
        self._service = None

    @property
    def decision(self) -> ScheduleDecision | None:
        """The currently deployed decision (None before the first run)."""
        return None if self._service is None else self._service.last_decision

    def _default_environment(self, decision: ScheduleDecision, epoch: int) -> np.ndarray:
        return self.problem.evaluate_measured(decision.resolutions, decision.fps)

    def _ensure_service(self):
        if self._service is None:
            from repro.serve.engine import approx_preference
            from repro.serve.service import SchedulerService

            self._service = SchedulerService(
                self.problem,
                preference=approx_preference(self.problem),
                scheduler_factory=self.make_scheduler,
                reuse_scheduler=False,
            )
        # Track in-place rebinding of .problem (legacy behavior let
        # callers swap the problem between run() calls).
        self._service.problem = self.problem
        return self._service

    def run(self, n_epochs: int) -> list[EpochRecord]:
        """Run the monitoring loop for ``n_epochs``; returns the log."""
        service = self._ensure_service()
        ticks = service.run_epochs(
            n_epochs, environment=self.environment, detector=self.detector
        )
        self.n_reoptimizations += sum(1 for t in ticks if t.reoptimized)
        self.history.extend(
            EpochRecord(
                epoch=t.epoch,
                expected=t.expected,
                observed=t.observed,
                deviation=t.deviation,
                reoptimized=t.reoptimized,
            )
            for t in ticks
        )
        return self.history
