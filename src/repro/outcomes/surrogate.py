"""GP outcome-model bank: the f = [f_ltc, f_acc, f_net, f_com, f_eng].

Algorithm 2 line 4: "Fit the outcome functions by GP models based on
the data set D_U".  Each objective gets an independent
:class:`~repro.gp.regression.GPRegressor` over the normalized
per-stream configuration (r, s) ∈ [0,1]².  Aggregation across the M
streams of a decision follows Eq. 2–5 (mean for latency/accuracy, sum
for network/computation/energy), and the latency objective adds the
analytic transmission term θ_bit(r)/B_q on top of the learned compute
latency, as §4.1 prescribes (the GP models the post-scheduling latency
only — the zero-jitter scheduler makes it stable enough to model).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gp.kernels import Matern52Kernel
from repro.gp.regression import GPRegressor
from repro.outcomes.functions import OBJECTIVES
from repro.outcomes.profiler import OutcomeSample
from repro.utils import as_generator, check_array_2d
from repro.utils.rng import RngLike


class OutcomeSurrogateBank:
    """Five per-stream GP outcome models plus decision-level aggregation.

    Parameters
    ----------
    resolution_bounds, fps_bounds:
        Raw configuration ranges used to normalize inputs to [0, 1]².
    """

    #: aggregation per objective: mean over streams or sum over streams
    _AGG = {"ltc": "mean", "acc": "mean", "net": "sum", "com": "sum", "eng": "sum"}

    def __init__(
        self,
        *,
        resolution_bounds: tuple[float, float] = (200.0, 2000.0),
        fps_bounds: tuple[float, float] = (1.0, 30.0),
    ) -> None:
        if resolution_bounds[0] >= resolution_bounds[1]:
            raise ValueError(f"bad resolution_bounds {resolution_bounds}")
        if fps_bounds[0] >= fps_bounds[1]:
            raise ValueError(f"bad fps_bounds {fps_bounds}")
        self.resolution_bounds = resolution_bounds
        self.fps_bounds = fps_bounds
        self.models: dict[str, GPRegressor] = {}
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _normalize(self, x: np.ndarray) -> np.ndarray:
        """(r, s) raw -> [0,1]²."""
        x = check_array_2d("x", x, n_cols=2)
        lo = np.array([self.resolution_bounds[0], self.fps_bounds[0]])
        hi = np.array([self.resolution_bounds[1], self.fps_bounds[1]])
        return (x - lo) / (hi - lo)

    @property
    def is_fitted(self) -> bool:
        return len(self.models) == len(OBJECTIVES)

    def fit(
        self,
        x,
        y,
        *,
        optimize: bool = True,
        max_opt_points: int = 200,
        rng: RngLike = 0,
    ) -> "OutcomeSurrogateBank":
        """Fit all five GPs from per-stream profiling data.

        ``x`` is (n, 2) raw (resolution, fps); ``y`` is (n, 5) outcome
        vectors in canonical order.  For training sets larger than
        ``max_opt_points`` the (cubic-cost) hyperparameter optimization
        runs on a random subsample, then the GP conditions on the full
        data with those hyperparameters — the standard large-n shortcut.
        """
        x = check_array_2d("x", x, n_cols=2)
        y = check_array_2d("y", y, n_cols=len(OBJECTIVES))
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows, y has {y.shape[0]}")
        self._x = x
        self._y = y
        xn = self._normalize(x)
        gen = as_generator(rng)
        n = x.shape[0]
        subsample = None
        if optimize and n > max_opt_points:
            subsample = gen.choice(n, size=max_opt_points, replace=False)
        for j, name in enumerate(OBJECTIVES):
            gp = GPRegressor(Matern52Kernel(np.full(2, 0.3)), noise=1e-3)
            if subsample is None:
                gp.fit(xn, y[:, j], optimize=optimize, rng=gen)
            else:
                gp.fit(xn[subsample], y[subsample, j], optimize=True, rng=gen)
                gp.fit(xn, y[:, j], optimize=False)
            self.models[name] = gp
        return self

    def fit_samples(
        self, samples: Sequence[OutcomeSample], **kwargs
    ) -> "OutcomeSurrogateBank":
        """Fit from a list of profiler samples."""
        from repro.outcomes.profiler import samples_to_arrays

        x, y = samples_to_arrays(list(samples))
        return self.fit(x, y, **kwargs)

    def update(self, x_new, y_new, *, fast: bool = True) -> "OutcomeSurrogateBank":
        """Condition on additional observations (no re-optimization).

        Keeps each model's fitted hyperparameters and appends the new
        data.  The fast path (default) extends every GP's Cholesky
        factor incrementally — O(n²m) per model instead of the O(n³)
        from-scratch refit — which is the dominant per-iteration cost
        of the BO loop.  ``fast=False`` refits each model from scratch
        on the concatenated data with the same hyperparameters (the
        reference path the equivalence tests compare against).
        """
        if self._x is None or self._y is None:
            raise RuntimeError("bank is not fitted")
        x_new = check_array_2d("x_new", x_new, n_cols=2)
        y_new = check_array_2d("y_new", y_new, n_cols=len(OBJECTIVES))
        if x_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"x_new has {x_new.shape[0]} rows, y_new has {y_new.shape[0]}"
            )
        self._x = np.vstack([self._x, x_new])
        self._y = np.vstack([self._y, y_new])
        if not self.is_fitted:
            return self.fit(self._x, self._y, optimize=False)
        xn_new = self._normalize(x_new)
        for j, name in enumerate(OBJECTIVES):
            self.models[name].update(xn_new, y_new[:, j], fast=fast)
        return self

    # ------------------------------------------------------------------
    def predict_per_stream(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/variance per objective at raw configs ``x``.

        Returns ``(mean, var)`` of shape (n, 5).
        """
        if not self.is_fitted:
            raise RuntimeError("bank is not fitted")
        xn = self._normalize(x)
        means, vars_ = [], []
        for name in OBJECTIVES:
            m, v = self.models[name].predict(xn)
            means.append(m)
            vars_.append(v)
        return np.stack(means, axis=1), np.stack(vars_, axis=1)

    def sample_per_stream(
        self, x, n_samples: int, *, rng: RngLike = None
    ) -> np.ndarray:
        """Joint posterior samples per objective: shape (n_samples, n, 5).

        Objectives are sampled independently (they are separate GPs);
        within an objective the n configs are jointly sampled, which is
        what the batch acquisition needs.
        """
        if not self.is_fitted:
            raise RuntimeError("bank is not fitted")
        xn = self._normalize(x)
        gen = as_generator(rng)
        out = np.empty((n_samples, xn.shape[0], len(OBJECTIVES)))
        for j, name in enumerate(OBJECTIVES):
            out[:, :, j] = self.models[name].sample_posterior(
                xn, n_samples, rng=gen
            )
        return out

    # ------------------------------------------------------------------
    def aggregate(
        self,
        per_stream: np.ndarray,
        assignment: Sequence[int] | None = None,
        bandwidths_mbps: Sequence[float] | None = None,
        bits_per_frame: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decision-level outcome vector(s) from per-stream values.

        ``per_stream`` is (..., M, 5).  Latency/accuracy average over
        streams, the rest sum (Eq. 2–5).  When ``assignment`` and
        ``bandwidths_mbps`` are given, the analytic per-stream
        transmission latency θ_bit/B_q is added before averaging.
        Returns (..., 5).
        """
        arr = np.asarray(per_stream, dtype=float)
        if arr.shape[-1] != len(OBJECTIVES):
            raise ValueError(f"last axis must be {len(OBJECTIVES)}, got {arr.shape}")
        ltc = arr[..., 0]
        if assignment is not None:
            if bandwidths_mbps is None or bits_per_frame is None:
                raise ValueError(
                    "assignment requires bandwidths_mbps and bits_per_frame"
                )
            bw = np.asarray(bandwidths_mbps, dtype=float)
            bits = np.asarray(bits_per_frame, dtype=float)
            q = np.asarray(assignment)
            tx = np.where(q >= 0, bits / (bw[np.clip(q, 0, None)] * 1e6), 0.0)
            ltc = ltc + tx
        out = np.empty(arr.shape[:-2] + (len(OBJECTIVES),))
        out[..., 0] = ltc.mean(axis=-1)
        out[..., 1] = arr[..., 1].mean(axis=-1)
        out[..., 2] = arr[..., 2].sum(axis=-1)
        out[..., 3] = arr[..., 3].sum(axis=-1)
        out[..., 4] = arr[..., 4].sum(axis=-1)
        return out

    def r2_per_objective(self, x_test, y_test) -> dict[str, float]:
        """R² of each model on held-out data (the Fig. 8 metric)."""
        from repro.outcomes.fitting import r2_score

        y_test = check_array_2d("y_test", y_test, n_cols=len(OBJECTIVES))
        mean, _ = self.predict_per_stream(x_test)
        return {
            name: r2_score(y_test[:, j], mean[:, j])
            for j, name in enumerate(OBJECTIVES)
        }
