"""Closed-form outcome functions (Eq. 2–5) over decision vectors.

The five objectives, in the library-wide canonical order
``[ltc, acc, net, com, eng]``:

* **latency** (s): f_ltc = 1/M Σ (θ_lcom(r_i) + θ_bit(r_i)/B_{q_i})  — Eq. 5
* **accuracy** (mAP): f_acc = 1/M Σ θ_acc(r_i) ε_acc(s_i)            — Eq. 2
* **network** (Mbps): f_net = Σ θ_net(r_i) ε_net(s_i)                — Eq. 3
* **computation** (TFLOP/s): f_com = Σ θ_com(r_i) ε_com(s_i)         — Eq. 3
* **energy** (W): f_eng = Σ (γ θ_bit(r_i) ε_bit(s_i) + θ_eng(r_i) ε_eng(s_i)) — Eq. 4

θ-terms come from the device profile and encoder model; ε-terms are
linear in the sampling rate.  γ = 0.5e-5 J/bit follows the paper
(which takes it from JCAB [34]).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils import check_array_1d, check_positive
from repro.video.encoder import EncoderModel
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE

#: Canonical objective order used across the entire library.
OBJECTIVES = ("ltc", "acc", "net", "com", "eng")

#: Transmission energy per bit (J); γ in Eq. 4, value from the paper.
GAMMA_J_PER_BIT = 0.5e-5


def default_accuracy_fn(
    resolution: np.ndarray, fps: np.ndarray, *, native_fps: float = 30.0
) -> np.ndarray:
    """Analytic mAP surface matching the simulated detector's behaviour.

    Saturating in resolution (small objects appear as width grows) and
    increasing-concave in sampling rate (held detections go stale
    between processed frames):

        acc(r, s) = 0.88 · (1 − e^{−r/620}) · (0.55 + 0.45 · (s/30)^{0.6})

    Calibrated against :func:`repro.outcomes.profiler.profile_grid`
    output so its range reproduces Fig. 2's ~0.2–0.8 mAP span.
    """
    r = np.asarray(resolution, dtype=float)
    s = np.clip(np.asarray(fps, dtype=float), 0.0, native_fps)
    res_term = 1.0 - np.exp(-r / 620.0)
    rate_term = 0.55 + 0.45 * (s / native_fps) ** 0.6
    return 0.88 * res_term * rate_term


class OutcomeFunctions:
    """Evaluate all five outcome functions for a scheduling decision.

    Parameters
    ----------
    profile:
        Device profile supplying θ_lcom, θ_com(=FLOPs), θ_eng.
    encoder:
        Encoder model supplying θ_bit / θ_net.
    accuracy_fn:
        ``f(resolutions, fps) -> mAP array``; default is
        :func:`default_accuracy_fn`.
    gamma:
        Transmission energy per bit (J).
    """

    def __init__(
        self,
        profile: DeviceProfile = JETSON_NX_PROFILE,
        encoder: EncoderModel | None = None,
        *,
        accuracy_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        gamma: float = GAMMA_J_PER_BIT,
    ) -> None:
        self.profile = profile
        self.encoder = encoder or EncoderModel()
        self.accuracy_fn = accuracy_fn or default_accuracy_fn
        self.gamma = check_positive("gamma", gamma, strict=False)

    # -- per-objective -----------------------------------------------------
    def accuracy(self, resolutions, fps) -> float:
        """Eq. 2: mean per-stream mAP."""
        r = check_array_1d("resolutions", resolutions, min_len=1)
        s = check_array_1d("fps", fps, min_len=1)
        return float(np.mean(self.accuracy_fn(r, s)))

    def network_mbps(self, resolutions, fps) -> float:
        """Eq. 3 (network): total uplink bitrate in Mbps."""
        r = check_array_1d("resolutions", resolutions, min_len=1)
        s = check_array_1d("fps", fps, min_len=1)
        bits = np.array(
            [self.encoder.bitrate(ri, si) for ri, si in zip(r, s)]
        )
        return float(np.sum(bits)) / 1e6

    def computation_tflops(self, resolutions, fps) -> float:
        """Eq. 3 (computation): total compute rate in TFLOP/s."""
        r = check_array_1d("resolutions", resolutions, min_len=1)
        s = check_array_1d("fps", fps, min_len=1)
        flops = np.array([self.profile.flops_per_frame(ri) for ri in r])
        return float(np.sum(flops * s))

    def energy_watts(self, resolutions, fps) -> float:
        """Eq. 4: total power = transmission + computation draw."""
        r = check_array_1d("resolutions", resolutions, min_len=1)
        s = check_array_1d("fps", fps, min_len=1)
        tx = np.array(
            [self.gamma * self.encoder.bits_per_frame(ri) * si for ri, si in zip(r, s)]
        )
        comp = np.array(
            [self.profile.energy_per_frame(ri) * si for ri, si in zip(r, s)]
        )
        return float(np.sum(tx + comp))

    def latency(self, resolutions, fps, assignment, bandwidths_mbps) -> float:
        """Eq. 5: mean per-stream e2e latency (compute + transmission)."""
        r = check_array_1d("resolutions", resolutions, min_len=1)
        bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
        if len(assignment) != r.size:
            raise ValueError(
                f"{r.size} streams but {len(assignment)} assignment entries"
            )
        lats = []
        for ri, q in zip(r, assignment):
            if q == -1:
                continue
            if not (0 <= q < bw.size):
                raise ValueError(f"assignment {q} out of range for {bw.size} servers")
            lats.append(
                self.profile.processing_time(ri)
                + self.encoder.bits_per_frame(ri) / (bw[q] * 1e6)
            )
        if not lats:
            raise ValueError("all streams dropped; latency undefined")
        return float(np.mean(lats))

    # -- aggregate ----------------------------------------------------------
    def vector(
        self,
        resolutions,
        fps,
        assignment: Sequence[int],
        bandwidths_mbps,
    ) -> np.ndarray:
        """Outcome vector y = [ltc, acc, net, com, eng] for one decision."""
        return np.array(
            [
                self.latency(resolutions, fps, assignment, bandwidths_mbps),
                self.accuracy(resolutions, fps),
                self.network_mbps(resolutions, fps),
                self.computation_tflops(resolutions, fps),
                self.energy_watts(resolutions, fps),
            ]
        )
