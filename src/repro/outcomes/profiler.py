"""Profiling harness: measure outcome vectors from the real substrate.

This is the "profiling" of Algorithm 2 lines 2–3 and the data source of
Figure 2: run a clip through the simulated detector at a configuration
(r, s), compute *actual* mAP against ground truth, and read latency /
bandwidth / computation / power from the device profile, encoder, and
(optionally) the discrete-event simulator.  Measurement noise arises
naturally from the stochastic detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.detection.detector import DetectorModel, SimulatedDetector
from repro.detection.evaluate import FrameResult, mean_average_precision
from repro.outcomes.functions import GAMMA_J_PER_BIT
from repro.utils import as_generator, check_positive
from repro.utils.rng import RngLike
from repro.video.encoder import EncoderModel
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE
from repro.video.synthetic import SyntheticClip


@dataclass(frozen=True)
class OutcomeSample:
    """One measured (configuration → outcome) record."""

    resolution: float
    fps: float
    latency: float  # s (compute + transmission at the probe bandwidth)
    accuracy: float  # mAP in [0, 1]
    network_mbps: float
    computation_tflops: float
    power_watts: float

    def vector(self) -> np.ndarray:
        """[ltc, acc, net, com, eng] in the canonical order."""
        return np.array(
            [
                self.latency,
                self.accuracy,
                self.network_mbps,
                self.computation_tflops,
                self.power_watts,
            ]
        )


def profile_configuration(
    clip: SyntheticClip,
    resolution: float,
    fps: float,
    *,
    bandwidth_mbps: float = 100.0,
    profile: DeviceProfile = JETSON_NX_PROFILE,
    encoder: EncoderModel | None = None,
    detector_model: DetectorModel | None = None,
    measurement_noise: float = 0.0,
    rng: RngLike = None,
) -> OutcomeSample:
    """Measure the outcome vector of one stream at one configuration.

    Accuracy is genuine: the simulated detector runs sample-and-hold
    over the clip's ground truth and mAP is computed by the evaluation
    pipeline.  The experiment mirrors Fig. 2 (bandwidth fixed at
    100 Mbps by default, as in the paper's profiling experiment).

    ``measurement_noise`` applies relative Gaussian noise to the
    latency/bandwidth/computation/power readings — on a physical
    testbed these come from timers and power meters under thermal and
    contention variation, which is what makes the paper's Fig. 8 R²
    *grow* with training-set size instead of starting at 1.
    """
    check_positive("resolution", resolution)
    check_positive("fps", fps)
    check_positive("bandwidth_mbps", bandwidth_mbps)
    check_positive("measurement_noise", measurement_noise, strict=False)
    enc = encoder or EncoderModel()
    gen = as_generator(rng)
    det = SimulatedDetector(detector_model, rng=gen)

    dets = det.detect_clip(
        clip.frames, resolution, fps, native_fps=clip.config.native_fps
    )
    frames = [
        FrameResult(gt, d.boxes, d.scores) for gt, d in zip(clip.frames, dets)
    ]
    acc = mean_average_precision(frames)

    texture = clip.config.texture
    eff_fps = min(fps, clip.config.native_fps)
    bits = enc.bits_per_frame(resolution, texture=texture)
    latency = profile.processing_time(resolution) + bits / (bandwidth_mbps * 1e6)
    net = enc.bitrate(resolution, eff_fps, texture=texture) / 1e6
    com = profile.flops_per_frame(resolution) * eff_fps
    power = (
        GAMMA_J_PER_BIT * bits * eff_fps
        + profile.energy_per_frame(resolution) * eff_fps
    )
    if measurement_noise > 0:
        factors = gen.normal(1.0, measurement_noise, 4)
        latency *= max(factors[0], 0.05)
        net *= max(factors[1], 0.05)
        com *= max(factors[2], 0.05)
        power *= max(factors[3], 0.05)
    return OutcomeSample(
        resolution=float(resolution),
        fps=float(fps),
        latency=float(latency),
        accuracy=float(acc),
        network_mbps=float(net),
        computation_tflops=float(com),
        power_watts=float(power),
    )


def profile_grid(
    clip: SyntheticClip,
    resolutions: Sequence[float],
    fps_values: Sequence[float],
    *,
    bandwidth_mbps: float = 100.0,
    profile: DeviceProfile = JETSON_NX_PROFILE,
    encoder: EncoderModel | None = None,
    detector_model: DetectorModel | None = None,
    measurement_noise: float = 0.0,
    rng: RngLike = None,
) -> list[OutcomeSample]:
    """Profile the full (resolution × fps) grid — the Fig. 2 experiment.

    Returns samples in row-major order (resolution outer, fps inner).
    """
    gen = as_generator(rng)
    out: list[OutcomeSample] = []
    for r in resolutions:
        for s in fps_values:
            out.append(
                profile_configuration(
                    clip,
                    r,
                    s,
                    bandwidth_mbps=bandwidth_mbps,
                    profile=profile,
                    encoder=encoder,
                    detector_model=detector_model,
                    measurement_noise=measurement_noise,
                    rng=gen,
                )
            )
    return out


def samples_to_arrays(
    samples: Sequence[OutcomeSample],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack samples into (X, Y): X = (n, 2) of (r, s), Y = (n, 5)."""
    x = np.array([[s.resolution, s.fps] for s in samples])
    y = np.array([s.vector() for s in samples])
    return x, y
