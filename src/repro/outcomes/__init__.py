"""Outcome-function substrate: §3's Eq. 2–5 made executable.

* :mod:`repro.outcomes.functions` — closed-form outcome functions over
  decision vectors (the θ(·)·ε(·) forms of the paper);
* :mod:`repro.outcomes.fitting` — polynomial-surface and separable
  θ(r)·ε(s) regression used by the traditional baselines;
* :mod:`repro.outcomes.profiler` — grid profiling of the video/detector
  simulator (the source of Fig. 2's measured surfaces and of training
  data for the models);
* :mod:`repro.outcomes.surrogate` — the GP outcome-model bank f_1..f_5
  used inside PaMO's BO loop.
"""

from repro.outcomes.functions import OutcomeFunctions, default_accuracy_fn, OBJECTIVES
from repro.outcomes.fitting import (
    PolynomialSurface,
    SeparableProduct,
    r2_score,
)
from repro.outcomes.profiler import OutcomeSample, profile_configuration, profile_grid
from repro.outcomes.surrogate import OutcomeSurrogateBank

__all__ = [
    "OutcomeFunctions",
    "default_accuracy_fn",
    "OBJECTIVES",
    "PolynomialSurface",
    "SeparableProduct",
    "r2_score",
    "OutcomeSample",
    "profile_configuration",
    "profile_grid",
    "OutcomeSurrogateBank",
]
