"""Regression models for outcome surfaces.

The paper's §3 models each objective "through either multivariable
linear regression or polynomial regression" as a product θ(r)·ε(s) with
θ linear-or-quadratic and ε linear.  Two fitters are provided:

* :class:`PolynomialSurface` — full tensor-product polynomial basis in
  (r, s) solved by least squares (the general form; contains the
  paper's products as a subspace);
* :class:`SeparableProduct` — the paper's exact θ(r)·ε(s) rank-1 form,
  fitted by alternating least squares.

Both operate on normalized inputs internally so polynomial
conditioning stays sane across the (300..2000) × (1..30) raw ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_array_1d


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R² = 1 − SS_res / SS_tot (§5.3)."""
    y_true = check_array_1d("y_true", y_true, min_len=1)
    y_pred = check_array_1d("y_pred", y_pred, min_len=1)
    if y_true.size != y_pred.size:
        raise ValueError(f"length mismatch: {y_true.size} vs {y_pred.size}")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _poly_basis(t: np.ndarray, degree: int) -> np.ndarray:
    """Vandermonde columns [1, t, t², ...] of shape (n, degree+1)."""
    return np.vander(t, degree + 1, increasing=True)


@dataclass
class _Scaler:
    lo: float
    hi: float

    def __call__(self, t: np.ndarray) -> np.ndarray:
        span = self.hi - self.lo
        return (np.asarray(t, dtype=float) - self.lo) / (span if span > 0 else 1.0)


class PolynomialSurface:
    """Least-squares tensor-product polynomial y ≈ Σ c_ab r^a s^b."""

    def __init__(self, deg_r: int = 2, deg_s: int = 1) -> None:
        if deg_r < 0 or deg_s < 0:
            raise ValueError("degrees must be >= 0")
        self.deg_r = int(deg_r)
        self.deg_s = int(deg_s)
        self.coef_: np.ndarray | None = None
        self._scale_r: _Scaler | None = None
        self._scale_s: _Scaler | None = None

    def _features(self, r: np.ndarray, s: np.ndarray) -> np.ndarray:
        assert self._scale_r is not None and self._scale_s is not None
        br = _poly_basis(self._scale_r(r), self.deg_r)  # (n, dr+1)
        bs = _poly_basis(self._scale_s(s), self.deg_s)  # (n, ds+1)
        # tensor product per row, flattened: (n, (dr+1)(ds+1))
        return (br[:, :, None] * bs[:, None, :]).reshape(r.size, -1)

    def fit(self, r, s, y) -> "PolynomialSurface":
        """Least-squares fit of the tensor-product basis to (r, s) → y."""
        r = check_array_1d("r", r, min_len=1)
        s = check_array_1d("s", s, min_len=1)
        y = check_array_1d("y", y, min_len=1)
        if not (r.size == s.size == y.size):
            raise ValueError("r, s, y must have equal length")
        self._scale_r = _Scaler(float(r.min()), float(r.max()))
        self._scale_s = _Scaler(float(s.min()), float(s.max()))
        feats = self._features(r, s)
        self.coef_, *_ = np.linalg.lstsq(feats, y, rcond=None)
        return self

    def predict(self, r, s) -> np.ndarray:
        """Evaluate the fitted surface at (r, s)."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        r = check_array_1d("r", r, min_len=1)
        s = check_array_1d("s", s, min_len=1)
        if r.size != s.size:
            raise ValueError("r and s must have equal length")
        return self._features(r, s) @ self.coef_

    def score(self, r, s, y) -> float:
        """R² of the fitted surface on (r, s, y)."""
        return r2_score(y, self.predict(r, s))


class SeparableProduct:
    """The paper's θ(r)·ε(s) form, fitted by alternating least squares.

    θ is a polynomial of degree ``deg_r`` (quadratic by default), ε of
    degree ``deg_s`` (linear by default).  The product is bilinear in
    the two coefficient vectors, so ALS converges in a handful of
    sweeps.  The scale ambiguity (θ·c, ε/c) is fixed by normalizing ε's
    leading coefficient norm to 1 after each sweep.
    """

    def __init__(self, deg_r: int = 2, deg_s: int = 1, *, n_sweeps: int = 25) -> None:
        if deg_r < 0 or deg_s < 0:
            raise ValueError("degrees must be >= 0")
        self.deg_r = int(deg_r)
        self.deg_s = int(deg_s)
        self.n_sweeps = int(n_sweeps)
        self.theta_: np.ndarray | None = None
        self.eps_: np.ndarray | None = None
        self._scale_r: _Scaler | None = None
        self._scale_s: _Scaler | None = None

    def fit(self, r, s, y) -> "SeparableProduct":
        """Alternating least squares for the θ(r)·ε(s) product form."""
        r = check_array_1d("r", r, min_len=1)
        s = check_array_1d("s", s, min_len=1)
        y = check_array_1d("y", y, min_len=1)
        if not (r.size == s.size == y.size):
            raise ValueError("r, s, y must have equal length")
        self._scale_r = _Scaler(float(r.min()), float(r.max()))
        self._scale_s = _Scaler(float(s.min()), float(s.max()))
        br = _poly_basis(self._scale_r(r), self.deg_r)
        bs = _poly_basis(self._scale_s(s), self.deg_s)
        theta = np.ones(self.deg_r + 1)
        eps = np.ones(self.deg_s + 1)
        for _ in range(self.n_sweeps):
            # Fix ε, solve for θ:  y ≈ diag(bs @ eps) (br @ theta)
            w = bs @ eps
            theta, *_ = np.linalg.lstsq(br * w[:, None], y, rcond=None)
            # Fix θ, solve for ε.
            v = br @ theta
            eps, *_ = np.linalg.lstsq(bs * v[:, None], y, rcond=None)
            norm = np.linalg.norm(eps)
            if norm > 0:
                eps = eps / norm
                theta = theta * norm
        self.theta_ = theta
        self.eps_ = eps
        return self

    def theta(self, r) -> np.ndarray:
        """θ(r) component (scaled-input polynomial)."""
        if self.theta_ is None or self._scale_r is None:
            raise RuntimeError("model is not fitted")
        r = check_array_1d("r", r, min_len=1)
        return _poly_basis(self._scale_r(r), self.deg_r) @ self.theta_

    def epsilon(self, s) -> np.ndarray:
        """ε(s) component (scaled-input polynomial)."""
        if self.eps_ is None or self._scale_s is None:
            raise RuntimeError("model is not fitted")
        s = check_array_1d("s", s, min_len=1)
        return _poly_basis(self._scale_s(s), self.deg_s) @ self.eps_

    def predict(self, r, s) -> np.ndarray:
        """Evaluate θ(r)·ε(s) at the given points."""
        return self.theta(r) * self.epsilon(s)

    def score(self, r, s, y) -> float:
        """R² of the fitted product on (r, s, y)."""
        return r2_score(y, self.predict(r, s))
