"""Realistic pricing-rule preferences (§1's motivating examples).

The paper motivates preference learning with "intricate pricing rules
... such as tiered electricity or network traffic prices across
different areas or network operators [29], differentiated rental prices
for heterogeneous servers [2], and dynamic pricing based on the quality
of service (QoS) metrics [30]".  The §5 evaluation collapses all of
this into the weighted-L1 benefit; this module implements the actual
rule families, so experiments can test PaMO against *non-linear,
non-separable* true preferences where fixed weights fail hardest:

* :class:`TieredTariff` — piecewise-linear unit price with consumption
  tiers (electricity / traffic billing);
* :class:`QoSRevenue` — revenue per stream that pays full price only
  while latency ≤ SLO and accuracy ≥ floor, with graceful degradation;
* :class:`PricingPreference` — benefit = revenue − energy cost −
  network cost, a drop-in :class:`TruePreference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pref.decision_maker import TruePreference
from repro.utils import check_positive


@dataclass(frozen=True)
class TieredTariff:
    """Piecewise-linear tariff: unit price rises with consumption.

    ``thresholds`` are tier upper bounds (ascending, in consumption
    units); ``rates[i]`` applies between ``thresholds[i-1]`` and
    ``thresholds[i]``; the final rate applies beyond the last threshold,
    so ``len(rates) == len(thresholds) + 1``.

    >>> t = TieredTariff(thresholds=(100.0,), rates=(1.0, 2.0))
    >>> t.cost(150.0)   # 100 @ 1.0 + 50 @ 2.0
    200.0
    """

    thresholds: tuple[float, ...]
    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.thresholds) + 1:
            raise ValueError(
                f"need len(rates) == len(thresholds)+1, got "
                f"{len(self.rates)} rates / {len(self.thresholds)} thresholds"
            )
        if any(r < 0 for r in self.rates):
            raise ValueError("rates must be non-negative")
        if list(self.thresholds) != sorted(self.thresholds) or any(
            t <= 0 for t in self.thresholds
        ):
            raise ValueError("thresholds must be positive ascending")

    def cost(self, consumption) -> np.ndarray:
        """Total cost of ``consumption`` units (broadcasts)."""
        x = np.asarray(consumption, dtype=float)
        if np.any(x < 0):
            raise ValueError("consumption must be non-negative")
        total = np.zeros_like(x)
        prev = 0.0
        for t, r in zip(self.thresholds, self.rates):
            total = total + r * np.clip(x - prev, 0.0, t - prev)
            prev = t
        total = total + self.rates[-1] * np.clip(x - prev, 0.0, None)
        return total

    def marginal_rate(self, consumption: float) -> float:
        """Unit price at the current consumption level."""
        for t, r in zip(self.thresholds, self.rates):
            if consumption < t:
                return r
        return self.rates[-1]


@dataclass(frozen=True)
class QoSRevenue:
    """Per-deployment revenue under an SLO with graceful degradation.

    Revenue = ``base_revenue`` · accuracy-quality · latency-quality,
    where accuracy-quality ramps linearly from 0 at ``acc_floor`` to 1
    at ``acc_target``, and latency-quality is 1 within the SLO and
    decays exponentially beyond it (half-life = ``slo_seconds``).
    """

    base_revenue: float = 100.0
    slo_seconds: float = 0.2
    acc_floor: float = 0.3
    acc_target: float = 0.8

    def __post_init__(self) -> None:
        check_positive("base_revenue", self.base_revenue)
        check_positive("slo_seconds", self.slo_seconds)
        if not (0 <= self.acc_floor < self.acc_target <= 1):
            raise ValueError(
                f"need 0 <= acc_floor < acc_target <= 1, got "
                f"{self.acc_floor}, {self.acc_target}"
            )

    def revenue(self, latency, accuracy) -> np.ndarray:
        """Revenue earned at the given latency/accuracy (broadcasts)."""
        lat = np.asarray(latency, dtype=float)
        acc = np.asarray(accuracy, dtype=float)
        acc_q = np.clip(
            (acc - self.acc_floor) / (self.acc_target - self.acc_floor), 0.0, 1.0
        )
        over = np.clip(lat - self.slo_seconds, 0.0, None)
        lat_q = np.exp2(-over / self.slo_seconds)
        return self.base_revenue * acc_q * lat_q


@dataclass(frozen=True)
class PricingPreference(TruePreference):
    """System benefit in currency: QoS revenue minus metered costs.

    benefit(y) = revenue(ltc, acc) − energy_tariff(eng) −
    traffic_tariff(net) − compute_rent · com, over the canonical
    outcome vector [ltc, acc, net, com, eng].  Non-linear and
    non-separable in the objectives — the kind of rule the paper says
    defeats hand-tuned linear weights.
    """

    revenue: QoSRevenue = field(default_factory=QoSRevenue)
    energy_tariff: TieredTariff = field(
        default_factory=lambda: TieredTariff(thresholds=(50.0,), rates=(0.2, 0.6))
    )
    traffic_tariff: TieredTariff = field(
        default_factory=lambda: TieredTariff(thresholds=(20.0,), rates=(0.5, 1.5))
    )
    compute_rent: float = 0.1

    def __post_init__(self) -> None:
        check_positive("compute_rent", self.compute_rent, strict=False)

    def value(self, y) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        ltc = y[..., 0]
        acc = y[..., 1]
        net = np.clip(y[..., 2], 0.0, None)
        com = np.clip(y[..., 3], 0.0, None)
        eng = np.clip(y[..., 4], 0.0, None)
        rev = self.revenue.revenue(ltc, acc)
        cost = (
            self.energy_tariff.cost(eng)
            + self.traffic_tariff.cost(net)
            + self.compute_rent * com
        )
        return rev - cost
