"""Preference-learning layer (§4.2 of the paper).

The system's pricing preference g is unknown; PaMO learns it from
pairwise comparisons answered by a decision maker.  This package
provides the simulated decision maker (the true preference, Eq. 13 in
the paper's own evaluation), the active-learning loop that selects
informative comparison pairs with EUBO, and the pairwise accuracy
metric of Fig. 9.
"""

from repro.pref.decision_maker import (
    LinearL1Preference,
    DecisionMaker,
    TruePreference,
)
from repro.pref.learner import PreferenceLearner
from repro.pref.metrics import pairwise_accuracy
from repro.pref.pricing import TieredTariff, QoSRevenue, PricingPreference

__all__ = [
    "LinearL1Preference",
    "DecisionMaker",
    "TruePreference",
    "PreferenceLearner",
    "pairwise_accuracy",
    "TieredTariff",
    "QoSRevenue",
    "PricingPreference",
]
