"""Preference-model quality metrics (§5.3, Fig. 9)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils import as_generator
from repro.utils.rng import RngLike


def pairwise_accuracy(
    predict_utility: Callable[[np.ndarray], np.ndarray],
    true_utility: Callable[[np.ndarray], np.ndarray],
    test_pairs: Sequence[tuple[np.ndarray, np.ndarray]],
) -> float:
    """Fraction of test pairs ordered consistently with the truth.

    The paper's §5.3 metric: for each pair, compare the sign of
    (ẑ₁ − ẑ₂) with (z₁ − z₂); ties count as half (they are ambiguous
    under the 'strictly consistent' definition).
    """
    if not test_pairs:
        raise ValueError("test_pairs must be non-empty")
    y1 = np.stack([p[0] for p in test_pairs])
    y2 = np.stack([p[1] for p in test_pairs])
    dz_hat = np.asarray(predict_utility(y1)) - np.asarray(predict_utility(y2))
    dz = np.asarray(true_utility(y1)) - np.asarray(true_utility(y2))
    consistent = np.sign(dz_hat) == np.sign(dz)
    ties = (np.sign(dz_hat) == 0) | (np.sign(dz) == 0)
    return float(np.mean(np.where(ties, 0.5, consistent.astype(float))))


def sample_test_pairs(
    outcome_space: np.ndarray,
    n_pairs: int,
    *,
    rng: RngLike = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random distinct-item test pairs from an outcome space (n, k)."""
    outcome_space = np.asarray(outcome_space, dtype=float)
    if outcome_space.ndim != 2 or outcome_space.shape[0] < 2:
        raise ValueError("outcome_space must be (n>=2, k)")
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    gen = as_generator(rng)
    n = outcome_space.shape[0]
    pairs = []
    for _ in range(n_pairs):
        i, j = gen.choice(n, 2, replace=False)
        pairs.append((outcome_space[i], outcome_space[j]))
    return pairs
