"""True preference functions and the simulated decision maker.

The paper evaluates against the ground-truth system benefit of Eq. 13:

    U(y) = −‖ŷ − ŷ*‖₁ = −Σ_i w_i |ŷ_i − ŷ*_i|

over *normalized* outcome vectors ŷ, with ŷ* the (unattainable) utopia
vector of per-objective single-optimization bests.  Varying the weight
vector w constructs the different "system pricing preferences" of
Fig. 6.  The decision maker answers pairwise comparisons according to
this function, optionally with probit response noise — exactly the
oracle PaMO is allowed to query.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.outcomes.functions import OBJECTIVES
from repro.utils import as_generator, check_array_1d, check_positive, normalize_minmax
from repro.utils.rng import RngLike


class TruePreference(abc.ABC):
    """A ground-truth benefit function over raw outcome vectors."""

    @abc.abstractmethod
    def value(self, y: np.ndarray) -> np.ndarray:
        """Benefit of outcome vectors ``y`` (..., 5); higher is better."""

    def __call__(self, y: np.ndarray) -> np.ndarray:
        return self.value(y)


@dataclass(frozen=True)
class LinearL1Preference(TruePreference):
    """Eq. 13: negative weighted L1 distance to the utopia point.

    Parameters
    ----------
    weights:
        w_i per objective, canonical order [ltc, acc, net, com, eng].
    utopia:
        Raw-scale utopia outcome vector y* (per-objective bests).
    lo, hi:
        Raw-scale normalization bounds per objective (the observed
        outcome ranges); y and y* are min-max normalized with them.
    """

    weights: np.ndarray
    utopia: np.ndarray
    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        k = len(OBJECTIVES)
        object.__setattr__(self, "weights", check_array_1d("weights", self.weights, min_len=k))
        object.__setattr__(self, "utopia", check_array_1d("utopia", self.utopia, min_len=k))
        object.__setattr__(self, "lo", check_array_1d("lo", self.lo, min_len=k))
        object.__setattr__(self, "hi", check_array_1d("hi", self.hi, min_len=k))
        for name, arr in (("weights", self.weights), ("utopia", self.utopia)):
            if arr.size != k:
                raise ValueError(f"{name} must have {k} entries, got {arr.size}")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")

    def normalize(self, y: np.ndarray) -> np.ndarray:
        """Min-max normalize raw outcomes to [0, 1] per objective."""
        return normalize_minmax(np.asarray(y, dtype=float), self.lo, self.hi)

    def value(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        yn = self.normalize(y)
        un = self.normalize(self.utopia)
        dist = np.abs(yn - un) * self.weights
        return -dist.sum(axis=-1)

    @property
    def worst_value(self) -> float:
        """min(U) = −½ Σ w_i, the paper's footnote-2 normalization floor.

        (The footnote's min corresponds to an expected L1 distance of ½
        per objective under the normalized range.)
        """
        return -0.5 * float(np.sum(self.weights))

    def with_weights(self, weights) -> "LinearL1Preference":
        """Copy with a different weight vector (same utopia/bounds)."""
        return LinearL1Preference(
            weights=np.asarray(weights, dtype=float),
            utopia=self.utopia,
            lo=self.lo,
            hi=self.hi,
        )


class DecisionMaker:
    """Answers pairwise comparisons according to a true preference.

    Parameters
    ----------
    preference:
        Ground-truth benefit function.
    noise_scale:
        λ of a probit response model: P(y1 reported ≻ y2) =
        Φ((U(y1) − U(y2)) / (√2 λ)).  ``0`` means perfectly reliable
        answers.
    """

    def __init__(
        self,
        preference: TruePreference,
        *,
        noise_scale: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        self.preference = preference
        self.noise_scale = check_positive("noise_scale", noise_scale, strict=False)
        self._rng = as_generator(rng)
        self.n_queries = 0

    def compare(self, y1: np.ndarray, y2: np.ndarray) -> bool:
        """True iff the decision maker reports y1 ≻ y2."""
        u1 = float(self.preference.value(np.asarray(y1)))
        u2 = float(self.preference.value(np.asarray(y2)))
        self.n_queries += 1
        if self.noise_scale == 0.0:
            return u1 >= u2
        p = norm.cdf((u1 - u2) / (np.sqrt(2.0) * self.noise_scale))
        return bool(self._rng.random() < p)

    def rank_pair(self, y1, y2) -> tuple[np.ndarray, np.ndarray]:
        """Return (winner, loser) arrays."""
        if self.compare(y1, y2):
            return np.asarray(y1), np.asarray(y2)
        return np.asarray(y2), np.asarray(y1)
