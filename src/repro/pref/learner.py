"""Active preference learning: the loop of Algorithm 2 lines 5–11.

``PreferenceLearner`` owns an outcome space Y (the candidate outcome
vectors the decision maker can be asked about), a
:class:`~repro.gp.preference.PreferenceGP`, and a decision maker.  Each
query selects the comparison pair maximizing the closed-form EUBO
criterion, asks the decision maker, appends the answer to the
preference set 𝒫, and refits the Laplace posterior.

Items are min-max normalized over the outcome space before entering
the GP so the kernel sees a unit cube regardless of raw outcome units.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.bo.eubo import select_eubo_pair
from repro.gp.kernels import RBFKernel
from repro.gp.preference import ComparisonData, PreferenceGP
from repro.obs import telemetry
from repro.pref.decision_maker import DecisionMaker
from repro.utils import as_generator, check_array_2d, normalize_minmax
from repro.utils.compat import absorb_positional
from repro.utils.rng import RngLike


class PreferenceLearner:
    """EUBO-driven comparison collection + preference-GP fitting.

    Parameters
    ----------
    outcome_space:
        (n, k) candidate outcome vectors Y (raw scale).
    decision_maker:
        Oracle answering comparisons.
    noise_scale:
        λ of the preference GP's probit likelihood.
    lengthscale:
        RBF lengthscale over the normalized (unit-cube) outcome space.
    n_eubo_candidates:
        Random candidate pairs scored per EUBO selection.
    """

    def __init__(
        self,
        outcome_space,
        *args,
        decision_maker: DecisionMaker | None = None,
        noise_scale: float = 0.05,
        lengthscale: float = 1.5,
        n_eubo_candidates: int = 150,
        rng: RngLike = None,
    ) -> None:
        shim = absorb_positional(
            "PreferenceLearner", args, ("decision_maker",),
            {"decision_maker": decision_maker},
        )
        decision_maker = shim["decision_maker"]
        if decision_maker is None:
            raise TypeError(
                "PreferenceLearner() missing required keyword argument "
                "'decision_maker'"
            )
        self.outcome_space = check_array_2d("outcome_space", outcome_space)
        if self.outcome_space.shape[0] < 2:
            raise ValueError("outcome space needs at least two vectors")
        self.decision_maker = decision_maker
        self.n_eubo_candidates = int(n_eubo_candidates)
        self._rng = as_generator(rng)
        self._lo = self.outcome_space.min(axis=0)
        self._hi = self.outcome_space.max(axis=0)
        self._data = ComparisonData(items=self._normalize(self.outcome_space))
        # Benefit functions over normalized outcomes are smooth and
        # near-monotone per objective; a long fixed lengthscale on the
        # unit cube beats the median heuristic by a wide margin here.
        kernel = RBFKernel(
            np.full(self.outcome_space.shape[1], float(lengthscale)), outputscale=1.0
        )
        self.model = PreferenceGP(kernel=kernel, noise_scale=noise_scale)
        self._asked: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def _normalize(self, y) -> np.ndarray:
        # No clipping: outcomes observed later in the optimization loop
        # may fall outside the initial space's envelope, and clipping
        # them would alias distinct outcomes onto the cube boundary.
        return normalize_minmax(
            np.asarray(y, dtype=float), self._lo, self._hi, clip=False
        )

    @property
    def n_comparisons(self) -> int:
        return self._data.n_pairs

    @property
    def n_items(self) -> int:
        """Items in the comparison set (outcome space + BO-observed)."""
        return self._data.n_items

    @property
    def is_fitted(self) -> bool:
        return self.model.is_fitted

    # ------------------------------------------------------------------
    def _ask(self, i: int, j: int) -> None:
        y1 = self.outcome_space[i]
        y2 = self.outcome_space[j]
        telemetry.counter("pref.dm_queries")
        if self.decision_maker.compare(y1, y2):
            self._data.add_comparison(i, j)
        else:
            self._data.add_comparison(j, i)
        self._asked.add((min(i, j), max(i, j)))

    def _fit(self) -> None:
        """Refit the Laplace posterior, keeping the old one on failure.

        The MAP search can fail to converge (or the kernel matrix can
        lose positive-definiteness) once the comparison set grows
        adversarial; a stale-but-sane posterior beats a broken one, so
        the refit happens in a *candidate* model that only replaces
        ``self.model`` on a clean, converged fit.  Kept-previous refits
        are counted as ``pref.laplace_nonconverged``.  The very first
        fit has no previous posterior to keep and is accepted (or
        raised) as-is.
        """
        candidate = PreferenceGP(
            kernel=self.model.kernel,
            noise_scale=self.model.noise_scale,
            max_newton_iter=self.model.max_newton_iter,
            tol=self.model.tol,
        )
        had_previous = self.model.is_fitted
        with telemetry.span("pref.gp_fit"):
            try:
                candidate.fit(self._data)
            except np.linalg.LinAlgError as exc:
                if not had_previous:
                    raise
                telemetry.counter("pref.laplace_nonconverged")
                telemetry.event(
                    "pref.laplace_nonconverged",
                    n_comparisons=self._data.n_pairs,
                    error=f"{type(exc).__name__}: {exc}",
                )
                warnings.warn(
                    f"preference-GP refit failed ({exc}); keeping the "
                    f"previous posterior ({self.model._data.n_pairs} "
                    "comparisons)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return
        if had_previous and not candidate.converged:
            telemetry.counter("pref.laplace_nonconverged")
            telemetry.event(
                "pref.laplace_nonconverged",
                n_comparisons=self._data.n_pairs,
                error="newton_iteration_cap",
            )
            warnings.warn(
                "preference-GP Laplace MAP hit its Newton iteration cap "
                f"({candidate.max_newton_iter}); keeping the previous "
                "posterior",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        self.model = candidate
        telemetry.counter("pref.gp_refits")

    def initialize(self, n_pairs: int = 3) -> "PreferenceLearner":
        """Seed the preference set with random comparisons and fit."""
        if n_pairs < 1:
            raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
        n = self.outcome_space.shape[0]
        with telemetry.span("pref.initialize"):
            for _ in range(n_pairs):
                i, j = self._rng.choice(n, 2, replace=False)
                self._ask(int(i), int(j))
            self._fit()
        return self

    def query_step(self) -> tuple[int, int]:
        """One EUBO-selected query; returns the asked (i, j) indices."""
        if not self.model.is_fitted:
            raise RuntimeError("call initialize() before query_step()")
        with telemetry.span("pref.query_step"):
            i, j, eubo = select_eubo_pair(
                self.model,
                self._data.items,
                n_candidates=self.n_eubo_candidates,
                rng=self._rng,
                exclude=self._asked,
                return_value=True,
            )
            telemetry.counter("pref.eubo_queries")
            telemetry.event(
                "pref.query",
                i=int(i),
                j=int(j),
                eubo=eubo,
                n_comparisons=self.n_comparisons,
            )
            telemetry.gauge("pref.last_eubo", eubo)
            self._ask(i, j)
            self._fit()
        return i, j

    def run(self, n_queries: int) -> "PreferenceLearner":
        """Run ``n_queries`` EUBO query steps (after initialization)."""
        for _ in range(int(n_queries)):
            self.query_step()
        return self

    def compare_against(self, y_new, y_ref) -> "PreferenceLearner":
        """Fold new outcome vectors into the preference set (Alg. 2 l.19).

        Each row of ``y_new`` is added to the comparison item set and
        compared against ``y_ref`` by the decision maker; the model is
        refit once at the end.  This is how the BO loop keeps refining
        ĝ in the region the search actually visits.
        """
        if not self.model.is_fitted:
            raise RuntimeError("call initialize() before compare_against()")
        y_new = np.atleast_2d(np.asarray(y_new, dtype=float))
        y_ref = np.asarray(y_ref, dtype=float).reshape(-1)
        ref_idx = int(self._data.add_items(self._normalize(y_ref)[None, :])[0])
        new_idx = self._data.add_items(self._normalize(y_new))
        for i, y in zip(new_idx, y_new):
            telemetry.counter("pref.dm_queries")
            if self.decision_maker.compare(y, y_ref):
                self._data.add_comparison(int(i), ref_idx)
            else:
                self._data.add_comparison(ref_idx, int(i))
        self._fit()
        return self

    # ------------------------------------------------------------------
    def utility(self, y) -> np.ndarray:
        """Posterior-mean utility ĝ(y) at raw outcome vectors ``y``."""
        if not self.model.is_fitted:
            raise RuntimeError("learner is not fitted")
        mean, _ = self.model.predict(self._normalize(np.atleast_2d(y)))
        return mean

    def utility_with_uncertainty(self, y) -> tuple[np.ndarray, np.ndarray]:
        """(mean, variance) of ĝ at raw outcome vectors."""
        if not self.model.is_fitted:
            raise RuntimeError("learner is not fitted")
        return self.model.predict(self._normalize(np.atleast_2d(y)))

    def sample_utility(self, y, n_samples: int, *, rng: RngLike = None) -> np.ndarray:
        """Joint posterior samples of ĝ at raw outcome vectors."""
        if not self.model.is_fitted:
            raise RuntimeError("learner is not fitted")
        return self.model.sample_posterior(
            self._normalize(np.atleast_2d(y)), n_samples, rng=rng
        )
