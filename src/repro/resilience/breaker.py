"""Circuit breaker for the planner's expensive full-solve path.

A full solve that starts missing its deadline (or raising) under
overload does not fail in isolation: every blown solve stalls the
epoch loop, which deepens the backlog, which makes the next solve
bigger and slower — the classic retry death spiral.
:class:`CircuitBreaker` is the standard cure, adapted to the serve
loop's *epoch clock* instead of wall time so that a replayed run
transitions at the same epochs as the original:

* **closed** — full solves run normally; ``failure_threshold``
  consecutive failures (an exception, or a solve slower than
  ``deadline_s``) trip the breaker;
* **open** — full solves are short-circuited (the service falls back
  to incremental-only *brownout* operation) for ``cooldown_epochs``;
* **half_open** — after the cooldown, the next wanted full solve runs
  as a probe: ``probe_successes`` consecutive good solves re-close the
  breaker, one bad probe re-opens it and restarts the cooldown.

The breaker is pure picklable state (ints and strings); it emits
``breaker.open`` / ``breaker.half_open`` / ``breaker.close`` telemetry
events and matching ``breaker.opens``/``breaker.half_opens``/
``breaker.closes`` counters on each transition.
"""

from __future__ import annotations

from typing import Any

from repro.obs import telemetry

__all__ = ["BREAKER_STATES", "CircuitBreaker"]

#: Breaker states, healthiest first.  Index = numeric rank (the
#: ``repro_serve_breaker_state`` gauge value).
BREAKER_STATES = ("closed", "half_open", "open")


class CircuitBreaker:
    """Closed/open/half-open guard around a deadline-bound operation.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that open the breaker.
    cooldown_epochs:
        Epochs the breaker stays open before allowing a half-open probe.
    probe_successes:
        Consecutive successful half-open probes required to re-close.
    deadline_s:
        Duration budget for one protected call; a slower call counts
        as a failure even if it returned.  ``None`` disables the
        deadline (only exceptions count) — the deterministic mode the
        recovery tests use.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_epochs: int = 8,
        probe_successes: int = 1,
        deadline_s: float | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_epochs < 1:
            raise ValueError(
                f"cooldown_epochs must be >= 1, got {cooldown_epochs}"
            )
        if probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {probe_successes}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_epochs = int(cooldown_epochs)
        self.probe_successes = int(probe_successes)
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.state = "closed"
        self.failures = 0  # consecutive failures while closed
        self.successes = 0  # consecutive probe successes while half-open
        self.opened_epoch: int | None = None
        self.opens = 0  # lifetime transition counts (for summaries)
        self.closes = 0

    @property
    def rank(self) -> int:
        """Numeric state rank (``closed``=0, ``half_open``=1, ``open``=2)."""
        return BREAKER_STATES.index(self.state)

    def _transition(self, state: str, *, epoch: int, reason: str) -> str:
        self.state = state
        label = {"closed": "close", "half_open": "half_open", "open": "open"}[
            state
        ]
        telemetry.counter(f"breaker.{label}s")
        telemetry.event(
            f"breaker.{label}", epoch=int(epoch), reason=reason
        )
        return label

    def allow(self, epoch: int) -> bool:
        """May a protected call run at this epoch?

        While open, returns ``False`` until ``cooldown_epochs`` epochs
        have passed since the trip, then flips to half-open and lets
        one probe through.  Closed and half-open always allow.
        """
        if self.state == "open":
            opened = self.opened_epoch if self.opened_epoch is not None else epoch
            if epoch - opened < self.cooldown_epochs:
                return False
            self.successes = 0
            self._transition("half_open", epoch=epoch, reason="cooldown_over")
        return True

    def record(
        self,
        *,
        epoch: int,
        duration_s: float = 0.0,
        failed: bool = False,
    ) -> str | None:
        """Record one protected call's outcome; returns a transition label.

        ``failed`` marks an exception; a ``duration_s`` over
        ``deadline_s`` is also a failure.  Returns ``"open"``,
        ``"half_open"``, ``"close"``, or ``None`` when no state change
        occurred.
        """
        if not failed and self.deadline_s is not None:
            failed = duration_s > self.deadline_s
        if self.state == "half_open":
            if failed:
                self.opened_epoch = int(epoch)
                self.opens += 1
                self.failures = 0
                return self._transition("open", epoch=epoch, reason="probe_failed")
            self.successes += 1
            if self.successes >= self.probe_successes:
                self.failures = 0
                self.closes += 1
                return self._transition("closed", epoch=epoch, reason="probes_passed")
            return None
        # closed (an open breaker never reaches record(): allow() said no)
        if failed:
            self.failures += 1
            if self.failures >= self.failure_threshold:
                self.opened_epoch = int(epoch)
                self.opens += 1
                self.failures = 0
                return self._transition(
                    "open", epoch=epoch, reason="failure_threshold"
                )
            return None
        if self.failures:
            self.failures = 0
        return None

    def force_state(self, state: str, *, epoch: int = 0) -> None:
        """Set the state directly (crash recovery reconstructing a run)."""
        if state not in BREAKER_STATES:
            raise ValueError(
                f"unknown breaker state {state!r}; choose from {BREAKER_STATES}"
            )
        self.state = state
        self.failures = 0
        self.successes = 0
        self.opened_epoch = int(epoch) if state == "open" else None

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state dump (``/varz``, summaries, WAL meta)."""
        return {
            "state": self.state,
            "rank": self.rank,
            "failures": self.failures,
            "successes": self.successes,
            "opened_epoch": self.opened_epoch,
            "opens": self.opens,
            "closes": self.closes,
            "failure_threshold": self.failure_threshold,
            "cooldown_epochs": self.cooldown_epochs,
            "probe_successes": self.probe_successes,
            "deadline_s": self.deadline_s,
        }
