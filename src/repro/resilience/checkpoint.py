"""Checkpoint/resume for optimization runs.

A checkpoint is a pickle of the *whole scheduler object* plus the
in-flight :class:`~repro.bo.loop.BOLoopState`.  Pickling the scheduler
captures everything the continuation needs bit-identically: the
problem instance, the fitted outcome-GP bank and preference learner,
the incumbent, and — crucially — the exact state of the shared
``numpy`` RNG, so a resumed run draws the same candidate pools,
acquisition samples, and profiling noise an uninterrupted run would
have drawn.

Writes are atomic and durable (temp file + fsync + ``os.replace`` +
directory fsync), so a run killed mid-checkpoint leaves the previous
checkpoint intact and a completed save survives power loss — which is
the whole point of checkpointing a crashy run.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import telemetry

#: Bump when the checkpoint payload layout changes.
CHECKPOINT_VERSION = 1


@dataclass
class CheckpointData:
    """One loaded checkpoint: the scheduler plus its BO-loop state."""

    scheduler: Any
    bo_state: Any
    meta: dict = field(default_factory=dict)

    @property
    def iteration(self) -> int:
        """Last completed BO iteration at checkpoint time."""
        return int(self.meta.get("iteration", 0))


def save_checkpoint(path, *, scheduler, bo_state, **meta) -> Path:
    """Atomically write a checkpoint pickle to ``path``.

    ``meta`` keys (method name, iteration, …) are stored alongside the
    payload and come back on :func:`load_checkpoint`.  Emits a
    ``ckpt.save`` telemetry event and bumps ``ckpt.saves``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "scheduler": scheduler,
        "bo_state": bo_state,
        "meta": dict(meta),
    }
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            # fsync *before* the rename: os.replace is atomic for the
            # name, but without this a crash after the rename could
            # still expose a truncated pickle under the final name.
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        try:
            dir_fd = os.open(str(path.parent), os.O_RDONLY)
        except OSError:
            pass  # platform without directory fds; rename is still atomic
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    telemetry.counter("ckpt.saves")
    telemetry.event("ckpt.save", path=str(path), **{
        k: v for k, v in meta.items() if isinstance(v, (int, float, str, bool))
    })
    return path


def load_checkpoint(path) -> CheckpointData:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    with path.open("rb") as fh:
        payload = pickle.load(fh)
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path} has version {version}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    telemetry.counter("ckpt.loads")
    return CheckpointData(
        scheduler=payload["scheduler"],
        bo_state=payload["bo_state"],
        meta=dict(payload.get("meta", {})),
    )


def resume_run(path):
    """Load ``path`` and continue the optimization to completion.

    Returns the scheduler's :class:`~repro.core.result.
    OptimizationOutcome` — identical to what the uninterrupted run
    with the same seed would have produced.
    """
    ckpt = load_checkpoint(path)
    telemetry.event(
        "ckpt.resume", path=str(path), iteration=ckpt.iteration
    )
    return ckpt.scheduler.optimize(resume=ckpt.bo_state)
