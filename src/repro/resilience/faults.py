"""Deterministic fault plans.

A :class:`FaultPlan` is an ordered, immutable list of
:class:`FaultEvent` records.  The same plan can be replayed at two
levels:

* **simulator level** — :meth:`repro.sim.cluster.EdgeCluster.run`
  accepts ``fault_plan=...`` and schedules the events into its
  :class:`~repro.sim.events.EventQueue`, so crashes drop in-flight
  frames and bandwidth collapses stretch uplink serialization;
* **topology level** — :class:`repro.resilience.chaos.ChaosRunner`
  folds each event into a :class:`TopologyState` and asks the
  scheduler to replan on the surviving cluster.

Plans are plain data: JSON round-trip via :meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`, a compact CLI spec syntax via
:func:`parse_fault_spec` (``crash:1@0.5``, ``bw:0@2.0x0.25``, …), and
seeded random generation via :meth:`FaultPlan.random` — the same seed
always yields the same plan, which the determinism tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.utils import as_generator
from repro.utils.rng import RngLike

#: Recognized fault kinds.
FAULT_KINDS = (
    "server_crash",
    "server_recover",
    "bandwidth_drop",
    "bandwidth_restore",
    "stream_leave",
    "stream_join",
)

#: Compact spec aliases (``parse_fault_spec``).
_SPEC_ALIASES = {
    "crash": "server_crash",
    "recover": "server_recover",
    "bw": "bandwidth_drop",
    "bw_drop": "bandwidth_drop",
    "restore": "bandwidth_restore",
    "bw_restore": "bandwidth_restore",
    "leave": "stream_leave",
    "join": "stream_join",
}

#: Default bandwidth multiplier when a drop spec omits the factor.
_DEFAULT_BW_FACTOR = 0.1


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One fault occurrence.

    Parameters
    ----------
    time:
        Seconds (simulation level) or fractional run progress in [0, 1]
        (topology level — the chaos runner scales it onto epochs).
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        Server index (server/bandwidth kinds) or stream id (stream
        kinds).
    value:
        Kind-specific parameter — the bandwidth multiplier for
        ``bandwidth_drop`` (ignored elsewhere).
    """

    time: float
    kind: str
    target: int
    value: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.target < 0:
            raise ValueError(f"fault target must be >= 0, got {self.target}")
        if self.kind == "bandwidth_drop":
            v = _DEFAULT_BW_FACTOR if self.value is None else float(self.value)
            if not (0 < v <= 1):
                raise ValueError(f"bandwidth factor must be in (0, 1], got {v}")
            object.__setattr__(self, "value", v)

    def to_dict(self) -> dict:
        out = {"time": float(self.time), "kind": self.kind, "target": int(self.target)}
        if self.value is not None:
            out["value"] = float(self.value)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "FaultEvent":
        return cls(
            time=float(d["time"]),
            kind=str(d["kind"]),
            target=int(d["target"]),
            value=d.get("value"),
        )


def parse_fault_spec(spec: str) -> FaultEvent:
    """Parse one compact CLI fault spec.

    Syntax: ``<kind>:<target>@<time>[x<value>]`` where ``kind`` is a
    full kind name or an alias (``crash``, ``recover``, ``bw``,
    ``restore``, ``leave``, ``join``).  Examples::

        crash:1@0.5        server 1 crashes at t=0.5
        bw:0@2.0x0.25      server 0's uplink drops to 25% at t=2.0
        leave:3@1.0        stream 3 leaves at t=1.0
    """
    try:
        head, time_part = spec.split("@", 1)
        kind_part, target_part = head.split(":", 1)
    except ValueError:
        raise ValueError(
            f"bad fault spec {spec!r}; expected '<kind>:<target>@<time>[x<value>]'"
        ) from None
    kind = _SPEC_ALIASES.get(kind_part.strip().lower(), kind_part.strip().lower())
    value: float | None = None
    if "x" in time_part:
        time_str, value_str = time_part.split("x", 1)
        value = float(value_str)
    else:
        time_str = time_part
    return FaultEvent(
        time=float(time_str), kind=kind, target=int(target_part), value=value
    )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered sequence of fault events.

    ``seed`` records the generator seed for plans built by
    :meth:`random` (purely informational; replay never re-draws).
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty plan)."""
        return self.events[-1].time if self.events else 0.0

    def scaled(self, factor: float) -> "FaultPlan":
        """Copy with every event time multiplied by ``factor``.

        Lets one plan expressed in fractional run progress ([0, 1])
        replay onto a concrete simulation horizon.
        """
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return FaultPlan(
            events=tuple(
                FaultEvent(e.time * factor, e.kind, e.target, e.value)
                for e in self.events
            ),
            seed=self.seed,
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in d.get("events", ())),
            seed=d.get("seed"),
        )

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultPlan":
        """Build a plan from compact CLI specs (:func:`parse_fault_spec`)."""
        return cls(events=tuple(parse_fault_spec(s) for s in specs))

    @classmethod
    def random(
        cls,
        *,
        n_servers: int,
        n_streams: int = 0,
        horizon: float = 1.0,
        n_faults: int = 3,
        recover: bool = True,
        kinds: Sequence[str] = ("server_crash", "bandwidth_drop", "stream_leave"),
        rng: RngLike = 0,
    ) -> "FaultPlan":
        """Seeded random plan: the same ``rng`` always yields the same plan.

        Draws ``n_faults`` primary faults uniformly over ``(0,
        horizon)``; with ``recover=True`` each gets a matching
        recovery event halfway between the fault and the horizon.
        Stream kinds are skipped when ``n_streams == 0``.  At most one
        concurrent server crash is generated (a plan that kills the
        whole cluster is not a degradation scenario, it is an outage).
        """
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        gen = as_generator(rng)
        usable = [
            k
            for k in kinds
            if n_streams > 0 or not k.startswith("stream_")
        ]
        if not usable:
            raise ValueError("no usable fault kinds for this topology")
        events: list[FaultEvent] = []
        # Closed down-time intervals of generated crashes; a new crash
        # whose window would touch an existing one is demoted to a
        # bandwidth drop, so at most one server is ever down at a time.
        crash_windows: list[tuple[float, float]] = []
        for _ in range(int(n_faults)):
            kind = str(gen.choice(usable))
            t = float(gen.uniform(0.05, 0.95)) * horizon
            if kind == "server_crash":
                end = (t + horizon) / 2.0 if recover else horizon
                if any(t <= e1 and t0 <= end for t0, e1 in crash_windows):
                    kind = "bandwidth_drop"
                else:
                    crash_windows.append((t, end))
                    target = int(gen.integers(0, n_servers))
                    events.append(FaultEvent(t, "server_crash", target))
                    if recover:
                        events.append(FaultEvent(end, "server_recover", target))
                    continue
            if kind == "bandwidth_drop":
                target = int(gen.integers(0, n_servers))
                factor = float(gen.uniform(0.05, 0.5))
                events.append(FaultEvent(t, "bandwidth_drop", target, factor))
                if recover:
                    events.append(
                        FaultEvent((t + horizon) / 2.0, "bandwidth_restore", target)
                    )
            elif kind == "stream_leave":
                target = int(gen.integers(0, n_streams))
                events.append(FaultEvent(t, "stream_leave", target))
                if recover:
                    events.append(
                        FaultEvent((t + horizon) / 2.0, "stream_join", target)
                    )
        seed = int(rng) if isinstance(rng, (int, np.integer)) else None
        return cls(events=tuple(events), seed=seed)
