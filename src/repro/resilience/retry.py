"""Bounded retry with exponential backoff for experiment arms.

:class:`RetryPolicy` is consumed by
:func:`repro.bench.parallel.run_parallel` as an alternative to its
default fail-fast mode: a failed (or timed-out) arm is resubmitted up
to ``max_attempts`` total attempts, sleeping ``base_delay * 2**(k-1)``
seconds before retry k.  Retried and abandoned arms are counted in
telemetry (``retry.attempts``, ``retry.succeeded_after_retry``,
``retry.abandoned``) and each retry emits a ``retry.arm`` event.
"""

from __future__ import annotations

from dataclasses import dataclass


class ArmAbandonedError(RuntimeError):
    """An experiment arm failed every attempt allowed by its policy."""

    def __init__(self, arm_index: int, attempts: int, last_error: BaseException | None):
        self.arm_index = int(arm_index)
        self.attempts = int(attempts)
        self.last_error = last_error
        detail = f": {last_error!r}" if last_error is not None else " (timed out)"
        super().__init__(
            f"arm {arm_index} abandoned after {attempts} attempt(s){detail}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry controls for one experiment arm.

    Parameters
    ----------
    max_attempts:
        Total tries per arm (1 = no retry, just the timeout guard).
    base_delay:
        Backoff seconds before the first retry; doubles each retry.
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = no
        limit).  A timed-out attempt counts as a failure; the worker
        process cannot be interrupted, so its eventual result is
        discarded and the attempt reruns on a free worker.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def delay_before(self, attempt: int) -> float:
        """Backoff before attempt number ``attempt`` (2-based: first retry)."""
        if attempt <= 1:
            return 0.0
        return self.base_delay * (2.0 ** (attempt - 2))
