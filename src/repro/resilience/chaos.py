"""Chaos harness: run a scheduler through a fault plan, measure the damage.

The discrete-event simulator replays faults *within* one schedule
(:meth:`repro.sim.cluster.EdgeCluster.run`); this module replays them
*across* scheduling decisions.  A :class:`ChaosRunner` first optimizes
on the pristine topology (the baseline), then walks the
:class:`~repro.resilience.faults.FaultPlan` in time order: each batch
of same-time events yields a new *epoch* — a degraded
:class:`~repro.core.problem.EVAProblem` with crashed servers removed,
throttled uplinks scaled, and departed streams dropped — on which the
scheduler replans (warm-started via ``scheduler.replan`` when the
scheduler supports it, from scratch otherwise).  The resulting
:class:`ChaosReport` compares every epoch's benefit against the
fault-free baseline, which is what ``repro chaos`` prints.

Benefits are comparable across epochs only under a *fixed* utility; by
default the report scores every decision with the supplied
``preference`` (the simulated decision maker's hidden rule) rather than
each epoch's possibly-refit learned model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome
from repro.obs import telemetry
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.utils.serialization import to_jsonable


def degraded_problem(
    problem: EVAProblem,
    *,
    alive: Sequence[bool],
    bw_factor: Sequence[float],
    active: Sequence[bool],
) -> EVAProblem | None:
    """The EVA problem restricted to surviving servers and active streams.

    ``alive``/``bw_factor`` are per-server (a dead server disappears; a
    live one keeps ``nominal * factor`` Mbps), ``active`` is per-stream.
    Returns ``None`` when nothing survives on either side — there is no
    problem left to schedule.
    """
    if len(alive) != problem.n_servers or len(bw_factor) != problem.n_servers:
        raise ValueError(
            f"alive/bw_factor must have {problem.n_servers} entries"
        )
    if len(active) != problem.n_streams:
        raise ValueError(f"active must have {problem.n_streams} entries")
    bw = [
        float(problem.bandwidths_mbps[j]) * float(bw_factor[j])
        for j in range(problem.n_servers)
        if alive[j]
    ]
    textures = [
        float(problem.textures[i])
        for i in range(problem.n_streams)
        if active[i]
    ]
    if not bw or not textures:
        return None
    return EVAProblem(
        len(textures),
        bw,
        config_space=problem.config_space,
        textures=textures,
        profile=problem.profile,
        encoder=problem.encoder,
        outcomes=problem.outcomes,
    )


@dataclass
class EpochResult:
    """One post-fault scheduling epoch."""

    index: int
    time: float
    events: tuple[FaultEvent, ...]
    n_servers: int
    n_streams: int
    feasible: bool
    replanned: bool = False
    outcome: OptimizationOutcome | None = None
    benefit: float | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "time": self.time,
            "events": [e.to_dict() for e in self.events],
            "n_servers": self.n_servers,
            "n_streams": self.n_streams,
            "feasible": self.feasible,
            "replanned": self.replanned,
            "outcome": None if self.outcome is None else self.outcome.to_dict(),
            "benefit": self.benefit,
        }


@dataclass
class ChaosReport:
    """Baseline vs per-epoch benefit under a fault plan."""

    plan: FaultPlan
    baseline: OptimizationOutcome
    baseline_benefit: float
    epochs: list[EpochResult] = field(default_factory=list)
    alerts: list[dict] = field(default_factory=list)

    @property
    def alerts_fired(self) -> int:
        return sum(1 for a in self.alerts if a.get("event") == "alert.fired")

    @property
    def worst_benefit(self) -> float | None:
        """Lowest epoch benefit (None if no epoch produced a schedule)."""
        zs = [e.benefit for e in self.epochs if e.benefit is not None]
        return min(zs) if zs else None

    @property
    def worst_drop(self) -> float | None:
        """Largest benefit drop vs baseline, relative to |baseline|.

        0 means no degradation; 1 means the benefit fell by the full
        baseline magnitude.  ``None`` when no epoch was schedulable.
        """
        worst = self.worst_benefit
        if worst is None:
            return None
        scale = max(abs(self.baseline_benefit), 1e-12)
        return max(0.0, (self.baseline_benefit - worst) / scale)

    @property
    def all_feasible(self) -> bool:
        """True iff every epoch produced a feasible schedule."""
        return all(e.feasible for e in self.epochs)

    def to_dict(self) -> dict:
        return to_jsonable(
            {
                "plan": self.plan.to_dict(),
                "baseline": self.baseline.to_dict(),
                "baseline_benefit": self.baseline_benefit,
                "epochs": [e.to_dict() for e in self.epochs],
                "worst_benefit": self.worst_benefit,
                "worst_drop": self.worst_drop,
                "all_feasible": self.all_feasible,
                "alerts": self.alerts,
                "alerts_fired": self.alerts_fired,
            }
        )


class ChaosRunner:
    """Optimize, inject faults, replan, compare.

    Parameters
    ----------
    problem:
        The pristine (fault-free) problem instance.
    fault_plan:
        Faults to replay; same-time events form one epoch.
    scheduler_factory:
        ``scheduler_factory(problem) -> scheduler`` — builds a fresh
        scheduler for a topology.  Called once for the baseline and
        again per epoch for schedulers without a ``replan`` method.
    preference:
        Fixed utility used to score every decision (an object with a
        ``value(outcomes) -> array`` method, e.g. the decision maker's
        :class:`~repro.pref.decision_maker.TruePreference`).  Defaults
        to each decision's own ``benefit`` field, which is *not*
        comparable across refit learned models — pass the preference
        whenever it is available.
    monitor:
        Optional :class:`repro.obs.health.HealthMonitor` evaluated
        after every fault epoch against ``{"benefit_drop_ratio",
        "feasible", "n_servers", "n_streams"}``, so an injected fault
        that tanks the benefit trips the same ``alert.fired`` /
        ``alert.resolved`` telemetry events the live serve loop emits
        — chaos runs assert on alerts, not log greps.  The fired/
        resolved edges also collect in :attr:`ChaosReport.alerts`.
    """

    def __init__(
        self,
        problem: EVAProblem,
        fault_plan: FaultPlan,
        scheduler_factory: Callable[[EVAProblem], object],
        *,
        preference=None,
        monitor=None,
    ) -> None:
        self.problem = problem
        self.fault_plan = fault_plan
        self.scheduler_factory = scheduler_factory
        self.preference = preference
        self.monitor = monitor

    def _score(self, outcome: OptimizationOutcome) -> float:
        if self.preference is None:
            return float(outcome.decision.benefit)
        y = np.atleast_2d(outcome.decision.outcome)
        return float(np.asarray(self.preference.value(y)).reshape(-1)[0])

    def run(self) -> ChaosReport:
        """Baseline run plus one replan per fault epoch."""
        with telemetry.span("chaos.run"):
            scheduler = self.scheduler_factory(self.problem)
            with telemetry.span("chaos.baseline"):
                baseline = scheduler.optimize()
            report = ChaosReport(
                plan=self.fault_plan,
                baseline=baseline,
                baseline_benefit=self._score(baseline),
            )

            alive = [True] * self.problem.n_servers
            factor = [1.0] * self.problem.n_servers
            active = [True] * self.problem.n_streams

            # Group same-time events into one epoch.
            batches: list[tuple[float, list[FaultEvent]]] = []
            for event in self.fault_plan:
                if batches and batches[-1][0] == event.time:
                    batches[-1][1].append(event)
                else:
                    batches.append((event.time, [event]))

            for idx, (t, events) in enumerate(batches):
                for e in events:
                    self._apply(e, alive, factor, active)
                prob = degraded_problem(
                    self.problem, alive=alive, bw_factor=factor, active=active
                )
                epoch = EpochResult(
                    index=idx,
                    time=t,
                    events=tuple(events),
                    n_servers=0 if prob is None else prob.n_servers,
                    n_streams=0 if prob is None else prob.n_streams,
                    feasible=False,
                )
                if prob is not None:
                    reason = ",".join(f"{e.kind}:{e.target}" for e in events)
                    with telemetry.span("chaos.epoch"):
                        if hasattr(scheduler, "replan"):
                            epoch.replanned = True
                            out = scheduler.replan(prob, reason=reason)
                        else:
                            scheduler = self.scheduler_factory(prob)
                            out = scheduler.optimize()
                    epoch.outcome = out
                    epoch.benefit = self._score(out)
                    epoch.feasible = prob.is_feasible(
                        out.decision.resolutions, out.decision.fps
                    )
                telemetry.counter("chaos.epochs")
                telemetry.event(
                    "chaos.epoch",
                    index=idx,
                    time=t,
                    events=[e.to_dict() for e in events],
                    n_servers=epoch.n_servers,
                    n_streams=epoch.n_streams,
                    feasible=epoch.feasible,
                    replanned=epoch.replanned,
                    benefit=epoch.benefit,
                    baseline_benefit=report.baseline_benefit,
                )
                report.epochs.append(epoch)
                self._check_health(report, epoch)
        return report

    def _check_health(self, report: ChaosReport, epoch: EpochResult) -> None:
        """Run the health monitor over one epoch; emit fired/resolved edges."""
        if self.monitor is None:
            return
        scale = max(abs(report.baseline_benefit), 1e-12)
        drop = (
            None
            if epoch.benefit is None
            else max(0.0, (report.baseline_benefit - epoch.benefit) / scale)
        )
        snapshot = {
            "benefit_drop_ratio": drop,
            "feasible": float(epoch.feasible),
            "n_servers": float(epoch.n_servers),
            "n_streams": float(epoch.n_streams),
        }
        for edge in self.monitor.evaluate(snapshot, epoch=epoch.index):
            report.alerts.append(dict(edge))
            kind = edge.pop("event")
            telemetry.counter(f"chaos.{kind.replace('.', '_')}")
            telemetry.event(kind, time=epoch.time, **edge)

    @staticmethod
    def _apply(
        event: FaultEvent,
        alive: list[bool],
        factor: list[float],
        active: list[bool],
    ) -> None:
        t = int(event.target)
        if event.kind in (
            "server_crash",
            "server_recover",
            "bandwidth_drop",
            "bandwidth_restore",
        ):
            if not (0 <= t < len(alive)):
                raise ValueError(
                    f"fault target {t} out of range for {len(alive)} servers"
                )
        elif not (0 <= t < len(active)):
            raise ValueError(
                f"fault target {t} out of range for {len(active)} streams"
            )
        if event.kind == "server_crash":
            alive[t] = False
        elif event.kind == "server_recover":
            alive[t] = True
        elif event.kind == "bandwidth_drop":
            factor[t] = float(event.value)
        elif event.kind == "bandwidth_restore":
            factor[t] = 1.0
        elif event.kind == "stream_leave":
            active[t] = False
        elif event.kind == "stream_join":
            active[t] = True
