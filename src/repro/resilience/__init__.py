"""Resilience: fault injection, graceful degradation, checkpoint/resume.

Real edge deployments see server crashes, uplink bandwidth collapse,
and camera churn — regimes the paper's zero-jitter theorems assume
away.  This package makes those regimes *testable* and *survivable*:

* :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` (server crash/recover, bandwidth drop/restore,
  stream join/leave) that replays into the discrete-event simulator
  and into topology-level chaos runs, emitting ``fault.*`` telemetry;
* :mod:`repro.resilience.chaos` — :class:`ChaosRunner` replays a plan
  against a scheduler: at every topology change PaMO replans with a
  warm-started BO loop, and the report quantifies benefit/latency
  degradation versus the fault-free run (the ``repro chaos`` CLI);
* :mod:`repro.resilience.checkpoint` — periodic BO-loop state
  serialization so ``repro <scheduler> --resume <ckpt>`` continues a
  crashed run bit-identically;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded
  retries, exponential backoff, per-arm timeout) consumed by
  :func:`repro.bench.parallel.run_parallel`;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`
  (closed/open/half-open) guarding the serve loop's full-solve path;
  open = brownout operation until half-open probes pass.
"""

from repro.resilience.breaker import BREAKER_STATES, CircuitBreaker
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    parse_fault_spec,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.checkpoint import (
    CheckpointData,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.chaos import ChaosReport, ChaosRunner, EpochResult

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "parse_fault_spec",
    "RetryPolicy",
    "CheckpointData",
    "load_checkpoint",
    "save_checkpoint",
    "ChaosReport",
    "ChaosRunner",
    "EpochResult",
]
