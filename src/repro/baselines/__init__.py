"""Baseline schedulers and classical weighting rules (§5.1, §6).

* :class:`~repro.baselines.jcab.JCAB` — Lyapunov drift-plus-penalty
  configuration adaptation with First-Fit placement (Zhang et al.,
  ToN '21 [34]): optimizes a linear weighting of accuracy and energy.
* :class:`~repro.baselines.fact.FACT` — block-coordinate-descent
  optimization of weighted latency + accuracy with resolution and
  allocation knobs (Liu et al., INFOCOM '18 [19]).
* :mod:`repro.baselines.weights` — Equal / ROC / Rank-sum / Pseudo
  classical weight rules ([10], discussed in §1 and §6).
* :mod:`repro.baselines.search` — random search and the exhaustive
  oracle for small instances, plus Pareto-front extraction (§2.3).
"""

from repro.baselines.jcab import JCAB
from repro.baselines.fact import FACT
from repro.baselines.weights import (
    equal_weights,
    roc_weights,
    rank_sum_weights,
    pseudo_weights,
)
from repro.baselines.search import RandomSearch, pareto_front, exhaustive_best
from repro.baselines.weighted import WeightedSumScheduler
from repro.baselines.registry import (
    available_schedulers,
    make_scheduler,
    register_scheduler,
)

__all__ = [
    "JCAB",
    "FACT",
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
    "equal_weights",
    "roc_weights",
    "rank_sum_weights",
    "pseudo_weights",
    "RandomSearch",
    "pareto_front",
    "exhaustive_best",
    "WeightedSumScheduler",
]
