"""Fixed-weight schedulers built on the classical rules of §1.

The paper's introduction argues that Equal / ROC / Rank-sum / Pseudo
weights "are not flexible enough to adapt to diverse and dynamic EVA
system environments".  This module makes that argument executable: a
scheduler that scalarizes the five (normalized, minimization-oriented)
objectives with a classical weight rule and picks the best decision
from the same candidate families PaMO searches — so any benefit gap to
PaMO is attributable to the *weights*, not the search.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.weights import (
    equal_weights,
    pseudo_weights,
    rank_sum_weights,
    roc_weights,
)
from repro.core.benefit import compute_bounds
from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome, ScheduleDecision
from repro.core.scheduler import SchedulerMixin
from repro.obs import telemetry
from repro.outcomes.functions import OBJECTIVES
from repro.moo.scalarize import weighted_chebyshev, weighted_sum
from repro.utils import as_generator
from repro.utils.compat import absorb_positional
from repro.utils.rng import RngLike

#: objective orientation: flip accuracy so everything is minimized
_FLIP = np.array([1.0, -1.0, 1.0, 1.0, 1.0])


class WeightedSumScheduler(SchedulerMixin):
    """Best-of-pool scheduler under a fixed classical weighting.

    Keyword-only after ``problem`` (legacy positional ``rule`` still
    works with a :class:`DeprecationWarning`).

    Parameters
    ----------
    problem:
        EVA problem instance.
    rule:
        'equal' | 'roc' | 'rs' | 'pseudo', or an explicit weight vector.
        ROC/RS need ``ranks`` (objective importance permutation,
        1 = most important, default canonical order).  'pseudo' derives
        weights from a random Pareto front sample (Deb's pseudo-weights
        of its knee point).
    scalarization:
        'sum' (linear) or 'chebyshev'.
    n_candidates:
        Random decisions scored in addition to the uniform-knob family.
    """

    method_name = "WeightedSum"

    def __init__(
        self,
        problem: EVAProblem,
        *args,
        rule: str | Sequence[float] | None = None,
        ranks: Sequence[int] | None = None,
        scalarization: str = "sum",
        n_candidates: int = 60,
        rng: RngLike = None,
    ) -> None:
        shim = absorb_positional(
            "WeightedSumScheduler", args, ("rule",), {"rule": rule}
        )
        rule = shim["rule"] if shim["rule"] is not None else "equal"
        self.problem = problem
        self._rng = as_generator(rng)
        self.n_candidates = int(n_candidates)
        if scalarization not in ("sum", "chebyshev"):
            raise ValueError(f"unknown scalarization {scalarization!r}")
        self.scalarization = scalarization
        self.rule = rule
        self.ranks = list(ranks) if ranks is not None else list(
            range(1, len(OBJECTIVES) + 1)
        )
        self._lo, self._hi = compute_bounds(problem)

    # ------------------------------------------------------------------
    def _oriented(self, y: np.ndarray) -> np.ndarray:
        """Normalize outcomes to [0,1] and orient for minimization."""
        span = np.where(self._hi > self._lo, self._hi - self._lo, 1.0)
        yn = (np.asarray(y, dtype=float) - self._lo) / span
        # accuracy: higher is better -> minimize (1 - acc_norm)
        out = yn.copy()
        out[..., 1] = 1.0 - out[..., 1]
        return out

    def _resolve_weights(self, oriented_pool: np.ndarray) -> np.ndarray:
        k = len(OBJECTIVES)
        if not isinstance(self.rule, str):
            w = np.asarray(self.rule, dtype=float)
            if w.size != k:
                raise ValueError(f"weights must have {k} entries, got {w.size}")
            return w
        if self.rule == "equal":
            return equal_weights(k)
        if self.rule == "roc":
            return roc_weights(self.ranks)
        if self.rule == "rs":
            return rank_sum_weights(self.ranks)
        if self.rule == "pseudo":
            from repro.baselines.search import pareto_front

            idx = pareto_front(oriented_pool)
            front = oriented_pool[idx]
            # knee point: smallest L2 norm in normalized space
            knee = int(np.argmin(np.linalg.norm(front, axis=1)))
            return pseudo_weights(front, knee)
        raise ValueError(f"unknown weight rule {self.rule!r}")

    def _candidate_decisions(self) -> list[tuple[np.ndarray, np.ndarray]]:
        space = self.problem.config_space
        m = self.problem.n_streams
        decisions = [
            (np.full(m, r), np.full(m, s)) for r, s in space.all_configs()
        ]
        for _ in range(self.n_candidates):
            decisions.append(self.problem.sample_decision(self._rng))
        return decisions

    @property
    def name(self) -> str:
        return f"Weighted[{self.rule}/{self.scalarization}]"

    def optimize(self) -> OptimizationOutcome:
        """Score the candidate family and return the best scalarized."""
        with telemetry.span("weighted.optimize"):
            return self._optimize()

    def _optimize(self) -> OptimizationOutcome:
        decisions = self._candidate_decisions()
        outcomes = np.stack([self.problem.evaluate(r, s) for r, s in decisions])
        oriented = self._oriented(outcomes)
        w = self._resolve_weights(oriented)
        if self.scalarization == "sum":
            scores = weighted_sum(oriented, w)
        else:
            scores = weighted_chebyshev(oriented, w)
        best = int(np.argmin(scores))
        r, s = decisions[best]
        assignment, _ = self.problem.schedule(r, s)
        return OptimizationOutcome(
            decision=ScheduleDecision(
                resolutions=r,
                fps=s,
                assignment=assignment,
                outcome=outcomes[best],
                benefit=-float(scores[best]),
                method=self.name,
            ),
            n_iterations=len(decisions),
            converged=True,
            extras={"weights": w},
        )
