"""Scheduler registry: one construction surface for every optimizer.

``make_scheduler(name, problem, **kw)`` replaces the hand-rolled
if/elif ladders previously duplicated across the CLI and the bench
harness.  Factories normalize the differing construction needs:

* the PaMO family needs a decision maker — pass ``decision_maker``
  directly, or pass ``preference`` and one is built (with the
  registry's ``rng`` and ``dm_noise``);
* acquisition-variant names (``pamo_qei`` …) preset ``acquisition``;
* ``random`` needs a benefit function — pass ``benefit_fn`` or let it
  fall back to ``preference.value``.

Names are case-insensitive and the paper's spellings ('PaMO+',
'PaMO_qEI', …) are all registered.  New schedulers self-register with
:func:`register_scheduler`, so downstream dispatch code never changes.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.fact import FACT
from repro.baselines.jcab import JCAB
from repro.baselines.search import RandomSearch
from repro.baselines.weighted import WeightedSumScheduler
from repro.core.pamo import PaMO, PaMOPlus
from repro.core.problem import EVAProblem
from repro.core.scheduler import Scheduler
from repro.utils.rng import RngLike

__all__ = ["available_schedulers", "make_scheduler", "register_scheduler"]

#: name (lowercase) -> factory(problem, *, preference, decision_maker,
#: rng, **kw) -> Scheduler
_REGISTRY: dict[str, Callable[..., Scheduler]] = {}


def register_scheduler(*names: str):
    """Decorator registering a scheduler factory under ``names``."""
    if not names:
        raise ValueError("register_scheduler needs at least one name")

    def deco(factory: Callable[..., Scheduler]) -> Callable[..., Scheduler]:
        for name in names:
            key = name.lower()
            if key in _REGISTRY:
                raise ValueError(f"scheduler {name!r} already registered")
            _REGISTRY[key] = factory
        return factory

    return deco


def available_schedulers() -> tuple[str, ...]:
    """Sorted registered scheduler names (lowercase)."""
    return tuple(sorted(_REGISTRY))


def make_scheduler(
    name: str,
    problem: EVAProblem,
    *,
    preference=None,
    decision_maker=None,
    benefit_fn=None,
    rng: RngLike = None,
    dm_noise: float = 0.0,
    **kwargs,
) -> Scheduler:
    """Construct the scheduler registered under ``name`` (case-insensitive).

    ``preference`` / ``decision_maker`` / ``benefit_fn`` are consumed by
    the factories that need them (and ignored by factories that don't);
    remaining ``kwargs`` go to the scheduler constructor verbatim.
    """
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](
        problem,
        preference=preference,
        decision_maker=decision_maker,
        benefit_fn=benefit_fn,
        rng=rng,
        dm_noise=dm_noise,
        **kwargs,
    )


def _require_decision_maker(name, preference, decision_maker, rng, dm_noise):
    if decision_maker is not None:
        return decision_maker
    if preference is None:
        raise ValueError(
            f"scheduler {name!r} needs 'decision_maker' (or 'preference' "
            "to build one)"
        )
    from repro.pref.decision_maker import DecisionMaker

    return DecisionMaker(preference, noise_scale=dm_noise, rng=rng)


def _pamo_factory(cls, acquisition: str | None):
    def factory(
        problem,
        *,
        preference=None,
        decision_maker=None,
        benefit_fn=None,
        rng=None,
        dm_noise=0.0,
        **kw,
    ):
        dm = _require_decision_maker(
            cls.method_name, preference, decision_maker, rng, dm_noise
        )
        if acquisition is not None:
            kw.setdefault("acquisition", acquisition)
        return cls(problem, decision_maker=dm, rng=rng, **kw)

    return factory


for _name, _cls, _acq in (
    ("pamo", PaMO, None),
    ("pamo_qei", PaMO, "qEI"),
    ("pamo_qucb", PaMO, "qUCB"),
    ("pamo_qsr", PaMO, "qSR"),
    ("pamo_ts", PaMO, "TS"),
):
    register_scheduler(_name)(_pamo_factory(_cls, _acq))
register_scheduler("pamo+", "pamoplus")(_pamo_factory(PaMOPlus, None))


@register_scheduler("jcab")
def _make_jcab(problem, *, preference=None, decision_maker=None, benefit_fn=None,
               rng=None, dm_noise=0.0, **kw):
    return JCAB(problem, rng=rng, **kw)


@register_scheduler("fact")
def _make_fact(problem, *, preference=None, decision_maker=None, benefit_fn=None,
               rng=None, dm_noise=0.0, **kw):
    return FACT(problem, rng=rng, **kw)


@register_scheduler("weighted", "weightedsum")
def _make_weighted(problem, *, preference=None, decision_maker=None,
                   benefit_fn=None, rng=None, dm_noise=0.0, **kw):
    return WeightedSumScheduler(problem, rng=rng, **kw)


@register_scheduler("random", "randomsearch")
def _make_random(problem, *, preference=None, decision_maker=None,
                 benefit_fn=None, rng=None, dm_noise=0.0, **kw):
    if benefit_fn is None:
        if preference is None:
            raise ValueError(
                "scheduler 'random' needs 'benefit_fn' (or 'preference' to "
                "score with)"
            )
        benefit_fn = preference.value
    return RandomSearch(problem, benefit_fn=benefit_fn, rng=rng, **kw)


@register_scheduler("greedy")
def _make_greedy(problem, *, preference=None, decision_maker=None,
                 benefit_fn=None, rng=None, dm_noise=0.0, **kw):
    if preference is None:
        raise ValueError("scheduler 'greedy' needs 'preference' to rank with")
    from repro.serve.greedy import GreedyScheduler

    return GreedyScheduler(problem, preference=preference, rng=rng, **kw)
