"""Classical multi-objective weight definitions ([10], §1/§6).

Each rule maps an objective *ranking* (or a Pareto front, for
pseudo-weights) to a weight vector summing to 1.  These are the fixed
schemes the paper argues "are not flexible enough to adapt to diverse
and dynamic EVA system environments".
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_array_2d


def _check_k(k: int) -> int:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return int(k)


def equal_weights(k: int) -> np.ndarray:
    """w_i = 1/k."""
    k = _check_k(k)
    return np.full(k, 1.0 / k)


def roc_weights(ranks) -> np.ndarray:
    """Rank-order-centroid: w_(i) = (1/k) Σ_{j=i}^{k} 1/j.

    ``ranks[i]`` is objective i's importance rank (1 = most important).
    """
    ranks = np.asarray(ranks, dtype=int)
    k = _check_k(ranks.size)
    if sorted(ranks.tolist()) != list(range(1, k + 1)):
        raise ValueError(f"ranks must be a permutation of 1..{k}, got {ranks}")
    harmonic = np.cumsum(1.0 / np.arange(1, k + 1)[::-1])[::-1]  # Σ_{j=i}^k 1/j
    by_rank = harmonic / k
    return by_rank[ranks - 1]


def rank_sum_weights(ranks) -> np.ndarray:
    """Rank-sum: w_(i) = 2(k + 1 − i) / (k(k + 1))."""
    ranks = np.asarray(ranks, dtype=int)
    k = _check_k(ranks.size)
    if sorted(ranks.tolist()) != list(range(1, k + 1)):
        raise ValueError(f"ranks must be a permutation of 1..{k}, got {ranks}")
    return 2.0 * (k + 1 - ranks) / (k * (k + 1))


def pseudo_weights(front, point_index: int) -> np.ndarray:
    """Pseudo-weights of one Pareto-front point (Deb's definition).

    w_i ∝ (f_i^max − f_i) / (f_i^max − f_i^min): the relative distance
    of the chosen point from the worst value on each (minimized)
    objective, normalized to sum to 1.
    """
    front = check_array_2d("front", front)
    if not (0 <= point_index < front.shape[0]):
        raise ValueError(
            f"point_index {point_index} out of range for front of {front.shape[0]}"
        )
    f_min = front.min(axis=0)
    f_max = front.max(axis=0)
    span = np.where(f_max > f_min, f_max - f_min, 1.0)
    raw = (f_max - front[point_index]) / span
    total = raw.sum()
    if total <= 0:
        return np.full(front.shape[1], 1.0 / front.shape[1])
    return raw / total
