"""FACT baseline: block coordinate descent on latency + accuracy ([19]).

FACT (Liu et al., INFOCOM '18, the mobile-AR edge orchestrator)
minimizes a weighted sum of end-to-end **latency** and **accuracy
loss** by adjusting per-stream *resolution* and *server allocation*
with block coordinate descent.  Faithful to the paper's description in
§5.1:

* frame rate is NOT a knob (held at the maximum configured rate);
* energy and network consumption are NOT in its objective;
* the two blocks alternate — (a) per-stream resolution by exhaustive
  knob search given the allocation; (b) allocation by utilization-aware
  greedy (least resulting cost, capacity-capped) given resolutions —
  until a sweep changes nothing.

Like JCAB it reasons about average utilization only, never about
periods, so its placements routinely violate Const2.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome, ScheduleDecision
from repro.core.scheduler import SchedulerMixin
from repro.obs import telemetry
from repro.utils import check_positive
from repro.utils.compat import resolve_deprecated
from repro.utils.rng import RngLike


class FACT(SchedulerMixin):
    """BCD over (resolution, allocation) for weighted latency+accuracy.

    Parameters
    ----------
    w_ltc, w_acc:
        Objective weights: minimize ``w_ltc·ltc̄ + w_acc·(1 − acc)``
        with latency max-normalized across the knob range.
    n_iterations:
        BCD sweep budget (typically converges in 2–4); ``max_sweeps``
        is the deprecated alias.
    rng:
        Accepted for cross-scheduler API consistency; FACT itself is
        deterministic and never draws from it.
    """

    method_name = "FACT"

    def __init__(
        self,
        problem: EVAProblem,
        *,
        w_ltc: float = 1.0,
        w_acc: float = 1.0,
        n_iterations: int | None = None,
        max_sweeps: int | None = None,
        tol: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        n_iterations = resolve_deprecated(
            "FACT", "max_sweeps", max_sweeps, "n_iterations", n_iterations,
            default=10,
        )
        self.problem = problem
        self.w_ltc = check_positive("w_ltc", w_ltc, strict=False)
        self.w_acc = check_positive("w_acc", w_acc, strict=False)
        self.n_iterations = int(check_positive("n_iterations", n_iterations))
        self.tol = check_positive("tol", tol, strict=False)

        self._res = np.asarray(problem.config_space.resolutions, dtype=float)
        self._fps = float(max(problem.config_space.fps_values))
        prof = problem.profile
        enc = problem.encoder
        self._proc = np.array([prof.processing_time(r) for r in self._res])
        self._bits = np.array([enc.bits_per_frame(r) for r in self._res])
        self._acc = np.array(
            [problem.outcomes.accuracy([r], [self._fps]) for r in self._res]
        )
        # normalization for the latency term: worst case = biggest frame
        # on the slowest uplink
        slow_bw = float(np.min(problem.bandwidths_mbps)) * 1e6
        self._ltc_max = float(self._proc.max() + self._bits.max() / slow_bw)

    def _stream_cost(self, res_idx: int, server: int) -> float:
        bw = self.problem.bandwidths_mbps[server] * 1e6
        ltc = self._proc[res_idx] + self._bits[res_idx] / bw
        return self.w_ltc * (ltc / self._ltc_max) + self.w_acc * (
            1.0 - self._acc[res_idx]
        )

    def _best_resolution(self, server: int, budget: float) -> int:
        """Cheapest knob whose load fits the remaining server budget."""
        best, best_cost = 0, np.inf
        for k in range(self._res.size):
            if self._proc[k] * self._fps > budget + 1e-9:
                continue
            c = self._stream_cost(k, server)
            if c < best_cost:
                best, best_cost = k, c
        return best

    def _reallocate(self, res_idx: np.ndarray) -> list[int]:
        """Greedy allocation: per stream (heaviest first), pick the
        server minimizing its cost among those with spare capacity."""
        n = self.problem.n_servers
        util = np.zeros(n)
        order = np.argsort(-self._proc[res_idx])  # heavy streams first
        assignment = [0] * len(res_idx)
        for i in order:
            load = self._proc[res_idx[i]] * self._fps
            candidates = [j for j in range(n) if util[j] + load <= 1.0 + 1e-9]
            if not candidates:
                candidates = [int(np.argmin(util))]
            j_best = min(candidates, key=lambda j: self._stream_cost(res_idx[i], j))
            assignment[i] = j_best
            util[j_best] += load
        return assignment

    @property
    def max_sweeps(self) -> int:
        """Deprecated alias of :attr:`n_iterations`."""
        return self.n_iterations

    def optimize(self) -> OptimizationOutcome:
        """Run BCD sweeps to quiescence; returns the final decision."""
        with telemetry.span("fact.optimize"):
            return self._optimize()

    def _optimize(self) -> OptimizationOutcome:
        m = self.problem.n_streams
        res_idx = np.full(m, self._res.size - 1, dtype=int)  # start at max res
        assignment = self._reallocate(res_idx)
        history: list[float] = []

        for sweep in range(self.n_iterations):
            changed = False
            # Block 1: resolutions given allocation (respect capacity).
            util = np.zeros(self.problem.n_servers)
            for i, srv in enumerate(assignment):
                util[srv] += self._proc[res_idx[i]] * self._fps
            for i, srv in enumerate(assignment):
                budget = 1.0 - (util[srv] - self._proc[res_idx[i]] * self._fps)
                new_k = self._best_resolution(srv, budget)
                if new_k != res_idx[i]:
                    util[srv] += (self._proc[new_k] - self._proc[res_idx[i]]) * self._fps
                    res_idx[i] = new_k
                    changed = True
            # Block 2: allocation given resolutions.
            new_assignment = self._reallocate(res_idx)
            if new_assignment != assignment:
                assignment = new_assignment
                changed = True
            total = sum(
                self._stream_cost(res_idx[i], assignment[i]) for i in range(m)
            )
            history.append(-total)  # higher is better, for symmetry
            if not changed:
                break
            if (
                self.tol > 0
                and len(history) >= 2
                and abs(history[-1] - history[-2]) < self.tol
            ):
                break

        r = self._res[res_idx]
        s = np.full(m, self._fps)
        outcome = self.problem.evaluate_decision(r, s, assignment)
        return OptimizationOutcome(
            decision=ScheduleDecision(
                resolutions=r,
                fps=s,
                assignment=assignment,
                outcome=outcome,
                benefit=history[-1] if history else float("nan"),
                method=self.method_name,
            ),
            n_iterations=len(history),
            converged=len(history) < self.n_iterations,
            history=history,
        )
