"""Search baselines and Pareto utilities.

* :class:`RandomSearch` — sample random knob decisions, keep the best
  under a given benefit function (the sanity floor every scheduler
  must beat);
* :func:`exhaustive_best` — the oracle optimum by full enumeration
  (tiny instances only; (C_r·C_f)^M blows up exactly as §1 warns);
* :func:`pareto_front` — non-dominated filtering with the §2.3
  dominance definition (all objectives oriented lower-is-better).
"""

from __future__ import annotations

import itertools
from typing import Callable

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome, ScheduleDecision
from repro.core.scheduler import SchedulerMixin
from repro.obs import telemetry
from repro.utils import as_generator, check_array_2d
from repro.utils.compat import absorb_positional, resolve_deprecated
from repro.utils.rng import RngLike


def pareto_front(outcomes) -> np.ndarray:
    """Indices of non-dominated rows (§2.3 dominance; minimize all).

    x₁ dominates x₂ iff f_i(x₁) ≤ f_i(x₂) ∀i with strict < somewhere.
    O(n²) pairwise check, vectorized row-against-all.
    """
    y = check_array_2d("outcomes", outcomes)
    n = y.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        leq = np.all(y <= y[i], axis=1)
        lt = np.any(y < y[i], axis=1)
        dominators = leq & lt
        dominators[i] = False
        if np.any(dominators):
            keep[i] = False
    return np.flatnonzero(keep)


def orient_minimize(outcomes: np.ndarray) -> np.ndarray:
    """Flip accuracy so every objective is lower-is-better.

    Canonical order [ltc, acc, net, com, eng] → acc becomes −acc.
    """
    y = check_array_2d("outcomes", outcomes).copy()
    y[:, 1] = -y[:, 1]
    return y


class RandomSearch(SchedulerMixin):
    """Best-of-N random knob decisions under a benefit function.

    Keyword-only after ``problem``; ``n_iterations`` is the sample
    budget (``n_samples`` is the deprecated alias).
    """

    method_name = "RandomSearch"

    def __init__(
        self,
        problem: EVAProblem,
        *args,
        benefit_fn: Callable[[np.ndarray], float] | None = None,
        n_iterations: int | None = None,
        n_samples: int | None = None,
        rng: RngLike = None,
    ) -> None:
        shim = absorb_positional(
            "RandomSearch", args, ("benefit_fn",), {"benefit_fn": benefit_fn}
        )
        benefit_fn = shim["benefit_fn"]
        if benefit_fn is None:
            raise TypeError(
                "RandomSearch() missing required keyword argument 'benefit_fn'"
            )
        n_iterations = resolve_deprecated(
            "RandomSearch", "n_samples", n_samples, "n_iterations", n_iterations,
            default=100,
        )
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.problem = problem
        self.benefit_fn = benefit_fn
        self.n_iterations = int(n_iterations)
        self._rng = as_generator(rng)

    @property
    def n_samples(self) -> int:
        """Deprecated alias of :attr:`n_iterations`."""
        return self.n_iterations

    def optimize(self) -> OptimizationOutcome:
        """Sample-and-keep-best over ``n_iterations`` random decisions."""
        with telemetry.span("random_search.optimize"):
            return self._optimize()

    def _optimize(self) -> OptimizationOutcome:
        best = None
        history = []
        for _ in range(self.n_iterations):
            r, s = self.problem.sample_decision(self._rng)
            y = self.problem.evaluate(r, s)
            z = float(self.benefit_fn(y))
            if best is None or z > best[3]:
                best = (r, s, y, z)
            history.append(best[3])
        r, s, y, z = best
        assignment, _ = self.problem.schedule(r, s)
        return OptimizationOutcome(
            decision=ScheduleDecision(
                resolutions=r,
                fps=s,
                assignment=assignment,
                outcome=y,
                benefit=z,
                method=self.method_name,
            ),
            true_benefit=z,
            n_iterations=self.n_iterations,
            converged=True,
            history=history,
        )


def exhaustive_best(
    problem: EVAProblem,
    benefit_fn: Callable[[np.ndarray], float],
    *,
    max_decisions: int = 200_000,
) -> ScheduleDecision:
    """Oracle optimum by enumerating every knob decision.

    Raises ``ValueError`` when the space exceeds ``max_decisions`` —
    the (N·C_r·C_f)^M explosion the paper's §1 motivates BO with.
    """
    space = problem.config_space
    per_stream = space.all_configs()
    n_total = per_stream.shape[0] ** problem.n_streams
    if n_total > max_decisions:
        raise ValueError(
            f"decision space has {n_total} points (> {max_decisions}); "
            "use RandomSearch or PaMO instead"
        )
    best: tuple | None = None
    for combo in itertools.product(range(per_stream.shape[0]), repeat=problem.n_streams):
        r = per_stream[list(combo), 0]
        s = per_stream[list(combo), 1]
        y = problem.evaluate(r, s)
        z = float(benefit_fn(y))
        if best is None or z > best[3]:
            best = (r, s, y, z)
    assert best is not None
    r, s, y, z = best
    assignment, _ = problem.schedule(r, s)
    return ScheduleDecision(
        resolutions=r,
        fps=s,
        assignment=assignment,
        outcome=y,
        benefit=z,
        method="Exhaustive",
    )
