"""JCAB baseline: Lyapunov drift-plus-penalty + First-Fit ([34], §5.1).

JCAB (Zhang et al., IEEE/ACM ToN '21) adapts per-stream configuration
to maximize a linear weighting of **accuracy and energy** while keeping
per-server compute and uplink virtual queues stable:

* each slot, every stream greedily picks the knob pair (r, s) that
  maximizes ``V·(w_acc·acc − w_eng·ēng) − Q_q·load − Z_q·b̄w`` where
  Q_q / Z_q are the assigned server's compute/bandwidth virtual queues
  (the drift terms) and ēng/b̄w are max-normalized energy/bitrate;
* placement is **First-Fit** by utilization — no harmonic-period
  reasoning, so the resulting schedules generally violate Const2 and
  pay queueing delay on the real testbed (the paper's core criticism);
* virtual queues integrate overload: Q ← max(0, Q + load − 1),
  Z ← max(0, Z + used − capacity).

The knobs it does NOT consider — latency, network, computation in the
benefit — are exactly why it trails PaMO under general preferences.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome, ScheduleDecision
from repro.core.scheduler import SchedulerMixin
from repro.obs import telemetry
from repro.utils import as_generator, check_positive
from repro.utils.compat import resolve_deprecated
from repro.utils.rng import RngLike


class JCAB(SchedulerMixin):
    """Lyapunov configuration adaptation with First-Fit placement.

    Parameters
    ----------
    problem:
        EVA problem instance.
    w_acc, w_eng:
        Weights of JCAB's two-objective linear benefit.
    v:
        Lyapunov trade-off parameter V (penalty vs queue drift).
    n_iterations:
        Time slots to iterate (the online algorithm run to quiescence);
        ``n_slots`` is the deprecated alias.
    """

    method_name = "JCAB"

    def __init__(
        self,
        problem: EVAProblem,
        *,
        w_acc: float = 1.0,
        w_eng: float = 1.0,
        v: float = 1.0,
        n_iterations: int | None = None,
        n_slots: int | None = None,
        tol: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        n_iterations = resolve_deprecated(
            "JCAB", "n_slots", n_slots, "n_iterations", n_iterations, default=40
        )
        self.problem = problem
        self.w_acc = check_positive("w_acc", w_acc, strict=False)
        self.w_eng = check_positive("w_eng", w_eng, strict=False)
        self.v = check_positive("v", v)
        self.n_iterations = int(check_positive("n_iterations", n_iterations))
        self.tol = check_positive("tol", tol, strict=False)
        self._rng = as_generator(rng)

        space = problem.config_space
        self._knobs = space.all_configs()  # (K, 2) of (r, s)
        fns = problem.outcomes
        # Per-knob per-stream primitives (streams share knob economics;
        # texture only scales bits, handled via stream index where needed).
        self._acc = np.array([fns.accuracy([r], [s]) for r, s in self._knobs])
        self._eng = np.array([fns.energy_watts([r], [s]) for r, s in self._knobs])
        self._load = np.array(
            [problem.profile.processing_time(r) * s for r, s in self._knobs]
        )
        self._bw = np.array(
            [fns.network_mbps([r], [s]) for r, s in self._knobs]
        )
        self._eng_n = self._eng / self._eng.max()
        self._bw_n = self._bw / self._bw.max()

    def _first_fit(self, loads: np.ndarray) -> list[int]:
        """First-Fit by utilization: first server whose load stays ≤ 1."""
        n = self.problem.n_servers
        util = np.zeros(n)
        assignment: list[int] = []
        for ld in loads:
            placed = False
            for j in range(n):
                if util[j] + ld <= 1.0 + 1e-9:
                    util[j] += ld
                    assignment.append(j)
                    placed = True
                    break
            if not placed:
                j = int(np.argmin(util))  # overload the least-loaded server
                util[j] += ld
                assignment.append(j)
        return assignment

    @property
    def n_slots(self) -> int:
        """Deprecated alias of :attr:`n_iterations`."""
        return self.n_iterations

    def optimize(self) -> OptimizationOutcome:
        """Run the Lyapunov slot loop; returns the final decision."""
        with telemetry.span("jcab.optimize"):
            return self._optimize()

    def _optimize(self) -> OptimizationOutcome:
        m = self.problem.n_streams
        n = self.problem.n_servers
        q = np.zeros(n)  # compute virtual queues
        z = np.zeros(n)  # bandwidth virtual queues
        # start every stream at the middle knob
        knob_idx = np.full(m, len(self._knobs) // 2, dtype=int)
        assignment = self._first_fit(self._load[knob_idx])
        history: list[float] = []

        for _ in range(self.n_iterations):
            # (1) per-stream config: maximize penalty-minus-drift greedily
            for i in range(m):
                srv = assignment[i]
                score = (
                    self.v * (self.w_acc * self._acc - self.w_eng * self._eng_n)
                    - q[srv] * self._load
                    - z[srv] * self._bw_n
                )
                knob_idx[i] = int(np.argmax(score))
            # (2) placement: First-Fit on the new loads
            assignment = self._first_fit(self._load[knob_idx])
            # (3) queue updates from realized usage
            load_per_srv = np.zeros(n)
            bw_per_srv = np.zeros(n)
            for i, srv in enumerate(assignment):
                load_per_srv[srv] += self._load[knob_idx[i]]
                bw_per_srv[srv] += self._bw[knob_idx[i]]
            q = np.maximum(0.0, q + load_per_srv - 1.0)
            z = np.maximum(0.0, z + bw_per_srv - self.problem.bandwidths_mbps)
            history.append(
                float(np.sum(self.w_acc * self._acc[knob_idx]))
                - float(np.sum(self.w_eng * self._eng_n[knob_idx]))
            )
            # Early termination on objective quiescence (the paper's
            # Fig. 10(b) termination-threshold knob).
            if (
                self.tol > 0
                and len(history) >= 2
                and abs(history[-1] - history[-2]) < self.tol
            ):
                break

        r = self._knobs[knob_idx, 0]
        s = self._knobs[knob_idx, 1]
        outcome = self.problem.evaluate_decision(r, s, assignment)
        internal = history[-1] if history else float("nan")
        return OptimizationOutcome(
            decision=ScheduleDecision(
                resolutions=r,
                fps=s,
                assignment=assignment,
                outcome=outcome,
                benefit=internal,
                method=self.method_name,
            ),
            n_iterations=len(history),
            converged=True,
            history=history,
        )
