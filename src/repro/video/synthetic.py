"""Procedural scene generation: moving objects with ground-truth boxes.

A clip is a sequence of frames; each frame carries the ground-truth boxes
of every visible object in *reference-resolution* pixel coordinates.
Objects follow smooth random-walk trajectories with per-clip motion and
density characteristics, mimicking the variety of MOT16 sequences
(crowded pedestrian scenes vs sparse vehicle scenes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import as_generator, check_positive, spawn
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class SceneConfig:
    """Content characteristics of a synthetic clip.

    Parameters
    ----------
    n_objects:
        Mean number of concurrently visible objects.
    object_size:
        Mean box side length (px at reference resolution).
    size_spread:
        Log-normal sigma of object sizes — large spread means many small,
        hard objects (accuracy then degrades faster with resolution).
    speed:
        Mean object speed in px/frame at the native frame rate; controls
        how quickly held detections go stale at low sampling rates.
    texture:
        Relative spatial complexity in (0.5, 2.0); scales encoded bits.
    width, height:
        Reference capture resolution.
    native_fps:
        Capture rate of the camera.
    """

    n_objects: int = 12
    object_size: float = 90.0
    size_spread: float = 0.5
    speed: float = 6.0
    texture: float = 1.0
    width: float = 1920.0
    height: float = 1080.0
    native_fps: float = 30.0

    def __post_init__(self) -> None:
        check_positive("n_objects", self.n_objects)
        check_positive("object_size", self.object_size)
        check_positive("size_spread", self.size_spread, strict=False)
        check_positive("speed", self.speed, strict=False)
        check_positive("texture", self.texture)
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_positive("native_fps", self.native_fps)


@dataclass
class SyntheticClip:
    """A generated clip: per-frame ground truth plus its scene config."""

    config: SceneConfig
    frames: list[np.ndarray]  # each (n_i, 4) ground-truth boxes
    name: str = "clip"

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def duration(self) -> float:
        """Clip length in seconds at the native frame rate."""
        return self.n_frames / self.config.native_fps

    def mean_object_count(self) -> float:
        """Average visible objects per frame."""
        return float(np.mean([f.shape[0] for f in self.frames])) if self.frames else 0.0


def generate_clip(
    config: SceneConfig | None = None,
    *,
    n_frames: int = 150,
    rng: RngLike = None,
    name: str = "clip",
) -> SyntheticClip:
    """Generate a clip with smooth object trajectories.

    Objects are born at random positions with log-normal sizes and an
    Ornstein–Uhlenbeck-ish velocity process (velocity decays toward a
    redrawn heading, keeping motion smooth but non-degenerate).  Objects
    leaving the frame respawn on the opposite side so density stays
    stationary over time.
    """
    cfg = config or SceneConfig()
    gen = as_generator(rng)
    check_positive("n_frames", n_frames)

    n = int(cfg.n_objects)
    # Initial state.
    cx = gen.uniform(0, cfg.width, n)
    cy = gen.uniform(0, cfg.height, n)
    sizes = cfg.object_size * gen.lognormal(0.0, cfg.size_spread, n)
    aspect = gen.uniform(0.6, 1.8, n)  # height/width
    heading = gen.uniform(0, 2 * np.pi, n)
    vx = cfg.speed * np.cos(heading)
    vy = cfg.speed * np.sin(heading)

    frames: list[np.ndarray] = []
    for _ in range(int(n_frames)):
        # Velocity: partial decay toward a perturbed heading (smooth turns).
        turn = gen.normal(0.0, 0.15, n)
        ang = np.arctan2(vy, vx) + turn
        sp = np.hypot(vx, vy)
        sp = 0.95 * sp + 0.05 * cfg.speed * gen.lognormal(0.0, 0.2, n)
        vx = sp * np.cos(ang)
        vy = sp * np.sin(ang)
        cx = cx + vx
        cy = cy + vy
        # Respawn wrap-around to hold density constant.
        cx = np.mod(cx, cfg.width)
        cy = np.mod(cy, cfg.height)

        bw = sizes
        bh = sizes * aspect
        boxes = np.stack(
            [cx - bw / 2, cy - bh / 2, cx + bw / 2, cy + bh / 2], axis=1
        )
        # Clip to frame; drop boxes that became degenerate at the border.
        boxes[:, [0, 2]] = np.clip(boxes[:, [0, 2]], 0, cfg.width)
        boxes[:, [1, 3]] = np.clip(boxes[:, [1, 3]], 0, cfg.height)
        keep = (boxes[:, 2] - boxes[:, 0] > 2) & (boxes[:, 3] - boxes[:, 1] > 2)
        frames.append(boxes[keep])

    return SyntheticClip(config=cfg, frames=frames, name=name)


def generate_drifting_clip(
    phases: list[tuple[SceneConfig, int]],
    *,
    rng: RngLike = None,
    name: str = "drifting-clip",
) -> SyntheticClip:
    """A clip whose content characteristics change between phases.

    ``phases`` lists (scene config, n_frames) segments; each segment is
    generated with its own config and the frames concatenated.  Object
    identity does not persist across phase boundaries (a scene cut),
    which is exactly the content drift that invalidates a previously
    profiled configuration and should trigger online re-optimization.

    The returned clip carries the *first* phase's config (callers that
    need per-phase metadata should keep ``phases``).
    """
    if not phases:
        raise ValueError("need at least one phase")
    gens = spawn(rng, len(phases))
    frames: list[np.ndarray] = []
    for (cfg, n), g in zip(phases, gens):
        seg = generate_clip(cfg, n_frames=n, rng=g)
        frames.extend(seg.frames)
    return SyntheticClip(config=phases[0][0], frames=frames, name=name)
