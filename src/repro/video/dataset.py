"""A named library of synthetic clips standing in for MOT16.

MOT16 sequences differ in crowd density, object scale, and camera/object
motion.  :func:`default_library` generates a matching spread of scene
configurations with stable names so experiments can refer to "clips" the
way the paper refers to MOT16-02, MOT16-04, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils import spawn
from repro.utils.rng import RngLike
from repro.video.synthetic import SceneConfig, SyntheticClip, generate_clip

#: Scene configurations mirroring the character of MOT16 sequences:
#: pedestrian-dense, vehicle-sparse, small-object, fast-motion, etc.
_SCENE_SPECS: dict[str, SceneConfig] = {
    "mot16-02-like": SceneConfig(n_objects=18, object_size=75, size_spread=0.55, speed=4.0, texture=1.2),
    "mot16-04-like": SceneConfig(n_objects=28, object_size=60, size_spread=0.6, speed=3.0, texture=1.3),
    "mot16-05-like": SceneConfig(n_objects=9, object_size=110, size_spread=0.45, speed=7.0, texture=0.9),
    "mot16-09-like": SceneConfig(n_objects=12, object_size=95, size_spread=0.5, speed=5.0, texture=1.0),
    "mot16-10-like": SceneConfig(n_objects=14, object_size=85, size_spread=0.5, speed=9.0, texture=1.1),
    "mot16-11-like": SceneConfig(n_objects=10, object_size=100, size_spread=0.4, speed=8.0, texture=0.95),
    "mot16-13-like": SceneConfig(n_objects=16, object_size=70, size_spread=0.6, speed=10.0, texture=1.15),
    "sparse-road-like": SceneConfig(n_objects=6, object_size=140, size_spread=0.35, speed=12.0, texture=0.8),
}


@dataclass
class ClipLibrary:
    """Collection of named clips with dict-like access."""

    clips: dict[str, SyntheticClip] = field(default_factory=dict)

    def __getitem__(self, name: str) -> SyntheticClip:
        return self.clips[name]

    def __len__(self) -> int:
        return len(self.clips)

    def __iter__(self):
        return iter(self.clips.values())

    @property
    def names(self) -> list[str]:
        return list(self.clips.keys())

    def take(self, n: int) -> list[SyntheticClip]:
        """First ``n`` clips, cycling if the library is smaller than ``n``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        items = list(self.clips.values())
        if not items:
            raise ValueError("library is empty")
        return [items[i % len(items)] for i in range(n)]


def default_library(
    *, n_frames: int = 120, rng: RngLike = 0
) -> ClipLibrary:
    """Generate the standard eight-clip library (deterministic by default)."""
    gens = spawn(rng, len(_SCENE_SPECS))
    clips = {
        name: generate_clip(cfg, n_frames=n_frames, rng=g, name=name)
        for (name, cfg), g in zip(_SCENE_SPECS.items(), gens)
    }
    return ClipLibrary(clips=clips)
