"""On-camera adaptive filtering and ROI encoding (§6's extensions).

The paper's related-work section names two data-reduction families it
plans to layer on top of PaMO: *frame filtering* (Reducto/Glimpse-style
— only send frames whose content changed) and *region-of-interest
encoding* (only encode the parts of a frame containing objects).  Both
are implemented here against the synthetic clip substrate:

* :class:`FrameDifferenceFilter` — a cheap camera-side filter that
  scores inter-frame change from box motion/appearance (the proxy a
  pixel-difference filter measures) and skips frames below threshold;
* :func:`roi_bits_per_frame` — encoded size when only object regions
  (padded) are sent at full quality and the background at low quality.

Each reduces the *effective* frame rate / frame size, trading accuracy
for bandwidth exactly like the resolution/fps knobs PaMO already
controls; `effective_stream_load` exposes the combined effect so the
scheduler can reason about filtered streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import box_area, iou_matrix
from repro.utils import check_in_range, check_positive
from repro.video.encoder import EncoderModel
from repro.video.synthetic import SyntheticClip


@dataclass(frozen=True)
class FrameDifferenceFilter:
    """Camera-side change filter.

    A frame is *sent* when its content differs enough from the last
    sent frame: change = 1 − mean best-IoU between the two frames' box
    sets (new/vanished objects count as full change).

    Parameters
    ----------
    threshold:
        Change score in [0, 1] above which a frame is transmitted.
        0 sends everything; 1 sends (almost) nothing after the first.
    """

    threshold: float = 0.2

    def __post_init__(self) -> None:
        check_in_range("threshold", self.threshold, 0.0, 1.0)

    def change_score(self, boxes_prev: np.ndarray, boxes_new: np.ndarray) -> float:
        """Content-change score between two frames' ground-truth boxes."""
        prev = np.asarray(boxes_prev, dtype=float).reshape(-1, 4)
        new = np.asarray(boxes_new, dtype=float).reshape(-1, 4)
        if prev.shape[0] == 0 and new.shape[0] == 0:
            return 0.0
        if prev.shape[0] == 0 or new.shape[0] == 0:
            return 1.0
        iou = iou_matrix(new, prev)
        best = iou.max(axis=1)  # how well each new box is explained
        coverage = float(best.mean())
        # population change also counts
        pop = abs(new.shape[0] - prev.shape[0]) / max(new.shape[0], prev.shape[0])
        return float(np.clip(1.0 - coverage + 0.5 * pop, 0.0, 1.0))

    def select_frames(self, clip: SyntheticClip) -> np.ndarray:
        """Boolean mask of frames that pass the filter (frame 0 always)."""
        mask = np.zeros(clip.n_frames, dtype=bool)
        if clip.n_frames == 0:
            return mask
        mask[0] = True
        last_sent = clip.frames[0]
        for i in range(1, clip.n_frames):
            if self.change_score(last_sent, clip.frames[i]) >= self.threshold:
                mask[i] = True
                last_sent = clip.frames[i]
        return mask

    def effective_fps(self, clip: SyntheticClip) -> float:
        """Average transmitted frame rate after filtering."""
        mask = self.select_frames(clip)
        return float(mask.mean()) * clip.config.native_fps


def roi_bits_per_frame(
    gt_boxes: np.ndarray,
    width: float,
    *,
    encoder: EncoderModel | None = None,
    frame_width: float = 1920.0,
    frame_height: float = 1080.0,
    padding: float = 0.15,
    background_quality: float = 0.08,
    texture: float = 1.0,
) -> float:
    """Encoded bits when only object regions are sent at full quality.

    Object boxes (padded by ``padding`` of their size) are encoded at
    the full per-pixel rate; the background at ``background_quality``
    of it.  Overlap between ROIs is approximated by capping the ROI
    area at the frame area.

    Returns bits for one frame at resolution ``width``.
    """
    check_positive("width", width)
    check_in_range("background_quality", background_quality, 0.0, 1.0)
    check_positive("padding", padding, strict=False)
    enc = encoder or EncoderModel()
    full_bits = enc.bits_per_frame(width, texture=texture)
    frame_area = frame_width * frame_height
    boxes = np.asarray(gt_boxes, dtype=float).reshape(-1, 4)
    if boxes.shape[0] == 0:
        return background_quality * full_bits
    w = boxes[:, 2] - boxes[:, 0]
    h = boxes[:, 3] - boxes[:, 1]
    padded = (w * (1 + 2 * padding)) * (h * (1 + 2 * padding))
    roi_fraction = float(np.clip(padded.sum() / frame_area, 0.0, 1.0))
    return full_bits * (roi_fraction + background_quality * (1.0 - roi_fraction))


def effective_stream_load(
    clip: SyntheticClip,
    width: float,
    fps: float,
    *,
    frame_filter: FrameDifferenceFilter | None = None,
    roi: bool = False,
    encoder: EncoderModel | None = None,
) -> tuple[float, float]:
    """(effective_fps, mean_bits_per_frame) after camera-side reduction.

    The scheduler treats a filtered/ROI stream as a plain stream with
    these effective parameters — the same abstraction the paper uses
    for the resolution/fps knobs.
    """
    check_positive("fps", fps)
    enc = encoder or EncoderModel()
    eff_fps = min(fps, clip.config.native_fps)
    if frame_filter is not None:
        eff_fps = min(eff_fps, frame_filter.effective_fps(clip))
        eff_fps = max(eff_fps, 1e-6)
    if roi:
        bits = float(
            np.mean(
                [
                    roi_bits_per_frame(
                        f,
                        width,
                        encoder=enc,
                        frame_width=clip.config.width,
                        frame_height=clip.config.height,
                        texture=clip.config.texture,
                    )
                    for f in clip.frames
                ]
            )
        )
    else:
        bits = enc.bits_per_frame(width, texture=clip.config.texture)
    return eff_fps, bits
