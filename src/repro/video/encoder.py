"""Frame-size (encoder) model: bits per encoded frame vs configuration.

Matches the paper's θ_bit(r): a quadratic in resolution — encoded frame
size is roughly proportional to pixel count (width × height with fixed
aspect), modulated by content texture and encoder efficiency.  The same
model provides the transmission-energy term γ·θ_bit(r)·ε_bit(s) of Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import check_positive


@dataclass(frozen=True)
class EncoderModel:
    """H.264-like size model.

    ``bits_per_frame(r) = base_bits * texture * (r / ref_width)^2`` with a
    small resolution-independent container overhead.  Inter-frame coding
    gain at higher frame rates (smaller deltas between closer frames) is
    modelled as a mild discount factor on rate, applied in
    :meth:`bitrate`.

    Parameters
    ----------
    base_bits:
        Encoded bits of one reference-resolution frame at texture 1.0
        (default ≈ 62.5 kB ⇒ 15 Mbps at 30 fps, matching Fig. 2's
        bandwidth ceiling of ~15 Mbps at full config).
    ref_width:
        Reference resolution width in pixels.
    overhead_bits:
        Per-frame container/NAL overhead, independent of resolution.
    inter_gain:
        Fractional rate discount at the native rate relative to
        all-intra coding (0 = none).
    """

    base_bits: float = 500_000.0
    ref_width: float = 1920.0
    overhead_bits: float = 2_000.0
    inter_gain: float = 0.15

    def __post_init__(self) -> None:
        check_positive("base_bits", self.base_bits)
        check_positive("ref_width", self.ref_width)
        check_positive("overhead_bits", self.overhead_bits, strict=False)
        check_positive("inter_gain", self.inter_gain, strict=False)
        if self.inter_gain >= 1.0:
            raise ValueError("inter_gain must be < 1")

    def bits_per_frame(self, width: float, *, texture: float = 1.0) -> float:
        """θ_bit(r): encoded size in bits of one frame at width ``width``."""
        check_positive("width", width)
        check_positive("texture", texture)
        scale = (float(width) / self.ref_width) ** 2
        return self.base_bits * texture * scale + self.overhead_bits

    def bitrate(
        self, width: float, fps: float, *, texture: float = 1.0, native_fps: float = 30.0
    ) -> float:
        """Stream bitrate in bits/s: θ_bit(r) · ε_bit(s).

        ε_bit(s) is linear in s with the inter-coding discount growing as
        the sampling rate approaches the native rate.
        """
        check_positive("fps", fps)
        gain = self.inter_gain * min(fps / native_fps, 1.0)
        return self.bits_per_frame(width, texture=texture) * fps * (1.0 - gain)

    def transmission_time(self, width: float, bandwidth_mbps: float, *, texture: float = 1.0) -> float:
        """Serialization delay (s) of one frame over an uplink."""
        check_positive("bandwidth_mbps", bandwidth_mbps)
        return self.bits_per_frame(width, texture=texture) / (bandwidth_mbps * 1e6)
