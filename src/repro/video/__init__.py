"""Video workload substrate.

Replaces the paper's MOT16 clips and smart cameras with procedurally
generated scenes (ground-truth boxes per frame), a frame-size encoder
model, and per-device compute/energy profiles calibrated to the surface
shapes of the paper's Figure 2.
"""

from repro.video.synthetic import (
    SceneConfig,
    SyntheticClip,
    generate_clip,
    generate_drifting_clip,
)
from repro.video.encoder import EncoderModel
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE
from repro.video.dataset import ClipLibrary, default_library
from repro.video.filtering import (
    FrameDifferenceFilter,
    roi_bits_per_frame,
    effective_stream_load,
)

__all__ = [
    "SceneConfig",
    "SyntheticClip",
    "generate_clip",
    "generate_drifting_clip",
    "EncoderModel",
    "DeviceProfile",
    "JETSON_NX_PROFILE",
    "ClipLibrary",
    "default_library",
    "FrameDifferenceFilter",
    "roi_bits_per_frame",
    "effective_stream_load",
]
