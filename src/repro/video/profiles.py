"""Edge-device compute/energy profiles.

A :class:`DeviceProfile` supplies the per-frame resource primitives that
the paper measures on Jetson Xavier NX devices (§5.1) and that the
outcome functions of §3 are built from:

* ``flops_per_frame(r)`` — inference cost in TFLOPs, quadratic in width
  (convolutional backbones scale with pixel count);
* ``processing_time(r)`` — θ_lcom(r), seconds to infer one frame, i.e.
  flops over the device's effective throughput plus a fixed pipeline
  overhead (decode, NMS, memcpy);
* ``energy_per_frame(r)`` — θ_eng(r), joules per inference.

The default profile is calibrated so that the Figure-2 surfaces come out
with the paper's shapes and rough magnitudes: ~40 TFLOPs of aggregate
compute and ≤ ~0.5 s processing latency at (2000 px, 30 fps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import check_positive


@dataclass(frozen=True)
class DeviceProfile:
    """Homogeneous edge-server capability model.

    Parameters
    ----------
    name:
        Human-readable device label.
    effective_tflops:
        Sustained DNN throughput (TFLOP/s) of the accelerator.
    flops_ref:
        Model inference cost in TFLOPs at ``ref_width``.
    ref_width:
        Resolution at which ``flops_ref`` was measured.
    fixed_overhead:
        Resolution-independent per-frame pipeline time (s).
    idle_power:
        Device idle draw in watts.
    compute_power:
        Additional draw while the accelerator is busy (W).
    """

    name: str = "jetson-xavier-nx"
    effective_tflops: float = 6.0
    flops_ref: float = 1.35
    ref_width: float = 1920.0
    fixed_overhead: float = 0.008
    idle_power: float = 5.0
    compute_power: float = 15.0

    def __post_init__(self) -> None:
        check_positive("effective_tflops", self.effective_tflops)
        check_positive("flops_ref", self.flops_ref)
        check_positive("ref_width", self.ref_width)
        check_positive("fixed_overhead", self.fixed_overhead, strict=False)
        check_positive("idle_power", self.idle_power, strict=False)
        check_positive("compute_power", self.compute_power, strict=False)

    def flops_per_frame(self, width: float) -> float:
        """Inference cost (TFLOPs) for one frame at ``width`` pixels wide."""
        check_positive("width", width)
        return self.flops_ref * (float(width) / self.ref_width) ** 2

    def processing_time(self, width: float) -> float:
        """θ_lcom(r): seconds to process one frame (quadratic in width)."""
        return self.flops_per_frame(width) / self.effective_tflops + self.fixed_overhead

    def energy_per_frame(self, width: float) -> float:
        """θ_eng(r): joules consumed inferring one frame."""
        return self.compute_power * self.processing_time(width)

    def utilization(self, width: float, fps: float) -> float:
        """Fraction of a second busy when serving one stream (p·s)."""
        check_positive("fps", fps)
        return self.processing_time(width) * float(fps)


#: Default profile used throughout experiments (≈ Jetson Xavier NX).
JETSON_NX_PROFILE = DeviceProfile()
