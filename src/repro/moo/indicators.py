"""Front-quality indicators: hypervolume, GD, spread.

Hypervolume uses a dimension-sweep for k = 2 and the WFG-style
"contribution of the first point + recursion on the rest" scheme for
k ≥ 3 — exact and fast enough for the front sizes EVA problems produce
(tens of points, k = 5).  All indicators assume minimization.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_array_1d, check_array_2d


def _nondominated(points: np.ndarray) -> np.ndarray:
    keep = np.ones(points.shape[0], dtype=bool)
    for i in range(points.shape[0]):
        if not keep[i]:
            continue
        dominated = np.all(points <= points[i], axis=1) & np.any(
            points < points[i], axis=1
        )
        dominated[i] = False
        if np.any(dominated & keep):
            keep[i] = False
    return keep


def hypervolume(front, reference) -> float:
    """Exact hypervolume dominated by ``front`` w.r.t. ``reference``.

    Points not strictly dominating the reference contribute nothing.
    """
    front = check_array_2d("front", front)
    ref = check_array_1d("reference", reference, min_len=front.shape[1])
    if ref.size != front.shape[1]:
        raise ValueError(
            f"reference dim {ref.size} != front dim {front.shape[1]}"
        )
    pts = front[np.all(front < ref, axis=1)]
    if pts.shape[0] == 0:
        return 0.0
    pts = pts[_nondominated(pts)]
    return _hv(pts, ref)


def _hv(pts: np.ndarray, ref: np.ndarray) -> float:
    k = ref.size
    if pts.shape[0] == 0:
        return 0.0
    if k == 1:
        return float(ref[0] - pts[:, 0].min())
    if k == 2:
        order = np.argsort(pts[:, 0])
        p = pts[order]
        total = 0.0
        y_prev = ref[1]
        for x, y in p:
            if y < y_prev:
                total += (ref[0] - x) * (y_prev - y)
                y_prev = y
        return float(total)
    # WFG exclusive-contribution recursion on the point with the best
    # first coordinate.
    order = np.argsort(pts[:, 0])
    p = pts[order]
    head, tail = p[0], p[1:]
    # volume of head's box minus the part covered by tail (within the box)
    box = float(np.prod(ref - head))
    if tail.shape[0]:
        # Clipping tail points to head's box keeps them inside
        # [head, ref], so `covered` is exactly the tail-dominated volume
        # within the box; hv(all) = exclusive(head) + hv(tail).
        clipped = np.maximum(tail, head)
        covered = _hv(clipped[_nondominated(clipped)], ref)
        exclusive = box - covered
        return exclusive + _hv(tail[_nondominated(tail)], ref)
    return box


def generational_distance(front, true_front) -> float:
    """Mean Euclidean distance from each front point to the true front."""
    front = check_array_2d("front", front)
    true_front = check_array_2d("true_front", true_front)
    if front.shape[1] != true_front.shape[1]:
        raise ValueError("objective dimensions differ")
    d = np.linalg.norm(front[:, None, :] - true_front[None, :, :], axis=2)
    return float(d.min(axis=1).mean())


def spread(front) -> float:
    """Dispersion of a front: std of nearest-neighbor gaps / mean gap.

    0 means perfectly even spacing; larger means clumping.  Fronts with
    fewer than 3 points return 0 (spacing undefined).
    """
    front = check_array_2d("front", front)
    n = front.shape[0]
    if n < 3:
        return 0.0
    d = np.linalg.norm(front[:, None, :] - front[None, :, :], axis=2)
    np.fill_diagonal(d, np.inf)
    nn = d.min(axis=1)
    mean = nn.mean()
    return float(nn.std() / mean) if mean > 0 else 0.0
