"""Scalarization rules turning outcome vectors into single objectives.

All functions assume *minimization* orientation (use
:func:`repro.baselines.search.orient_minimize` for canonical outcome
vectors where accuracy is maximized) and broadcast over leading axes.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_array_1d


def _prep(y, weights) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y, dtype=float)
    w = check_array_1d("weights", weights, min_len=1)
    if y.shape[-1] != w.size:
        raise ValueError(f"outcome dim {y.shape[-1]} != weight dim {w.size}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    return y, w


def weighted_sum(y, weights) -> np.ndarray:
    """Σ w_i y_i — the classical (and §1-criticized) linear scalarization."""
    y, w = _prep(y, weights)
    return (y * w).sum(axis=-1)


def weighted_chebyshev(y, weights, *, reference=None) -> np.ndarray:
    """max_i w_i |y_i − z_i| with reference point z (default 0).

    Unlike the weighted sum, Chebyshev scalarization can reach any
    Pareto-optimal point, including non-convex regions of the front.
    """
    y, w = _prep(y, weights)
    z = np.zeros(w.size) if reference is None else check_array_1d(
        "reference", reference, min_len=w.size
    )
    return (w * np.abs(y - z)).max(axis=-1)


def achievement(y, weights, *, reference=None, rho: float = 1e-4) -> np.ndarray:
    """Wierzbicki achievement scalarizing function.

    Chebyshev term plus a small augmentation ρ·Σ w_i(y_i − z_i) that
    breaks ties between weakly and properly Pareto-optimal points.
    """
    y, w = _prep(y, weights)
    z = np.zeros(w.size) if reference is None else check_array_1d(
        "reference", reference, min_len=w.size
    )
    diff = w * (y - z)
    return diff.max(axis=-1) + rho * diff.sum(axis=-1)
