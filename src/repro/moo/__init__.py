"""Multi-objective optimization substrate.

§2.3/§6 ground PaMO in classical MOO: Pareto dominance, a priori
weighting rules, and evolutionary front generation.  This package
provides the classical toolkit the paper contrasts itself against:

* :mod:`repro.moo.nsga2` — a from-scratch NSGA-II (fast non-dominated
  sorting + crowding distance) over the discrete EVA decision space,
  generating whole Pareto fronts;
* :mod:`repro.moo.indicators` — hypervolume (WFG-style recursive
  inclusion-exclusion for small k, sweep for k=2), generational
  distance, and spread, for comparing front quality;
* :mod:`repro.moo.scalarize` — scalarization rules (weighted sum,
  weighted Chebyshev, achievement function) used by the fixed-weight
  baselines of §1.
"""

from repro.moo.nsga2 import NSGA2, NSGA2Result, fast_non_dominated_sort, crowding_distance
from repro.moo.indicators import hypervolume, generational_distance, spread
from repro.moo.scalarize import weighted_sum, weighted_chebyshev, achievement

__all__ = [
    "NSGA2",
    "NSGA2Result",
    "fast_non_dominated_sort",
    "crowding_distance",
    "hypervolume",
    "generational_distance",
    "spread",
    "weighted_sum",
    "weighted_chebyshev",
    "achievement",
]
