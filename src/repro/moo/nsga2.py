"""NSGA-II over the discrete EVA decision space.

A from-scratch implementation of Deb et al.'s NSGA-II: fast
non-dominated sorting, crowding-distance diversity, binary tournament
selection, uniform knob crossover, and per-gene reset mutation.  Used
to generate whole Pareto fronts of scheduling decisions — the §2.3
picture — and as the substrate behind the pseudo-weight baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.utils import as_generator
from repro.utils.rng import RngLike


def fast_non_dominated_sort(objectives: np.ndarray) -> list[np.ndarray]:
    """Deb's O(MN²) non-dominated sorting (minimization).

    Returns a list of index arrays, front 0 first.
    """
    y = np.asarray(objectives, dtype=float)
    n = y.shape[0]
    # domination matrix: d[i, j] = True iff i dominates j
    leq = np.all(y[:, None, :] <= y[None, :, :], axis=2)
    lt = np.any(y[:, None, :] < y[None, :, :], axis=2)
    dom = leq & lt
    n_dominators = dom.sum(axis=0)  # how many dominate each j
    fronts: list[np.ndarray] = []
    current = np.flatnonzero(n_dominators == 0)
    assigned = np.zeros(n, dtype=bool)
    while current.size:
        fronts.append(current)
        assigned[current] = True
        # remove current front's domination counts
        n_dominators = n_dominators - dom[current].sum(axis=0)
        nxt = np.flatnonzero((n_dominators == 0) & ~assigned)
        current = nxt
    return fronts


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front (minimization)."""
    y = np.asarray(objectives, dtype=float)
    n, k = y.shape
    if n <= 2:
        return np.full(n, np.inf)
    dist = np.zeros(n)
    for j in range(k):
        order = np.argsort(y[:, j], kind="stable")
        span = y[order[-1], j] - y[order[0], j]
        dist[order[0]] = np.inf
        dist[order[-1]] = np.inf
        if span > 0:
            gaps = (y[order[2:], j] - y[order[:-2], j]) / span
            dist[order[1:-1]] += gaps
    return dist


@dataclass
class NSGA2Result:
    """Final population and its first front."""

    population: np.ndarray  # (n, d) decision genomes
    objectives: np.ndarray  # (n, k)
    front_indices: np.ndarray
    n_generations: int

    @property
    def front(self) -> np.ndarray:
        return self.objectives[self.front_indices]

    @property
    def front_decisions(self) -> np.ndarray:
        return self.population[self.front_indices]


class NSGA2:
    """Genetic multi-objective optimizer over discrete knob genomes.

    Parameters
    ----------
    evaluate:
        ``evaluate(genome) -> (k,)`` objective vector (minimized).
    gene_choices:
        Per-gene lists of allowed values; a genome picks one per gene.
    pop_size, n_generations:
        Population size and generation budget.
    p_crossover, p_mutation:
        Uniform-crossover probability and per-gene reset probability.
    """

    def __init__(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        gene_choices: list[np.ndarray],
        *,
        pop_size: int = 40,
        n_generations: int = 30,
        p_crossover: float = 0.9,
        p_mutation: float | None = None,
        rng: RngLike = None,
    ) -> None:
        if pop_size < 4 or pop_size % 2:
            raise ValueError(f"pop_size must be even and >= 4, got {pop_size}")
        if n_generations < 1:
            raise ValueError(f"n_generations must be >= 1, got {n_generations}")
        self.evaluate = evaluate
        self.gene_choices = [np.asarray(g, dtype=float) for g in gene_choices]
        if any(g.size == 0 for g in self.gene_choices):
            raise ValueError("every gene needs at least one choice")
        self.pop_size = int(pop_size)
        self.n_generations = int(n_generations)
        self.p_crossover = float(p_crossover)
        self.p_mutation = (
            1.0 / len(gene_choices) if p_mutation is None else float(p_mutation)
        )
        self._rng = as_generator(rng)

    # ------------------------------------------------------------------
    def _random_genome(self) -> np.ndarray:
        return np.array([self._rng.choice(g) for g in self.gene_choices])

    def _tournament(self, ranks: np.ndarray, crowd: np.ndarray) -> int:
        i, j = self._rng.integers(0, self.pop_size, 2)
        if ranks[i] != ranks[j]:
            return int(i if ranks[i] < ranks[j] else j)
        return int(i if crowd[i] >= crowd[j] else j)

    def _offspring(self, pop: np.ndarray, ranks: np.ndarray, crowd: np.ndarray) -> np.ndarray:
        kids = np.empty_like(pop)
        for c in range(0, self.pop_size, 2):
            a = pop[self._tournament(ranks, crowd)].copy()
            b = pop[self._tournament(ranks, crowd)].copy()
            if self._rng.random() < self.p_crossover:
                mask = self._rng.random(a.size) < 0.5
                a[mask], b[mask] = b[mask], a[mask].copy()
            for child in (a, b):
                for g in np.flatnonzero(self._rng.random(child.size) < self.p_mutation):
                    child[g] = self._rng.choice(self.gene_choices[g])
            kids[c] = a
            kids[c + 1] = b
        return kids

    def _rank_and_crowd(self, objectives: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        fronts = fast_non_dominated_sort(objectives)
        ranks = np.empty(objectives.shape[0], dtype=int)
        crowd = np.empty(objectives.shape[0])
        for r, front in enumerate(fronts):
            ranks[front] = r
            crowd[front] = crowding_distance(objectives[front])
        return ranks, crowd

    def run(self) -> NSGA2Result:
        """Evolve for n_generations; returns the final population/front."""
        pop = np.stack([self._random_genome() for _ in range(self.pop_size)])
        obj = np.stack([self.evaluate(g) for g in pop])
        ranks, crowd = self._rank_and_crowd(obj)

        for _ in range(self.n_generations):
            kids = self._offspring(pop, ranks, crowd)
            kid_obj = np.stack([self.evaluate(g) for g in kids])
            merged = np.vstack([pop, kids])
            merged_obj = np.vstack([obj, kid_obj])
            fronts = fast_non_dominated_sort(merged_obj)
            # Environmental selection: fill by fronts, crowding-truncate last.
            chosen: list[int] = []
            for front in fronts:
                if len(chosen) + front.size <= self.pop_size:
                    chosen.extend(front.tolist())
                else:
                    cd = crowding_distance(merged_obj[front])
                    order = np.argsort(-cd, kind="stable")
                    need = self.pop_size - len(chosen)
                    chosen.extend(front[order[:need]].tolist())
                if len(chosen) >= self.pop_size:
                    break
            idx = np.array(chosen)
            pop = merged[idx]
            obj = merged_obj[idx]
            ranks, crowd = self._rank_and_crowd(obj)

        front0 = np.flatnonzero(ranks == 0)
        return NSGA2Result(
            population=pop,
            objectives=obj,
            front_indices=front0,
            n_generations=self.n_generations,
        )
