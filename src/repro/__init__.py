"""repro — a reproduction of PaMO (ICPP '24).

"The Blind and the Elephant: A Preference-aware Edge Video Analytics
Scheduler for Maximizing System Benefit."

The top level re-exports the pieces a downstream user needs first: the
EVA problem definition and the PaMO scheduler, the decision-maker /
preference layer, and the benefit utilities.  Substrates (simulator,
scheduling theory, GP library, video/detection workloads, baselines,
MOO toolkit) live in their subpackages:

>>> from repro import EVAProblem, PaMO, make_preference, DecisionMaker
>>> problem = EVAProblem(n_streams=4, bandwidths_mbps=[10, 20])
>>> pref = make_preference(problem)
>>> result = PaMO(problem, DecisionMaker(pref, rng=0), rng=0).optimize()
"""

from repro._version import __version__
from repro.core import (
    ConfigSpace,
    DriftDetector,
    EVAProblem,
    OnlineScheduler,
    OptimizationOutcome,
    PaMO,
    PaMOPlus,
    ScheduleDecision,
    make_preference,
    normalized_benefit,
)
from repro.pref import DecisionMaker, LinearL1Preference, PreferenceLearner, PricingPreference

__all__ = [
    "__version__",
    "ConfigSpace",
    "DriftDetector",
    "EVAProblem",
    "OnlineScheduler",
    "OptimizationOutcome",
    "PaMO",
    "PaMOPlus",
    "ScheduleDecision",
    "make_preference",
    "normalized_benefit",
    "DecisionMaker",
    "LinearL1Preference",
    "PreferenceLearner",
    "PricingPreference",
]
