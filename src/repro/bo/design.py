"""Initial experimental designs over box-bounded spaces.

Algorithm 2 line 2 initializes a configuration set X = {x_u}; these
space-filling designs generate it.  Sobol uses scipy's generator (with
graceful handling of non-power-of-two sizes); Latin hypercube is
implemented directly.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from repro.utils import as_generator, check_array_2d
from repro.utils.rng import RngLike


def _check_bounds(bounds) -> np.ndarray:
    b = check_array_2d("bounds", bounds, n_cols=2)
    if np.any(b[:, 0] >= b[:, 1]):
        raise ValueError(f"each bounds row must be (lo, hi) with lo < hi, got {b}")
    return b


def sobol_design(bounds, n: int, *, rng: RngLike = None) -> np.ndarray:
    """Scrambled Sobol points in the box; shape (n, d).

    ``bounds`` is (d, 2) rows of (lo, hi).
    """
    b = _check_bounds(bounds)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    gen = as_generator(rng)
    sampler = qmc.Sobol(d=b.shape[0], scramble=True, seed=gen)
    unit = sampler.random(n)
    return qmc.scale(unit, b[:, 0], b[:, 1])


def latin_hypercube(bounds, n: int, *, rng: RngLike = None) -> np.ndarray:
    """Latin-hypercube sample: one point per axis-stratum; shape (n, d)."""
    b = _check_bounds(bounds)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    gen = as_generator(rng)
    d = b.shape[0]
    u = np.empty((n, d))
    for j in range(d):
        perm = gen.permutation(n)
        u[:, j] = (perm + gen.random(n)) / n
    return b[:, 0] + u * (b[:, 1] - b[:, 0])


def grid_design(bounds, points_per_dim: int) -> np.ndarray:
    """Full factorial grid; shape (points_per_dim^d, d)."""
    b = _check_bounds(bounds)
    if points_per_dim < 2:
        raise ValueError(f"points_per_dim must be >= 2, got {points_per_dim}")
    axes = [np.linspace(lo, hi, points_per_dim) for lo, hi in b]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)
