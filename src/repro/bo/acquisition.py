"""Monte-Carlo batch acquisition functions (qNEI, qEI, qUCB, qSR).

All four variants from the paper's §5.1 baseline list, implemented with
the reparameterized Monte-Carlo estimators of Wilson et al. (2018) /
BoTorch.  An acquisition consumes a *benefit sampler* — a callable
drawing joint posterior samples of the (latent, noisy) benefit
z = g(f(x)) at arbitrary configuration sets — so it is agnostic to how
the outcome and preference models compose underneath.

* **qNEI** (Eq. 12, the paper's choice): improvement over the *noisy*
  best — the incumbent is re-sampled jointly with the candidates each
  draw, which keeps inaccurate early models from locking in a wrong
  incumbent ("anti-noise").
* **qEI**: improvement over a fixed best observed value.
* **qUCB**: E[max_i (μ_i + √(βπ/2)·|z_i − μ_i|)].
* **qSR**: simple regret, E[max_i z_i].
"""

from __future__ import annotations

import abc
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.obs import telemetry
from repro.utils import as_generator, check_positive
from repro.utils.rng import RngLike

#: Joint benefit sampler: (x_points, n_samples, rng) -> (n_samples, n_points)
BenefitSampler = Callable[[np.ndarray, int, np.random.Generator], np.ndarray]


class AcquisitionFunction(abc.ABC):
    """Batch acquisition over a joint benefit sampler."""

    name: str = "base"

    #: MC estimate of the acquisition value of the last selected batch
    #: (None until :meth:`select_batch` runs; telemetry reads this).
    last_batch_value: float | None = None

    #: Vectorized candidate scoring (default).  ``fast=False`` switches
    #: :meth:`select_batch` to the per-candidate reference loop — the
    #: same math on the same shared MC sample matrix, kept as the
    #: escape hatch the equivalence tests compare against.
    fast: bool = True

    def __init__(self, n_samples: int = 64, *, fast: bool = True) -> None:
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        self.n_samples = int(n_samples)
        self.fast = bool(fast)

    @abc.abstractmethod
    def evaluate(
        self,
        sampler: BenefitSampler,
        candidates: np.ndarray,
        *,
        observed_x: np.ndarray | None = None,
        observed_z: np.ndarray | None = None,
        rng: RngLike = None,
    ) -> float:
        """Acquisition value of the candidate *batch* (joint, not summed)."""

    # -- hooks customizing the pooled greedy selection -------------------
    #: join the observed configurations into the joint sample (qNEI)
    _joint_with_observed: bool = False
    #: clip improvements at a per-sample baseline (EI family)
    _clip_at_baseline: bool = False

    def _transform_samples(self, z: np.ndarray) -> np.ndarray:
        """Per-candidate sample transform (identity except qUCB)."""
        return z

    def _baseline_values(
        self, z_obs: np.ndarray | None, observed_z: np.ndarray | None, n_samples: int
    ) -> np.ndarray:
        """Per-sample incumbent values to improve upon."""
        return np.full(n_samples, -np.inf)

    def select_batch(
        self,
        sampler: BenefitSampler,
        pool: np.ndarray,
        batch_size: int,
        *,
        observed_x: np.ndarray | None = None,
        observed_z: np.ndarray | None = None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Greedy batch construction over ONE joint posterior sample set.

        Draws a single joint sample matrix over the whole pool (plus the
        observed points for qNEI), then greedily grows the batch by
        picking, each round, the candidate maximizing the MC estimate of
        the batch acquisition — all candidates compared on common random
        numbers.  One sampler call total, O(pool · batch · samples)
        arithmetic afterwards.  Returns indices into ``pool``.

        With :attr:`fast` (default) every greedy round scores the whole
        pool in one NumPy batch over the shared MC base-sample matrix;
        ``fast=False`` scores candidates one at a time in a Python loop
        (identical math and samples — the slow reference path).
        """
        pool = np.atleast_2d(np.asarray(pool, dtype=float))
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if pool.shape[0] < batch_size:
            raise ValueError(
                f"pool has {pool.shape[0]} points but batch_size={batch_size}"
            )
        gen = as_generator(rng)
        p = pool.shape[0]

        have_obs = (
            self._joint_with_observed
            and observed_x is not None
            and len(observed_x) > 0
        )
        if have_obs:
            joint = np.vstack([pool, np.atleast_2d(np.asarray(observed_x, dtype=float))])
        else:
            joint = pool
        z = sampler(joint, self.n_samples, gen)  # (S, P[+O])
        telemetry.counter("bo.acq_selections")
        telemetry.counter("bo.acq_mc_samples", self.n_samples * joint.shape[0])
        z_pool = self._transform_samples(z[:, :p])
        z_obs = z[:, p:] if have_obs else None
        baseline = self._baseline_values(z_obs, observed_z, self.n_samples)

        clip = self._clip_at_baseline and bool(np.any(np.isfinite(baseline)))
        safe_base = (
            np.where(np.isfinite(baseline), baseline, -np.inf) if clip else None
        )

        chosen: list[int] = []
        current = np.full(self.n_samples, -np.inf)
        mask = np.zeros(p, dtype=bool)
        for _ in range(batch_size):
            if self.fast:
                # one (S, P) batch per greedy round over the shared samples
                cand_max = np.maximum(current[:, None], z_pool)  # (S, P)
                if clip:
                    vals = np.clip(cand_max - safe_base[:, None], 0.0, None)
                    vals = np.where(np.isfinite(vals), vals, cand_max)
                    scores = vals.mean(axis=0)
                else:
                    # no incumbent: pure exploration on the expected max
                    scores = cand_max.mean(axis=0)
                telemetry.counter("acq.vectorized_batches")
            else:
                # reference path: same samples, candidate-at-a-time
                scores = np.empty(p)
                for c in range(p):
                    cand_max_c = np.maximum(current, z_pool[:, c])  # (S,)
                    if clip:
                        vals_c = np.clip(cand_max_c - safe_base, 0.0, None)
                        vals_c = np.where(np.isfinite(vals_c), vals_c, cand_max_c)
                        scores[c] = vals_c.mean()
                    else:
                        scores[c] = cand_max_c.mean()
            scores = np.where(mask, -np.inf, scores)
            best = int(np.argmax(scores))
            mask[best] = True
            chosen.append(best)
            current = np.maximum(current, z_pool[:, best])
            self.last_batch_value = float(scores[best])
        return np.array(chosen, dtype=int)


class QNEI(AcquisitionFunction):
    """Batch *noisy* expected improvement (the paper's acquisition)."""

    name = "qNEI"
    _joint_with_observed = True
    _clip_at_baseline = True

    def _baseline_values(self, z_obs, observed_z, n_samples):
        if z_obs is None or z_obs.shape[1] == 0:
            return np.full(n_samples, -np.inf)
        return z_obs.max(axis=1)

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        gen = as_generator(rng)
        b = candidates.shape[0]
        if observed_x is not None and len(observed_x) > 0:
            observed_x = np.atleast_2d(np.asarray(observed_x, dtype=float))
            joint = np.vstack([candidates, observed_x])
            z = sampler(joint, self.n_samples, gen)
            z_cand = z[:, :b]
            z_obs = z[:, b:]
            baseline = z_obs.max(axis=1)
        else:
            z_cand = sampler(candidates, self.n_samples, gen)
            baseline = np.full(self.n_samples, -np.inf)
        improvement = np.clip(z_cand.max(axis=1) - baseline, 0.0, None)
        finite = np.isfinite(improvement)
        if not np.any(finite):  # no incumbent at all -> pure exploration
            return float(z_cand.max(axis=1).mean())
        return float(improvement[finite].mean())


class QEI(AcquisitionFunction):
    """Batch expected improvement over the best *observed* value."""

    name = "qEI"
    _clip_at_baseline = True

    def _baseline_values(self, z_obs, observed_z, n_samples):
        if observed_z is None or len(observed_z) == 0:
            return np.full(n_samples, -np.inf)
        return np.full(n_samples, float(np.max(observed_z)))

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        gen = as_generator(rng)
        z_cand = sampler(candidates, self.n_samples, gen)
        best_f = -np.inf
        if observed_z is not None and len(observed_z) > 0:
            best_f = float(np.max(observed_z))
        if not np.isfinite(best_f):
            return float(z_cand.max(axis=1).mean())
        return float(np.clip(z_cand.max(axis=1) - best_f, 0.0, None).mean())


class QUCB(AcquisitionFunction):
    """Batch upper confidence bound (MC form of Wilson et al. 2018)."""

    name = "qUCB"

    def __init__(
        self, n_samples: int = 64, beta: float = 2.0, *, fast: bool = True
    ) -> None:
        super().__init__(n_samples, fast=fast)
        self.beta = check_positive("beta", beta)

    def _transform_samples(self, z: np.ndarray) -> np.ndarray:
        mu = z.mean(axis=0, keepdims=True)
        return mu + np.sqrt(self.beta * np.pi / 2.0) * np.abs(z - mu)

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        gen = as_generator(rng)
        z = sampler(candidates, self.n_samples, gen)
        mu = z.mean(axis=0, keepdims=True)
        dev = np.abs(z - mu)
        ucb = mu + np.sqrt(self.beta * np.pi / 2.0) * dev
        return float(ucb.max(axis=1).mean())


class QSR(AcquisitionFunction):
    """Batch simple regret: expected best benefit in the batch."""

    name = "qSR"

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        gen = as_generator(rng)
        z = sampler(candidates, self.n_samples, gen)
        return float(z.max(axis=1).mean())


class ThompsonSampling(AcquisitionFunction):
    """Batch Thompson sampling: each batch slot follows one posterior draw.

    For batch construction, slot j is the argmax of an independent joint
    posterior sample over the pool — the classic parallel-TS scheme.
    ``evaluate`` scores a candidate batch as the expected max (same as
    qSR) since TS has no standalone batch value.
    """

    name = "TS"

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        gen = as_generator(rng)
        z = sampler(candidates, self.n_samples, gen)
        return float(z.max(axis=1).mean())

    def select_batch(
        self,
        sampler,
        pool,
        batch_size,
        *,
        observed_x=None,
        observed_z=None,
        rng=None,
    ) -> np.ndarray:
        pool = np.atleast_2d(np.asarray(pool, dtype=float))
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if pool.shape[0] < batch_size:
            raise ValueError(
                f"pool has {pool.shape[0]} points but batch_size={batch_size}"
            )
        gen = as_generator(rng)
        draws = sampler(pool, max(batch_size, 2), gen)  # (>=b, P)
        telemetry.counter("bo.acq_selections")
        telemetry.counter("bo.acq_mc_samples", max(batch_size, 2) * pool.shape[0])
        chosen: list[int] = []
        for j in range(batch_size):
            order = np.argsort(-draws[j])
            pick = next(int(i) for i in order if int(i) not in chosen)
            chosen.append(pick)
        self.last_batch_value = float(np.mean([draws[j, c] for j, c in enumerate(chosen)]))
        return np.array(chosen, dtype=int)


class RandomDesignAcquisition(AcquisitionFunction):
    """Uniform-random batch selection — the ladder's always-feasible rung.

    Never touches the surrogate, so it cannot fail on an
    ill-conditioned posterior; the BO loop degenerates to random
    search, which is exactly the graceful floor the degradation ladder
    wants.
    """

    name = "random"

    def __init__(self, n_samples: int = 2, *, fast: bool = True) -> None:
        super().__init__(n_samples, fast=fast)

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        return 0.0

    def select_batch(
        self,
        sampler,
        pool,
        batch_size,
        *,
        observed_x=None,
        observed_z=None,
        rng=None,
    ) -> np.ndarray:
        pool = np.atleast_2d(np.asarray(pool, dtype=float))
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if pool.shape[0] < batch_size:
            raise ValueError(
                f"pool has {pool.shape[0]} points but batch_size={batch_size}"
            )
        gen = as_generator(rng)
        telemetry.counter("bo.acq_selections")
        self.last_batch_value = 0.0
        return np.sort(gen.choice(pool.shape[0], size=batch_size, replace=False))


#: Exceptions a degraded model stack may raise during batch selection
#: that the fallback ladder is allowed to absorb.
_RECOVERABLE = (
    np.linalg.LinAlgError,
    FloatingPointError,
    ValueError,
    RuntimeError,
)


class FallbackAcquisition(AcquisitionFunction):
    """Degradation ladder over acquisition rungs (qNEI → qUCB → random).

    Tries each rung's :meth:`select_batch` in order; a rung failing
    with a numerical error (singular posterior, non-finite samples, …)
    drops to the next.  A :class:`RandomDesignAcquisition` terminal
    rung is appended automatically, so selection as a whole cannot
    raise on model pathology — the run degrades instead of dying.
    Fallbacks are counted (``bo.acq_fallbacks``) and logged as
    ``fault.acq_fallback`` events; :attr:`active_rung` names the rung
    that produced the last batch.
    """

    name = "fallback"

    def __init__(self, *rungs: AcquisitionFunction) -> None:
        if not rungs:
            raise ValueError("FallbackAcquisition needs at least one rung")
        ladder = list(rungs)
        if not isinstance(ladder[-1], RandomDesignAcquisition):
            ladder.append(RandomDesignAcquisition())
        self.rungs: tuple[AcquisitionFunction, ...] = tuple(ladder)
        self.n_samples = max(getattr(r, "n_samples", 2) for r in self.rungs)
        self.active_rung: str = self.rungs[0].name

    def evaluate(self, sampler, candidates, *, observed_x=None, observed_z=None, rng=None):
        for rung in self.rungs:
            try:
                return rung.evaluate(
                    sampler,
                    candidates,
                    observed_x=observed_x,
                    observed_z=observed_z,
                    rng=rng,
                )
            except _RECOVERABLE:
                continue
        return 0.0

    def select_batch(
        self,
        sampler,
        pool,
        batch_size,
        *,
        observed_x=None,
        observed_z=None,
        rng=None,
    ) -> np.ndarray:
        last_exc: BaseException | None = None
        for i, rung in enumerate(self.rungs):
            try:
                idx = rung.select_batch(
                    sampler,
                    pool,
                    batch_size,
                    observed_x=observed_x,
                    observed_z=observed_z,
                    rng=rng,
                )
            except _RECOVERABLE as exc:
                last_exc = exc
                telemetry.counter("bo.acq_fallbacks")
                telemetry.event(
                    "fault.acq_fallback",
                    failed_rung=rung.name,
                    error=f"{type(exc).__name__}: {exc}",
                    next_rung=(
                        self.rungs[i + 1].name if i + 1 < len(self.rungs) else None
                    ),
                )
                continue
            self.active_rung = rung.name
            self.last_batch_value = rung.last_batch_value
            return idx
        # The random terminal rung only raises on caller errors
        # (bad batch_size / empty pool) — those must surface.
        assert last_exc is not None
        raise last_exc


def default_ladder(
    primary: AcquisitionFunction, *, n_samples: int | None = None
) -> FallbackAcquisition:
    """The paper pipeline's standard ladder: primary → qUCB → random.

    Idempotent: a primary that is already a ladder comes back as-is.
    """
    if isinstance(primary, FallbackAcquisition):
        return primary
    n = n_samples or getattr(primary, "n_samples", 32)
    rungs = [primary]
    if not isinstance(primary, QUCB):
        rungs.append(QUCB(n_samples=n))
    return FallbackAcquisition(*rungs)


_REGISTRY = {
    "qnei": QNEI,
    "qei": QEI,
    "qucb": QUCB,
    "qsr": QSR,
    "ts": ThompsonSampling,
    "random": RandomDesignAcquisition,
}


def make_acquisition(name: str, *, n_samples: int = 64, **kwargs) -> AcquisitionFunction:
    """Factory by name ('qNEI' | 'qEI' | 'qUCB' | 'qSR', case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown acquisition {name!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[key](n_samples=n_samples, **kwargs)
