"""EUBO — Expected Utility of the Best Option (Eq. 11, Lin et al. '22).

For a candidate comparison pair (y₁, y₂), EUBO(y₁, y₂) =
E[max(g(y₁), g(y₂))] under the current preference-GP posterior.  With
(g₁, g₂) jointly Gaussian this has the classical closed form
(Clark 1961):

    E[max] = μ₁ Φ(δ/θ) + μ₂ Φ(−δ/θ) + θ φ(δ/θ),
    δ = μ₁ − μ₂,  θ = √(σ₁² + σ₂² − 2σ₁₂)

so pair selection needs no Monte Carlo at all.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.stats import norm

from repro.gp.preference import PreferenceGP
from repro.obs import telemetry
from repro.utils import as_generator, check_array_2d
from repro.utils.rng import RngLike


def eubo_closed_form(
    mu: np.ndarray, cov: np.ndarray
) -> float:
    """E[max(g1, g2)] for a bivariate normal (mu (2,), cov (2,2))."""
    mu = np.asarray(mu, dtype=float)
    cov = np.asarray(cov, dtype=float)
    if mu.shape != (2,) or cov.shape != (2, 2):
        raise ValueError(f"need bivariate inputs, got mu {mu.shape}, cov {cov.shape}")
    delta = mu[0] - mu[1]
    theta2 = cov[0, 0] + cov[1, 1] - 2.0 * cov[0, 1]
    if theta2 <= 1e-16:
        return float(max(mu[0], mu[1]))
    theta = np.sqrt(theta2)
    z = delta / theta
    return float(mu[0] * norm.cdf(z) + mu[1] * norm.cdf(-z) + theta * norm.pdf(z))


def eubo_batch(
    mu1: np.ndarray,
    mu2: np.ndarray,
    var1: np.ndarray,
    var2: np.ndarray,
    cov12: np.ndarray,
) -> np.ndarray:
    """Vectorized Clark (1961) E[max(g1, g2)] over many bivariate normals.

    All inputs broadcast elementwise; degenerate pairs (θ² ≈ 0) reduce
    to max(μ₁, μ₂), matching :func:`eubo_closed_form`.
    """
    mu1 = np.asarray(mu1, dtype=float)
    mu2 = np.asarray(mu2, dtype=float)
    delta = mu1 - mu2
    theta2 = (
        np.asarray(var1, dtype=float)
        + np.asarray(var2, dtype=float)
        - 2.0 * np.asarray(cov12, dtype=float)
    )
    degenerate = theta2 <= 1e-16
    theta = np.sqrt(np.where(degenerate, 1.0, theta2))
    z = delta / theta
    vals = mu1 * norm.cdf(z) + mu2 * norm.cdf(-z) + theta * norm.pdf(z)
    return np.where(degenerate, np.maximum(mu1, mu2), vals)


def eubo_for_pairs(
    model: PreferenceGP,
    items: np.ndarray,
    pairs: Sequence[tuple[int, int]],
    *,
    fast: bool = True,
) -> np.ndarray:
    """EUBO value of each candidate pair over ``items``.

    Computes one joint posterior over all items, then reads the
    bivariate marginals per pair.  With ``fast`` (default) all pairs
    are scored in one vectorized :func:`eubo_batch` call;
    ``fast=False`` loops the scalar closed form per pair (the slow
    reference path, numerically identical).
    """
    items = check_array_2d("items", items)
    mean, cov = model.predict(items, return_cov=True)
    if not fast:
        out = np.empty(len(pairs))
        for v, (i, j) in enumerate(pairs):
            mu = np.array([mean[i], mean[j]])
            c = np.array([[cov[i, i], cov[i, j]], [cov[j, i], cov[j, j]]])
            out[v] = eubo_closed_form(mu, c)
        return out
    if not pairs:
        return np.empty(0)
    idx = np.asarray(pairs, dtype=int)
    i, j = idx[:, 0], idx[:, 1]
    telemetry.counter("acq.eubo_vectorized_pairs", idx.shape[0])
    return eubo_batch(mean[i], mean[j], cov[i, i], cov[j, j], cov[i, j])


def select_eubo_pair(
    model: PreferenceGP,
    items: np.ndarray,
    *,
    n_candidates: int = 200,
    rng: RngLike = None,
    exclude: set[tuple[int, int]] | None = None,
    return_value: bool = False,
) -> tuple[int, int] | tuple[int, int, float]:
    """argmax-EUBO pair among random candidate pairs of ``items``.

    ``exclude`` skips already-asked (unordered) pairs.  With
    ``return_value=True`` the winning pair's EUBO value is appended to
    the returned tuple (diagnostics record it per query).  Raises
    ``ValueError`` when fewer than two items exist or all pairs are
    excluded.
    """
    items = check_array_2d("items", items)
    n = items.shape[0]
    if n < 2:
        raise ValueError("need at least two items to form a pair")
    gen = as_generator(rng)
    excl = exclude or set()

    all_pairs: list[tuple[int, int]] = []
    max_pairs = n * (n - 1) // 2
    if max_pairs <= n_candidates:
        all_pairs = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if (i, j) not in excl and (j, i) not in excl
        ]
    else:
        seen: set[tuple[int, int]] = set()
        attempts = 0
        while len(all_pairs) < n_candidates and attempts < 50 * n_candidates:
            i, j = gen.choice(n, 2, replace=False)
            key = (min(i, j), max(i, j))
            attempts += 1
            if key in seen or key in excl:
                continue
            seen.add(key)
            all_pairs.append((int(key[0]), int(key[1])))
    if not all_pairs:
        raise ValueError("no candidate pairs available (all excluded)")

    vals = eubo_for_pairs(model, items, all_pairs)
    best = int(np.argmax(vals))
    if return_value:
        i, j = all_pairs[best]
        return i, j, float(vals[best])
    return all_pairs[best]
