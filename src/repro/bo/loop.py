"""The revised Bayesian-optimization driver (Algorithm 2, phase 3).

``BOLoop`` is model-agnostic: it needs a *surrogate adapter* exposing a
joint benefit sampler and an update hook, an *observe* callable that
runs a configuration batch through the real system (profiling +
Algorithm 1, line 16), and a *candidate* callable producing the pool
the acquisition searches over each iteration.  Convergence follows the
paper: stop when the best benefit of an iteration moves less than δ,
or after ``max_iters`` iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.bo.acquisition import AcquisitionFunction, QNEI
from repro.obs import telemetry
from repro.utils import as_generator, check_positive
from repro.utils.compat import resolve_deprecated
from repro.utils.rng import RngLike


class SurrogateAdapter(Protocol):
    """What BOLoop needs from the model stack."""

    def sample_benefit(
        self, x: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Joint posterior benefit samples, shape (n_samples, len(x))."""
        ...

    def benefit_mean(self, x: np.ndarray) -> np.ndarray:
        """Posterior-mean benefit at configurations ``x``."""
        ...

    def update(self, x: np.ndarray, observations) -> None:
        """Condition the models on newly observed configurations."""
        ...


@dataclass
class BOResult:
    """Outcome of one BO run."""

    best_x: np.ndarray
    best_z: float
    n_iterations: int
    converged: bool
    history_z: list[float] = field(default_factory=list)  # best-per-iteration
    observed_x: np.ndarray | None = None
    observed_z: np.ndarray | None = None


@dataclass
class BOLoopState:
    """Resumable snapshot of an in-flight BO run.

    Captured at the end of a completed iteration (see
    ``checkpoint_every``); feeding it back through ``run(resume=...)``
    continues from ``next_iteration`` exactly where the interrupted
    run left off.  The model and RNG state live *outside* this object
    — callers (:mod:`repro.resilience.checkpoint`) serialize the whole
    scheduler alongside it so the continuation is bit-identical.
    """

    observed_x: np.ndarray | None
    observed_z: np.ndarray | None
    history: list[float]
    z_prev: float | None
    next_iteration: int


class BOLoop:
    """Iterate: acquire batch → observe → update → check convergence.

    Parameters
    ----------
    adapter:
        Surrogate stack (outcome GPs composed with the preference GP).
    observe:
        ``observe(x_batch) -> observations`` — runs the real system;
        whatever it returns is passed to ``adapter.update`` and must
        also be convertible to benefit values via ``benefit_of``.
    benefit_of:
        ``benefit_of(observations) -> (b,) array`` of benefit values z
        (Algorithm 2 line 17 computes z = ĝ(y) because the true
        benefit is never observable).
    candidates:
        ``candidates(rng) -> (n, d)`` pool for the acquisition search.
    acquisition:
        Batch acquisition (default qNEI).
    batch_size:
        b — candidates recommended per iteration.
    delta:
        Convergence threshold δ on the change of the iteration-best z.
    n_iterations:
        Hard iteration cap (MaxIterNum); ``max_iters`` is the deprecated
        alias.
    on_iteration:
        Optional diagnostics hook ``on_iteration(n_iter)`` invoked after
        each model update — but only while telemetry is enabled, so
        callers can emit model-health events (GP hyperparameters,
        preference fidelity, …) without adding disabled-path cost.
    checkpoint_every, on_checkpoint:
        Every ``checkpoint_every`` completed iterations (0 disables)
        the loop calls ``on_checkpoint(state)`` with a
        :class:`BOLoopState` snapshot; pass the state back through
        ``run(resume=...)`` to continue an interrupted run.
    """

    def __init__(
        self,
        adapter: SurrogateAdapter,
        observe: Callable[[np.ndarray], object],
        benefit_of: Callable[[object], np.ndarray],
        candidates: Callable[[np.random.Generator], np.ndarray],
        *,
        acquisition: AcquisitionFunction | None = None,
        batch_size: int = 4,
        delta: float = 0.02,
        n_iterations: int | None = None,
        max_iters: int | None = None,
        on_iteration: Callable[[int], None] | None = None,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[["BOLoopState"], None] | None = None,
        rng: RngLike = None,
    ) -> None:
        n_iterations = resolve_deprecated(
            "BOLoop", "max_iters", max_iters, "n_iterations", n_iterations,
            default=20,
        )
        self.adapter = adapter
        self.observe = observe
        self.benefit_of = benefit_of
        self.candidates = candidates
        self.acquisition = acquisition or QNEI()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.delta = check_positive("delta", delta)
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = int(n_iterations)
        self.on_iteration = on_iteration
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.checkpoint_every = int(checkpoint_every)
        self.on_checkpoint = on_checkpoint
        self._rng = as_generator(rng)

    @property
    def max_iters(self) -> int:
        """Deprecated alias of :attr:`n_iterations`."""
        return self.n_iterations

    def run(
        self,
        *,
        initial_x: np.ndarray | None = None,
        initial_z: np.ndarray | None = None,
        resume: BOLoopState | None = None,
    ) -> BOResult:
        """Run to convergence; optional warm-start observations.

        ``resume`` continues an interrupted run from a
        :class:`BOLoopState` checkpoint (mutually exclusive with
        ``initial_x``/``initial_z`` — the state already carries the
        observations).
        """
        if resume is not None:
            if initial_x is not None or initial_z is not None:
                raise ValueError("pass either resume or initial_x/initial_z, not both")
            observed_x = (
                None if resume.observed_x is None
                else np.atleast_2d(np.asarray(resume.observed_x, dtype=float))
            )
            observed_z = (
                None if resume.observed_z is None
                else np.asarray(resume.observed_z, dtype=float)
            )
            history = list(resume.history)
            z_prev = resume.z_prev
            start_iteration = max(1, int(resume.next_iteration))
            telemetry.event(
                "bo.resume",
                next_iteration=start_iteration,
                n_observed=0 if observed_x is None else int(observed_x.shape[0]),
            )
        else:
            observed_x = (
                np.atleast_2d(np.asarray(initial_x, dtype=float))
                if initial_x is not None and len(initial_x) > 0
                else None
            )
            observed_z = (
                np.asarray(initial_z, dtype=float)
                if initial_z is not None and len(initial_z) > 0
                else None
            )
            if (observed_x is None) != (observed_z is None):
                raise ValueError("initial_x and initial_z must be given together")
            if observed_x is not None and observed_x.shape[0] != observed_z.shape[0]:
                raise ValueError("initial_x and initial_z lengths differ")
            history = []
            z_prev = None
            start_iteration = 1

        converged = False
        n_iter = start_iteration - 1

        for n_iter in range(start_iteration, self.n_iterations + 1):
            t_iter = time.perf_counter()
            with telemetry.span("bo.candidates"):
                pool = np.atleast_2d(self.candidates(self._rng))
            t0 = time.perf_counter()
            with telemetry.span("bo.select_batch"):
                idx = self.acquisition.select_batch(
                    self.adapter.sample_benefit,
                    pool,
                    min(self.batch_size, pool.shape[0]),
                    observed_x=observed_x,
                    observed_z=observed_z,
                    rng=self._rng,
                )
            t_select = time.perf_counter() - t0
            x_batch = pool[idx]
            t0 = time.perf_counter()
            with telemetry.span("bo.observe"):
                obs = self.observe(x_batch)
                z_batch = np.asarray(self.benefit_of(obs), dtype=float)
            t_observe = time.perf_counter() - t0
            if z_batch.shape[0] != x_batch.shape[0]:
                raise ValueError(
                    f"benefit_of returned {z_batch.shape[0]} values for "
                    f"{x_batch.shape[0]} configurations"
                )
            t0 = time.perf_counter()
            with telemetry.span("bo.model_update"):
                self.adapter.update(x_batch, obs)
            t_update = time.perf_counter() - t0

            observed_x = (
                x_batch if observed_x is None else np.vstack([observed_x, x_batch])
            )
            observed_z = (
                z_batch if observed_z is None else np.concatenate([observed_z, z_batch])
            )

            z_best = float(np.max(z_batch))
            history.append(z_best)
            if self.on_iteration is not None and telemetry.enabled:
                with telemetry.span("bo.diagnostics"):
                    self.on_iteration(n_iter)
            if telemetry.enabled:
                telemetry.event(
                    "bo.iteration",
                    iteration=n_iter,
                    pool_size=int(pool.shape[0]),
                    batch_size=int(x_batch.shape[0]),
                    batch_benefit=z_best,
                    batch_benefits=[float(z) for z in z_batch],
                    incumbent_benefit=float(np.max(observed_z)),
                    acquisition_value=getattr(
                        self.acquisition, "last_batch_value", None
                    ),
                    t_select_s=t_select,
                    t_observe_s=t_observe,
                    t_model_update_s=t_update,
                    t_iteration_s=time.perf_counter() - t_iter,
                    counters=telemetry.report()["counters"],
                )
            if z_prev is not None and abs(z_best - z_prev) < self.delta:
                converged = True
                break
            z_prev = z_best
            if (
                self.on_checkpoint is not None
                and self.checkpoint_every > 0
                and n_iter % self.checkpoint_every == 0
                and n_iter < self.n_iterations
            ):
                with telemetry.span("bo.checkpoint"):
                    self.on_checkpoint(
                        BOLoopState(
                            observed_x=observed_x,
                            observed_z=observed_z,
                            history=list(history),
                            z_prev=z_prev,
                            next_iteration=n_iter + 1,
                        )
                    )

        assert observed_x is not None and observed_z is not None
        best = int(np.argmax(observed_z))
        return BOResult(
            best_x=observed_x[best].copy(),
            best_z=float(observed_z[best]),
            n_iterations=n_iter,
            converged=converged,
            history_z=history,
            observed_x=observed_x,
            observed_z=observed_z,
        )
