"""Bayesian-optimization substrate (replaces BoTorch's acquisition zoo).

Provides the initial designs, the closed-form EUBO pair-selection
criterion (Eq. 11), and the Monte-Carlo batch acquisition functions of
§5.1 — qNEI (the paper's choice), qEI, qUCB, and qSR — plus the outer
BO driver of Algorithm 2.
"""

from repro.bo.design import sobol_design, latin_hypercube, grid_design
from repro.bo.eubo import eubo_batch, eubo_closed_form, eubo_for_pairs, select_eubo_pair
from repro.bo.acquisition import (
    AcquisitionFunction,
    QNEI,
    QEI,
    QUCB,
    QSR,
    ThompsonSampling,
    make_acquisition,
)
from repro.bo.loop import BOLoop, BOResult

__all__ = [
    "sobol_design",
    "latin_hypercube",
    "grid_design",
    "eubo_batch",
    "eubo_closed_form",
    "eubo_for_pairs",
    "select_eubo_pair",
    "AcquisitionFunction",
    "QNEI",
    "QEI",
    "QUCB",
    "QSR",
    "ThompsonSampling",
    "make_acquisition",
    "BOLoop",
    "BOResult",
]
