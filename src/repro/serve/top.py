"""``repro serve top`` — a terminal dashboard for a live serve run.

Polls the JSON ``/varz`` endpoint that ``repro serve run
--metrics-port`` exposes (see :mod:`repro.obs.exposition`) and redraws
an ANSI dashboard: health state, epoch/stream/server gauges, windowed
decision-latency percentiles, cache-hit ratio, the benefit trajectory
as a sparkline, and any active alerts.  Everything is stdlib —
:mod:`urllib.request` for the poll, raw ANSI escapes for the redraw —
so it runs over ssh on an edge box with nothing installed.

The renderer (:func:`render_top`) is a pure ``dict -> str`` function;
the tests feed it canned ``/varz`` documents and assert on the text,
and ``--iterations N`` makes the loop itself testable (poll N times,
then exit instead of looping until Ctrl-C).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["fetch_varz", "render_top", "run_top", "sparkline"]

_SPARK = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[2J\x1b[H"
_STATUS_COLOR = {"ok": "\x1b[32m", "degraded": "\x1b[33m", "unhealthy": "\x1b[31m"}
_RESET = "\x1b[0m"


def fetch_varz(url: str, *, timeout: float = 2.0) -> dict[str, Any]:
    """GET ``{url}/varz`` and parse the JSON document."""
    with urllib.request.urlopen(f"{url.rstrip('/')}/varz", timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def sparkline(values: list[float], width: int = 40) -> str:
    """Unicode block sparkline of the last ``width`` values."""
    vals = [float(v) for v in values if v is not None][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK[3] * len(vals)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in vals
    )


def _ms(v: float | None) -> str:
    return "-" if v is None else f"{float(v) * 1e3:.2f}ms"


def _metric(varz: dict, name: str, field: str = "value"):
    doc = varz.get("metrics", {}).get(name)
    return None if doc is None else doc.get(field)


def render_top(
    varz: dict[str, Any],
    *,
    width: int = 78,
    color: bool = True,
    benefit_history: list[float] | None = None,
) -> str:
    """Render one ``/varz`` document as a dashboard frame."""
    health = varz.get("health", {})
    status = health.get("status", "?")
    service = varz.get("service", {})
    snap = service.get("snapshot") or health.get("snapshot") or {}
    summary = service.get("summary", {})

    tint = _STATUS_COLOR.get(status, "") if color else ""
    reset = _RESET if color and tint else ""
    bar = "─" * width
    lines = [
        f"repro serve top · health {tint}{status.upper()}{reset}"
        f" · epoch {snap.get('epoch', '-')}"
        f" · window {snap.get('window', 0)} epochs",
        bar,
        f"streams {snap.get('n_streams', '-'):>6}"
        f"   servers up {snap.get('n_alive_servers', '-'):>3}"
        f"   queue depth {snap.get('queue_depth', '-'):>5}"
        f"   full solves {summary.get('full_solves', '-'):>4}",
        f"decision latency  p50 {_ms(snap.get('decision_p50_s')):>9}"
        f"   p95 {_ms(snap.get('decision_p95_s')):>9}"
        f"   p99 {_ms(snap.get('decision_p99_s')):>9}"
        f"   max {_ms(snap.get('decision_max_s')):>9}",
        f"cache hit ratio   {float(snap.get('cache_hit_ratio') or 0.0):8.1%}"
        f"   epochs {summary.get('epochs', '-'):>6}"
        f"   rejects {summary.get('rejected', '-'):>5}"
        f"   evicted {summary.get('evicted', '-'):>5}",
    ]
    mode = summary.get("mode")
    if mode is not None and (
        mode != "normal"
        or summary.get("shed")
        or summary.get("breaker_state") not in (None, "closed")
        or summary.get("brownout_epochs")
    ):
        warn = _STATUS_COLOR.get("degraded", "") if color else ""
        wreset = _RESET if color and warn else ""
        shown = f"{warn}{mode.upper()}{wreset}" if mode != "normal" else mode
        lines.append(
            f"mode {shown:>13}"
            f"   shed {summary.get('shed', 0):>6}"
            f"   brownout epochs {summary.get('brownout_epochs', 0):>4}"
            f"   breaker {summary.get('breaker_state') or 'off'}"
        )
    benefit = snap.get("benefit")
    if benefit is not None:
        drop = snap.get("benefit_drop_ratio") or 0.0
        lines.append(
            f"benefit {float(benefit):+10.4f}"
            f"   baseline {float(snap.get('benefit_baseline') or 0.0):+10.4f}"
            f"   drop {float(drop):6.1%}"
        )
    if benefit_history:
        lines.append(f"benefit trend     {sparkline(benefit_history, width - 20)}")
    rate = _metric(varz, "repro_serve_decision_latency_seconds", "window")
    if isinstance(rate, dict):
        lines.append(f"epoch rate        {rate.get('rate_per_s', 0.0):8.2f}/s")
    alerts = health.get("alerts") or []
    lines.append(bar)
    if alerts:
        lines.append(f"ALERTS ({len(alerts)} firing)")
        for a in alerts:
            lines.append(
                f"  [{a.get('severity', '?'):>9}] {a.get('rule')}:"
                f" {a.get('metric')}={a.get('value'):.4g}"
                f" (threshold {a.get('threshold'):.4g},"
                f" since epoch {a.get('since_epoch')})"
            )
    else:
        lines.append("no alerts firing")
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval_s: float = 1.0,
    iterations: int = 0,
    color: bool = True,
    clear: bool = True,
    stream=None,
) -> int:
    """Poll-and-redraw loop; returns a process exit code.

    ``iterations=0`` loops until Ctrl-C (the interactive default);
    ``iterations=N`` draws N frames then exits 0 — the mode tests and
    scripts use.  A run that ends (connection refused) exits 0 after at
    least one successful frame, 1 if the endpoint was never reachable.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    benefit_history: list[float] = []
    try:
        while True:
            try:
                varz = fetch_varz(url)
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                if frames:
                    print(f"serve endpoint gone ({exc}); exiting", file=out)
                    return 0
                print(f"error: cannot reach {url}/varz: {exc}", file=out)
                return 1
            snap = (varz.get("service") or {}).get("snapshot") or {}
            if snap.get("benefit") is not None:
                benefit_history.append(float(snap["benefit"]))
            frame = render_top(
                varz, color=color, benefit_history=benefit_history
            )
            if clear:
                out.write(_CLEAR)
            out.write(frame + "\n")
            out.flush()
            frames += 1
            if iterations and frames >= iterations:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
