"""Write-ahead event journal and crash recovery for the serve loop.

Periodic checkpoints alone lose everything since the last pickle: a
SIGKILL between checkpoints drops queued events and the decisions made
from them.  The WAL closes that window with the classic database
recipe, adapted to the serve loop's determinism contract:

* every submitted :class:`~repro.serve.events.ServeEvent` is appended
  (with a monotone sequence number) *before* it enters the queue —
  write-ahead, so anything the service ever saw is on disk;
* every epoch decision appends a fingerprint record (epoch, operating
  mode, full-solve flag, and the decision's
  :meth:`~repro.serve.service.ServeDecision.sig_hash`) — the evidence
  recovery checks itself against;
* appends are buffered and fsynced in batches (``sync_every``), which
  is what keeps the journal under the <2% epoch-cost budget; a crash
  can lose at most the unsynced tail, and the torn-tail-tolerant
  reader simply stops there.

Recovery (:func:`recover_service`) = load the last checkpoint if one
exists (else rebuild the service from the WAL's meta record), replay
the event suffix with ``seq`` greater than the checkpoint's high-water
mark, and pin each journaled epoch's operating mode so the replay
makes the *recorded* decisions even where the original transition was
triggered by wall-clock latency.  :meth:`RecoveryInfo.verify` then
proves bit-identity by re-hashing every replayed decision against the
journal.

The journal is JSON-lines with three record types::

    {"t": "meta", "version": 1, "spec": {...}}   # line 1: how to rebuild
    {"t": "ev", "seq": 7, "e": {...}}            # one submitted event
    {"t": "ep", "epoch": 3, "mode": "normal", "full": false, "sig": "..."}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs import telemetry
from repro.serve.events import ServeEvent

__all__ = [
    "WAL_VERSION",
    "WriteAheadLog",
    "WalContents",
    "RecoveryInfo",
    "read_wal",
    "service_spec",
    "build_service",
    "recover_service",
]

WAL_VERSION = 1

#: Default appends between fsyncs.  One epoch typically appends a
#: handful of records, so this syncs every ~50-100 epochs; crash loses
#: at most that tail (recovery replays a correspondingly shorter
#: suffix — correctness never depends on the sync cadence).
DEFAULT_SYNC_EVERY = 256


class WriteAheadLog:
    """Append-only JSONL journal with batched fsync.

    Use :meth:`create` for a fresh run (truncates, writes the meta
    record, syncs) and :meth:`open` to continue an existing journal.
    The handle is transient — checkpoints drop it (like the metrics
    registry) and the CLI re-opens by path.
    """

    def __init__(self, path, fh, *, sync_every: int = DEFAULT_SYNC_EVERY) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.path = Path(path)
        self._fh = fh
        self.sync_every = int(sync_every)
        self._unsynced = 0
        self._pending: list[str] = []
        self.appends = 0
        self.syncs = 0

    @classmethod
    def create(
        cls, path, spec: Mapping[str, Any], *, sync_every: int = DEFAULT_SYNC_EVERY
    ) -> "WriteAheadLog":
        """Start a fresh journal: truncate, write meta, fsync."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(path, "w", encoding="utf-8")
        wal = cls(path, fh, sync_every=sync_every)
        wal._append({"t": "meta", "version": WAL_VERSION, "spec": dict(spec)})
        wal.sync()
        return wal

    @classmethod
    def open(
        cls, path, *, sync_every: int = DEFAULT_SYNC_EVERY
    ) -> "WriteAheadLog":
        """Append to an existing journal (resumed runs)."""
        fh = open(path, "a", encoding="utf-8")
        return cls(path, fh, sync_every=sync_every)

    def _append(self, record: dict) -> None:
        self._append_line(json.dumps(record, separators=(",", ":")))

    def _append_line(self, line: str) -> None:
        # Records accumulate in a Python list until the sync boundary —
        # same durability as writing each one (either way nothing is
        # crash-safe before the fsync), one write syscall per batch.
        self._pending.append(line)
        self.appends += 1
        self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.sync()

    def append_event(self, seq: int, event: ServeEvent) -> None:
        # Formatted by hand rather than json.dumps — this is the
        # per-event hot path and the fields need no escaping (kinds
        # come from a fixed vocabulary, Python float repr is valid
        # JSON for the finite values the event validator admits).
        value = (
            "" if event.value is None else f',"value":{float(event.value)!r}'
        )
        self._append_line(
            f'{{"t":"ev","seq":{int(seq)},"e":{{"time":{float(event.time)!r},'
            f'"kind":"{event.kind}","target":{int(event.target)}{value}}}}}'
        )

    def append_epoch(self, *, epoch: int, mode: str, full: bool, sig: str) -> None:
        self._append_line(
            f'{{"t":"ep","epoch":{int(epoch)},"mode":"{mode}",'
            f'"full":{"true" if full else "false"},"sig":"{sig}"}}'
        )

    def sync(self) -> None:
        """Flush buffered appends and fsync to stable storage."""
        if self._fh.closed:
            return
        if self._pending:
            self._fh.write("\n".join(self._pending) + "\n")
            self._pending.clear()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if self._unsynced:
            telemetry.counter("wal.syncs")
            self.syncs += 1
        self._unsynced = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class WalContents:
    """Parsed journal: the meta spec, event suffix, and epoch records."""

    spec: dict[str, Any]
    events: list[tuple[int, ServeEvent]] = field(default_factory=list)
    #: ``epoch -> (mode, full_solve, sig_hash)`` in journal order.
    epochs: dict[int, tuple[str, bool, str]] = field(default_factory=dict)
    #: Lines dropped at the tail (torn write or seq gap), for reporting.
    torn_lines: int = 0

    @property
    def last_seq(self) -> int:
        return self.events[-1][0] if self.events else 0


def read_wal(path) -> WalContents:
    """Parse a journal, tolerating a torn tail.

    A crash mid-append can leave a truncated final line (or, with
    batched fsync, lose the unsynced suffix entirely); parsing stops
    at the first unparseable line.  A gap in event sequence numbers
    also stops the read — everything after a hole is unreplayable,
    since exactly-once replay needs the contiguous prefix.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path} is empty — not a WAL")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} has no meta record: {exc}") from exc
    if meta.get("t") != "meta":
        raise ValueError(
            f"{path} first record is {meta.get('t')!r}, expected 'meta'"
        )
    version = int(meta.get("version", 0))
    if version != WAL_VERSION:
        raise ValueError(
            f"{path} is WAL version {version}; this build reads {WAL_VERSION}"
        )
    out = WalContents(spec=dict(meta.get("spec", {})))
    expected_seq = 1
    for i, line in enumerate(lines[1:], start=1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            out.torn_lines = len(lines) - i
            break
        kind = rec.get("t")
        if kind == "ev":
            seq = int(rec["seq"])
            if seq != expected_seq:
                out.torn_lines = len(lines) - i
                break
            expected_seq += 1
            out.events.append((seq, ServeEvent.from_dict(rec["e"])))
        elif kind == "ep":
            out.epochs[int(rec["epoch"])] = (
                str(rec.get("mode", "normal")),
                bool(rec.get("full", False)),
                str(rec.get("sig", "")),
            )
        # unknown record kinds are skipped (forward compatibility)
    return out


def service_spec(
    *,
    n_streams: int,
    bandwidths_mbps,
    seed: int = 0,
    method: str = "",
    weights=None,
    epoch_s: float = 1.0,
    reoptimize_every: int = 0,
    admission: Mapping[str, Any] | None = None,
    breaker: Mapping[str, Any] | None = None,
    slo: list[str] | None = None,
    remediation: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The JSON-safe construction recipe stored in the WAL meta record.

    Everything :func:`build_service` needs to rebuild an *identical*
    service when no checkpoint survived: topology, seed, preference
    weights, scheduler method, and the hardening configuration.
    """
    return {
        "n_streams": int(n_streams),
        "bandwidths_mbps": [float(b) for b in bandwidths_mbps],
        "seed": int(seed),
        "method": str(method or ""),
        "weights": None if weights is None else [float(w) for w in weights],
        "epoch_s": float(epoch_s),
        "reoptimize_every": int(reoptimize_every),
        "admission": None if admission is None else dict(admission),
        "breaker": None if breaker is None else dict(breaker),
        "slo": None if slo is None else [str(s) for s in slo],
        "remediation": None if remediation is None else dict(remediation),
    }


def build_service(spec: Mapping[str, Any]):
    """Rebuild a fresh :class:`SchedulerService` from a WAL meta spec.

    Mirrors the CLI's construction path exactly (same problem, same
    ``approx_preference``, same factory) so the warm-up solve of the
    rebuilt service is bit-identical to the original run's.
    """
    from repro.core.problem import EVAProblem
    from repro.serve.admission import AdmissionController
    from repro.serve.engine import approx_preference
    from repro.serve.service import (
        RegistryFactory,
        RemediationPolicy,
        SchedulerService,
    )

    problem = EVAProblem(
        n_streams=int(spec["n_streams"]),
        bandwidths_mbps=[float(b) for b in spec["bandwidths_mbps"]],
    )
    pref = approx_preference(problem, weights=spec.get("weights"))
    method = spec.get("method") or ""
    factory = (
        RegistryFactory(method, pref, seed=int(spec.get("seed", 0)))
        if method
        else None
    )
    admission = None
    if spec.get("admission"):
        admission = AdmissionController.from_spec(spec["admission"])
    breaker = None
    if spec.get("breaker"):
        from repro.resilience.breaker import CircuitBreaker

        breaker = CircuitBreaker(**spec["breaker"])
    remediation = None
    if spec.get("remediation"):
        remediation = RemediationPolicy(**spec["remediation"])
    service = SchedulerService(
        problem,
        preference=pref,
        scheduler_factory=factory,
        epoch_s=float(spec.get("epoch_s", 1.0)),
        reoptimize_every=int(spec.get("reoptimize_every", 0)),
        admission=admission,
        breaker=breaker,
        remediation=remediation,
    )
    if spec.get("slo"):
        from repro.obs.health import HealthMonitor, SloRule

        service.attach_observability(
            monitor=HealthMonitor([SloRule.parse(s) for s in spec["slo"]])
        )
    return service


@dataclass
class RecoveryInfo:
    """What :func:`recover_service` did, and the proof obligations left.

    ``recorded`` maps every journaled epoch to its decision hash; after
    the recovered service drains its queue, :meth:`verify` re-hashes
    the service's decisions against it — an empty mismatch list is the
    bit-identity guarantee.
    """

    wal_path: Path
    from_checkpoint: bool
    start_seq: int
    replayed_events: int
    torn_lines: int
    recorded: dict[int, str] = field(default_factory=dict)

    def verify(self, service) -> list[dict]:
        """Hash-check the service's decisions against the journal.

        Returns one dict per mismatching (or missing) epoch; empty
        means every journaled decision was reproduced bit-identically.
        """
        by_epoch = {d.epoch: d for d in service.decisions}
        mismatches: list[dict] = []
        for epoch, expected in sorted(self.recorded.items()):
            decision = by_epoch.get(epoch)
            actual = None if decision is None else decision.sig_hash()
            if actual != expected:
                mismatches.append(
                    {"epoch": epoch, "expected": expected, "actual": actual}
                )
        telemetry.counter("wal.verified", len(self.recorded) - len(mismatches))
        if mismatches:
            telemetry.counter("wal.mismatches", len(mismatches))
        return mismatches


def recover_service(wal_path, *, checkpoint=None):
    """Rebuild a service from checkpoint + WAL suffix, exactly-once.

    ``checkpoint`` (optional) is a serve checkpoint written by the
    crashed run; events already absorbed by it (``seq <=`` its
    ``wal_seq`` high-water mark) are skipped, the rest are re-submitted
    in order.  Journaled epochs ahead of the resume point get their
    operating mode and full-solve choice pinned, so replay reproduces
    the recorded decisions even where the original transition came
    from wall-clock latency.  Returns ``(service, RecoveryInfo)`` —
    run the service, then :meth:`RecoveryInfo.verify`.
    """
    contents = read_wal(wal_path)
    from_checkpoint = False
    if checkpoint is not None and Path(checkpoint).exists():
        from repro.serve.service import SchedulerService

        service = SchedulerService.resume(checkpoint)
        start_seq = int(service.wal_seq)
        from_checkpoint = True
    else:
        service = build_service(contents.spec)
        start_seq = 0
    suffix = [e for seq, e in contents.events if seq > start_seq]
    service.submit(suffix)  # no WAL attached: recovery writes no journal
    service.wal_seq = max(contents.last_seq, start_seq)
    # Pin recorded epochs ahead of the resume point.  Epoch 0 (warm-up)
    # is always a normal-mode full solve, so it never needs a pin —
    # and on fresh rebuilds it must not get one, since start() runs it
    # before the run loop would consume the pin.
    service._forced_modes = {
        ep: (mode, full)
        for ep, (mode, full, _sig) in contents.epochs.items()
        if ep > service.epoch and ep > 0
    }
    info = RecoveryInfo(
        wal_path=Path(wal_path),
        from_checkpoint=from_checkpoint,
        start_seq=start_seq,
        replayed_events=len(suffix),
        torn_lines=contents.torn_lines,
        recorded={ep: sig for ep, (_m, _f, sig) in contents.epochs.items()},
    )
    telemetry.counter("wal.replayed_events", len(suffix))
    telemetry.event(
        "wal.recovered",
        wal=str(wal_path),
        from_checkpoint=from_checkpoint,
        start_seq=start_seq,
        replayed_events=len(suffix),
        torn_lines=contents.torn_lines,
    )
    return service, info
