"""``repro.serve`` — the event-driven online scheduler service.

Turns the repo's one-shot batch optimization into a long-lived
scheduler process: :class:`~repro.serve.service.SchedulerService`
consumes :class:`~repro.serve.events.ServeEvent` churn (stream
join/leave, bandwidth drift, server membership, drift alarms) on an
epoch clock, maintains the live schedule incrementally through
:class:`~repro.serve.engine.IncrementalPlanner`, and proves the
incremental path with ``serve.*`` telemetry counters.
:func:`~repro.serve.loadgen.generate_load` drives seeded churn at
thousands of events per simulated hour, and
:func:`~repro.serve.report.summarize_serve_run` turns the resulting
trace into decision-latency percentiles for the ``repro serve report``
CLI and the ``serve-smoke`` CI gate.
"""

from repro.serve.engine import IncrementalPlanner, approx_preference
from repro.serve.events import (
    SERVE_EVENT_KINDS,
    EventLog,
    EventQueue,
    ServeEvent,
    from_fault,
)
from repro.serve.greedy import GreedyScheduler
from repro.serve.loadgen import ChurnProfile, generate_load
from repro.serve.report import ServeSummary, summarize_serve_run
from repro.serve.service import (
    DECISION_WINDOW,
    RegistryFactory,
    SchedulerService,
    ServeDecision,
    ServeEpochTick,
)
from repro.serve.top import fetch_varz, render_top, run_top

__all__ = [
    "DECISION_WINDOW",
    "SERVE_EVENT_KINDS",
    "ChurnProfile",
    "EventLog",
    "EventQueue",
    "GreedyScheduler",
    "IncrementalPlanner",
    "RegistryFactory",
    "SchedulerService",
    "ServeDecision",
    "ServeEpochTick",
    "ServeEvent",
    "ServeSummary",
    "approx_preference",
    "fetch_varz",
    "from_fault",
    "generate_load",
    "render_top",
    "run_top",
    "summarize_serve_run",
]
