"""``repro.serve`` — the event-driven online scheduler service.

Turns the repo's one-shot batch optimization into a long-lived
scheduler process: :class:`~repro.serve.service.SchedulerService`
consumes :class:`~repro.serve.events.ServeEvent` churn (stream
join/leave, bandwidth drift, server membership, drift alarms) on an
epoch clock, maintains the live schedule incrementally through
:class:`~repro.serve.engine.IncrementalPlanner`, and proves the
incremental path with ``serve.*`` telemetry counters.
:func:`~repro.serve.loadgen.generate_load` drives seeded churn at
thousands of events per simulated hour, and
:func:`~repro.serve.report.summarize_serve_run` turns the resulting
trace into decision-latency percentiles for the ``repro serve report``
CLI and the ``serve-smoke`` CI gate.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionOutcome,
    parse_priority_map,
)
from repro.serve.engine import IncrementalPlanner, approx_preference
from repro.serve.events import (
    SERVE_EVENT_KINDS,
    EventLog,
    EventQueue,
    ServeEvent,
    from_fault,
)
from repro.serve.greedy import GreedyScheduler
from repro.serve.loadgen import ChurnProfile, generate_load
from repro.serve.report import ServeSummary, summarize_serve_run
from repro.serve.service import (
    DECISION_WINDOW,
    RegistryFactory,
    RemediationPolicy,
    SchedulerService,
    ServeDecision,
    ServeEpochTick,
)
from repro.serve.top import fetch_varz, render_top, run_top
from repro.serve.wal import (
    RecoveryInfo,
    WriteAheadLog,
    build_service,
    read_wal,
    recover_service,
    service_spec,
)

__all__ = [
    "DECISION_WINDOW",
    "SERVE_EVENT_KINDS",
    "AdmissionController",
    "AdmissionOutcome",
    "ChurnProfile",
    "EventLog",
    "EventQueue",
    "GreedyScheduler",
    "IncrementalPlanner",
    "RecoveryInfo",
    "RegistryFactory",
    "RemediationPolicy",
    "SchedulerService",
    "ServeDecision",
    "ServeEpochTick",
    "ServeEvent",
    "ServeSummary",
    "WriteAheadLog",
    "approx_preference",
    "build_service",
    "fetch_varz",
    "from_fault",
    "generate_load",
    "parse_priority_map",
    "read_wal",
    "recover_service",
    "render_top",
    "run_top",
    "service_spec",
    "summarize_serve_run",
]
