"""Priority-aware admission control with benefit-aware eviction.

The engine's :meth:`~repro.serve.engine.IncrementalPlanner.admit` is a
pure capacity check: a join either fits at some config or is rejected.
Under overload that is the wrong policy — the paper's whole premise is
that streams differ in *benefit*, so when capacity runs out the system
should keep the valuable streams and shed the cheap ones.
:class:`AdmissionController` layers exactly that on top of the planner:

* **priority classes** — every stream carries an integer priority
  (higher = more important, default 0) from a ``priority_map``; a join
  may only ever displace streams of *strictly lower* priority, so a
  low class can never evict a high one no matter how its benefit
  scores (the invariant the property suite pins);
* **benefit-aware eviction** — eviction candidates are ranked by
  :meth:`~repro.serve.engine.IncrementalPlanner.eviction_scores`
  (marginal benefit per unit utilization), lowest first within each
  priority class, and removed one at a time until the joiner fits;
  if it still doesn't fit, every victim is restored at its original
  config (transactional, like the engine's own mutations);
* **token-bucket join guard** — at most ``join_burst`` joins
  instantly and ``join_rate_per_epoch`` sustained; excess joins are
  *shed* (cheap refusal before any planner work), which is what keeps
  a flash crowd from stalling the epoch loop;
* **queue-depth load shedding** — when the unprocessed event backlog
  exceeds ``max_queue_depth`` (or the service is in remediation
  ``shed_mode``), joins below ``protect_priority`` are shed outright.

Everything is deterministic (epoch-indexed bucket, sorted victim
order, no wall clock) and picklable, so checkpointed runs replay
bit-identically.  The service emits ``admit.rejected`` /
``admit.shed`` / ``admit.evicted_for`` counters from the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs import telemetry

__all__ = ["AdmissionController", "AdmissionOutcome", "parse_priority_map"]


def parse_priority_map(spec: str | Mapping) -> tuple[dict[int, int], int]:
    """Parse a priority-map spec into ``(per-stream map, default)``.

    Accepts a mapping (JSON object) or a compact string
    ``"0=2,1=2,default=0"``; keys are stream ids (or ``default``),
    values integer priorities (higher = more important).
    """
    mapping: dict[int, int] = {}
    default = 0
    if isinstance(spec, str):
        items = [part for part in spec.split(",") if part.strip()]
        pairs = []
        for part in items:
            if "=" not in part:
                raise ValueError(
                    f"bad priority-map entry {part!r}; expected 'sid=prio'"
                )
            key, value = part.split("=", 1)
            pairs.append((key.strip(), value.strip()))
    else:
        pairs = [(str(k), v) for k, v in spec.items()]
    for key, value in pairs:
        if key == "default":
            default = int(value)
        else:
            mapping[int(key)] = int(value)
    return mapping, default


@dataclass
class AdmissionOutcome:
    """What happened to one join request."""

    sid: int
    action: str  # "admitted" | "rejected" | "shed"
    config: tuple[float, float] | None = None
    evicted: list[int] = field(default_factory=list)
    #: streams dropped by a failed eviction rollback (pathological;
    #: reported so the service keeps its texture table consistent).
    dropped: list[int] = field(default_factory=list)
    priority: int = 0
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action == "admitted"


@dataclass
class _TokenBucket:
    """Deterministic epoch-indexed token bucket (no wall clock)."""

    rate: float  # tokens added per epoch
    burst: float  # bucket capacity
    tokens: float = 0.0
    last_epoch: int | None = None

    def take(self, epoch: int) -> bool:
        if self.last_epoch is None:
            self.tokens = self.burst
        elif epoch > self.last_epoch:
            self.tokens = min(
                self.burst, self.tokens + self.rate * (epoch - self.last_epoch)
            )
        self.last_epoch = int(epoch)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Decide joins: admit (possibly evicting), reject, or shed.

    Parameters
    ----------
    priority_map:
        ``stream id -> priority class`` (higher = more important);
        unlisted streams get ``default_priority``.
    default_priority:
        Priority of streams absent from the map (default 0).
    join_rate_per_epoch, join_burst:
        Token-bucket guard on join bursts; ``None`` rate disables it.
        ``join_burst`` defaults to ``max(2 * rate, 1)``.
    max_queue_depth:
        Shed joins (below ``protect_priority``) while the unprocessed
        event backlog exceeds this; ``None`` disables.
    protect_priority:
        Joins at or above this class bypass queue-depth/remediation
        shedding (``None`` = shed every class).
    max_evictions_per_join:
        Bound on victims removed for one join before giving up.

    The default-constructed controller (no map, no bucket, no depth
    limit) admits exactly what the bare planner admits — existing runs
    and checkpoints keep their behavior.
    """

    def __init__(
        self,
        *,
        priority_map: Mapping[int, int] | None = None,
        default_priority: int = 0,
        join_rate_per_epoch: float | None = None,
        join_burst: float | None = None,
        max_queue_depth: int | None = None,
        protect_priority: int | None = None,
        max_evictions_per_join: int = 4,
    ) -> None:
        if join_rate_per_epoch is not None and join_rate_per_epoch <= 0:
            raise ValueError(
                f"join_rate_per_epoch must be > 0, got {join_rate_per_epoch}"
            )
        if join_burst is not None and join_burst < 1:
            raise ValueError(f"join_burst must be >= 1, got {join_burst}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if max_evictions_per_join < 0:
            raise ValueError(
                f"max_evictions_per_join must be >= 0, "
                f"got {max_evictions_per_join}"
            )
        self.priority_map = {
            int(k): int(v) for k, v in (priority_map or {}).items()
        }
        self.default_priority = int(default_priority)
        self.max_queue_depth = max_queue_depth
        self.protect_priority = protect_priority
        self.max_evictions_per_join = int(max_evictions_per_join)
        self._bucket = None
        if join_rate_per_epoch is not None:
            burst = (
                float(join_burst)
                if join_burst is not None
                else max(2.0 * join_rate_per_epoch, 1.0)
            )
            self._bucket = _TokenBucket(
                rate=float(join_rate_per_epoch), burst=burst
            )

    # -- priorities --------------------------------------------------------
    def priority_of(self, sid: int) -> int:
        return self.priority_map.get(sid, self.default_priority)

    # -- the decision ------------------------------------------------------
    def request_join(
        self,
        planner,
        sid: int,
        texture: float,
        *,
        epoch: int = 0,
        queue_depth: int = 0,
        min_config: bool = False,
        shed_mode: bool = False,
    ) -> AdmissionOutcome:
        """Decide one join against the live planner.

        ``min_config`` restricts admission to the cheapest knob pair
        (brownout operation — no ranked-candidate scan, no upgrade).
        ``shed_mode`` is the remediation override: treat the system as
        over backlog regardless of ``queue_depth``.
        """
        prio = self.priority_of(sid)
        if self._bucket is not None and not self._bucket.take(epoch):
            return AdmissionOutcome(
                sid, "shed", priority=prio, reason="token_bucket"
            )
        over_depth = (
            self.max_queue_depth is not None
            and queue_depth > self.max_queue_depth
        )
        if (shed_mode or over_depth) and (
            self.protect_priority is None or prio < self.protect_priority
        ):
            return AdmissionOutcome(
                sid,
                "shed",
                priority=prio,
                reason="remediation" if shed_mode else "queue_depth",
            )
        config = self._try_admit(planner, sid, texture, min_config)
        if config is not None:
            return AdmissionOutcome(sid, "admitted", config, priority=prio)
        return self._admit_with_eviction(planner, sid, texture, prio, min_config)

    def _try_admit(
        self, planner, sid: int, texture: float, min_config: bool
    ) -> tuple[float, float] | None:
        if min_config:
            r = min(planner.config_space.resolutions)
            s = min(planner.config_space.fps_values)
            return (r, s) if planner.add_stream(sid, texture, r, s) else None
        return planner.admit(sid, texture)

    def _admit_with_eviction(
        self, planner, sid: int, texture: float, prio: int, min_config: bool
    ) -> AdmissionOutcome:
        """Evict strictly-lower-priority, lowest-score streams first.

        Victims come off one at a time (cheapest class, then lowest
        marginal benefit per unit utilization, then id — fully
        deterministic); after each removal the joiner retries.  If the
        budget runs out the removals are rolled back in reverse at
        their original configs.
        """
        if self.max_evictions_per_join == 0:
            return AdmissionOutcome(
                sid, "rejected", priority=prio, reason="no_fit"
            )
        scores = planner.eviction_scores()
        victims = sorted(
            (v for v in scores if self.priority_of(v) < prio),
            key=lambda v: (self.priority_of(v), scores[v], v),
        )
        if not victims:
            return AdmissionOutcome(
                sid, "rejected", priority=prio, reason="no_lower_priority"
            )
        removed: list[tuple[int, float, float, float]] = []
        for vid in victims[: self.max_evictions_per_join]:
            entry = planner.entries[vid]
            removed.append(
                (vid, entry.texture, entry.resolution, entry.fps)
            )
            planner.remove_stream(vid)
            config = self._try_admit(planner, sid, texture, min_config)
            if config is not None:
                return AdmissionOutcome(
                    sid,
                    "admitted",
                    config,
                    evicted=[v[0] for v in removed],
                    priority=prio,
                    reason="evicted_lower_priority",
                )
        # Roll back: re-adding at the original configs succeeds because
        # the capacity the victims occupied is still free (the joiner
        # was never admitted).  First-fit may land subs in different
        # groups than before, which is fine — group membership is not
        # part of the decision signature, only configs/assignment are,
        # and those re-derive from the restored entries.
        dropped: list[int] = []
        for vid, tex, r, s in reversed(removed):
            if not planner.add_stream(vid, tex, r, s):
                # Unreachable by the capacity argument; account for it
                # anyway so a surprise never silently corrupts state.
                dropped.append(vid)
                telemetry.counter("admit.rollback_drops")
        return AdmissionOutcome(
            sid,
            "rejected",
            dropped=dropped,
            priority=prio,
            reason="eviction_budget",
        )

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe config/state dump (``/varz``, WAL meta)."""
        return {
            "priority_map": {str(k): v for k, v in self.priority_map.items()},
            "default_priority": self.default_priority,
            "join_rate_per_epoch": None if self._bucket is None else self._bucket.rate,
            "join_burst": None if self._bucket is None else self._bucket.burst,
            "max_queue_depth": self.max_queue_depth,
            "protect_priority": self.protect_priority,
            "max_evictions_per_join": self.max_evictions_per_join,
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "AdmissionController":
        """Rebuild from a :meth:`snapshot` dict (WAL recovery)."""
        priority_map = {
            int(k): int(v) for k, v in (spec.get("priority_map") or {}).items()
        }
        return cls(
            priority_map=priority_map,
            default_priority=int(spec.get("default_priority", 0)),
            join_rate_per_epoch=spec.get("join_rate_per_epoch"),
            join_burst=spec.get("join_burst"),
            max_queue_depth=spec.get("max_queue_depth"),
            protect_priority=spec.get("protect_priority"),
            max_evictions_per_join=int(spec.get("max_evictions_per_join", 4)),
        )
