"""Serve-run reporting: decision-latency percentiles from a trace log.

A serve run records everything through :mod:`repro.obs` — one
``serve.decision`` span (and one ``serve.decision`` event) per epoch,
the ``serve.*`` counters inside the final ``run.summary`` — so the
generic ``repro report``/``repro trace`` work unchanged.  This module
adds the serve-specific view: :func:`summarize_serve_run` parses the
JSONL into a :class:`ServeSummary` with exact decision-latency
percentiles (computed over *all* per-epoch span events, not the bounded
reservoir), the counter proof of the incremental path
(``full_solves``/``cache_hits``), and the benefit trajectory.  The p95
budget gate of the ``serve-smoke`` CI job is :meth:`ServeSummary.gate`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ServeSummary", "summarize_serve_run"]

#: Leaf span name of the per-epoch decision timer (matched on the span's
#: ``name``, not its slash-joined path — serve runs nest it under the
#: CLI's ``cli.serve`` root span).
DECISION_SPAN = "serve.decision"


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted list."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] * (1 - (pos - lo)) + ordered[hi] * (pos - lo)


@dataclass
class ServeSummary:
    """Aggregated view of one serve run's event log."""

    path: str = ""
    trace_id: str | None = None
    epochs: int = 0
    events: int = 0
    full_solves: int = 0
    cache_hits: int = 0
    solved: int = 0
    admission_rejects: int = 0
    repairs: int = 0
    decision_count: int = 0
    decision_p50_s: float = 0.0
    decision_p95_s: float = 0.0
    decision_max_s: float = 0.0
    decision_mean_s: float = 0.0
    benefit_first: float | None = None
    benefit_last: float | None = None
    n_streams_last: int = 0
    counters: dict = field(default_factory=dict)

    @property
    def cache_hit_ratio(self) -> float:
        """Cached decisions / (cached + re-solved); 0 when nothing ran."""
        total = self.cache_hits + self.solved
        return self.cache_hits / total if total else 0.0

    def gate(self, max_p95_s: float) -> bool:
        """True when the p95 decision latency is within budget."""
        return self.decision_count > 0 and self.decision_p95_s <= max_p95_s

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "trace_id": self.trace_id,
            "epochs": self.epochs,
            "events": self.events,
            "full_solves": self.full_solves,
            "cache_hits": self.cache_hits,
            "solved": self.solved,
            "cache_hit_ratio": self.cache_hit_ratio,
            "admission_rejects": self.admission_rejects,
            "repairs": self.repairs,
            "decision_count": self.decision_count,
            "decision_p50_s": self.decision_p50_s,
            "decision_p95_s": self.decision_p95_s,
            "decision_max_s": self.decision_max_s,
            "decision_mean_s": self.decision_mean_s,
            "benefit_first": self.benefit_first,
            "benefit_last": self.benefit_last,
            "n_streams_last": self.n_streams_last,
        }

    def render(self) -> str:
        lines = [
            f"serve run: {self.path}",
            f"  trace_id          {self.trace_id or '-'}",
            f"  epochs            {self.epochs}",
            f"  events            {self.events}",
            f"  full solves       {self.full_solves}",
            f"  cache hits        {self.cache_hits}"
            f"  (hit ratio {self.cache_hit_ratio:.1%})",
            f"  re-solved streams {self.solved}",
            f"  admission rejects {self.admission_rejects}",
            f"  repairs           {self.repairs}",
            f"  decision latency  p50 {self.decision_p50_s * 1e3:.3f} ms"
            f" · p95 {self.decision_p95_s * 1e3:.3f} ms"
            f" · max {self.decision_max_s * 1e3:.3f} ms"
            f" ({self.decision_count} epochs)",
        ]
        if self.benefit_first is not None:
            lines.append(
                f"  benefit           {self.benefit_first:+.4f} (first)"
                f" -> {self.benefit_last:+.4f} (last)"
                f" · {self.n_streams_last} streams at end"
            )
        return "\n".join(lines)


def summarize_serve_run(path) -> ServeSummary:
    """Parse a serve run's JSONL trace into a :class:`ServeSummary`.

    Tolerant of partial logs (crashed runs): percentiles come from the
    per-epoch span events, counters prefer the final ``run.summary``
    but fall back to summing the per-epoch decision events.
    """
    path = Path(path)
    summary = ServeSummary(path=str(path))
    durations: list[float] = []
    benefits: list[float] = []
    epoch_full_solves = epoch_cache_hits = epoch_solved = 0
    epoch_rejects = epoch_events = 0
    run_counters: dict | None = None
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = rec.get("event")
            if kind == "trace.start" and summary.trace_id is None:
                summary.trace_id = rec.get("trace_id")
            elif kind == "span" and rec.get("name") == DECISION_SPAN:
                durations.append(float(rec.get("duration_s", 0.0)))
            elif kind == "serve.decision":
                summary.epochs += 1
                epoch_events += len(rec.get("events", ()))
                epoch_full_solves += bool(rec.get("full_solve"))
                epoch_cache_hits += int(rec.get("cache_hits", 0))
                epoch_solved += int(rec.get("solved", 0))
                epoch_rejects += len(rec.get("rejected", ()))
                if rec.get("benefit") is not None:
                    benefits.append(float(rec["benefit"]))
                summary.n_streams_last = int(
                    rec.get("n_streams", summary.n_streams_last)
                )
            elif kind == "run.summary":
                run_counters = rec.get("report", {}).get("counters", {})
    counters = run_counters if run_counters is not None else {}
    summary.counters = counters
    summary.events = int(counters.get("serve.events", epoch_events))
    summary.full_solves = int(counters.get("serve.full_solves", epoch_full_solves))
    summary.cache_hits = int(counters.get("serve.cache_hits", epoch_cache_hits))
    summary.solved = int(counters.get("serve.solved", epoch_solved))
    summary.admission_rejects = int(
        counters.get("serve.admission_rejects", epoch_rejects)
    )
    summary.repairs = int(counters.get("serve.repairs", 0))
    durations.sort()
    summary.decision_count = len(durations)
    summary.decision_p50_s = _percentile(durations, 0.50)
    summary.decision_p95_s = _percentile(durations, 0.95)
    summary.decision_max_s = durations[-1] if durations else 0.0
    summary.decision_mean_s = (
        sum(durations) / len(durations) if durations else 0.0
    )
    if benefits:
        summary.benefit_first = benefits[0]
        summary.benefit_last = benefits[-1]
    return summary
