"""Serve-run reporting: decision-latency percentiles from a trace log.

A serve run records everything through :mod:`repro.obs` — one
``serve.decision`` span (and one ``serve.decision`` event) per epoch,
the ``serve.*`` counters inside the final ``run.summary`` — so the
generic ``repro report``/``repro trace`` work unchanged.  This module
adds the serve-specific view: :func:`summarize_serve_run` parses the
JSONL (across rotated segments) into a :class:`ServeSummary` whose
headline p50/p95/p99 use the **rolling-window definition** shared with
:meth:`repro.serve.service.SchedulerService.summary` and the live
``/metrics`` surface — exact percentiles over the most recent
:data:`~repro.serve.service.DECISION_WINDOW` epochs — plus the counter
proof of the incremental path (``full_solves``/``cache_hits``), the
benefit trajectory, and any ``alert.*`` events.  The p95 budget gate of
the ``serve-smoke`` CI job is :meth:`ServeSummary.gate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ServeSummary", "summarize_serve_run"]

#: Leaf span name of the per-epoch decision timer (matched on the span's
#: ``name``, not its slash-joined path — serve runs nest it under the
#: CLI's ``cli.serve`` root span).
DECISION_SPAN = "serve.decision"


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted list."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] * (1 - (pos - lo)) + ordered[hi] * (pos - lo)


@dataclass
class ServeSummary:
    """Aggregated view of one serve run's event log."""

    path: str = ""
    trace_id: str | None = None
    epochs: int = 0
    events: int = 0
    full_solves: int = 0
    cache_hits: int = 0
    solved: int = 0
    admission_rejects: int = 0
    repairs: int = 0
    decision_count: int = 0
    decision_window: int = 0
    decision_p50_s: float = 0.0
    decision_p95_s: float = 0.0
    decision_p99_s: float = 0.0
    decision_max_s: float = 0.0
    decision_mean_s: float = 0.0
    benefit_first: float | None = None
    benefit_last: float | None = None
    n_streams_last: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    alerts: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    shed: int = 0
    evicted_for_admission: int = 0
    brownout_epochs: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    wal_syncs: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        """Cached decisions / (cached + re-solved); 0 when nothing ran."""
        total = self.cache_hits + self.solved
        return self.cache_hits / total if total else 0.0

    @property
    def benefit_drop_ratio(self) -> float | None:
        """Relative benefit loss first -> last (``None`` without scores).

        Clamped at 0 (a run that *gained* benefit never fails the
        gate); relative to ``|benefit_first|`` so the overload gate
        means "kept at least ``1 - max_drop`` of the warm-up benefit".
        """
        if self.benefit_first is None or self.benefit_last is None:
            return None
        scale = max(abs(self.benefit_first), 1e-12)
        return max(0.0, (self.benefit_first - self.benefit_last) / scale)

    def gate(self, max_p95_s: float) -> bool:
        """True when the p95 decision latency is within budget."""
        return self.decision_count > 0 and self.decision_p95_s <= max_p95_s

    def gate_drop(self, max_drop: float) -> bool:
        """True when the benefit drop stayed within ``max_drop``.

        A run with no benefit trajectory fails (nothing to prove the
        overload was survived).
        """
        drop = self.benefit_drop_ratio
        return drop is not None and drop <= max_drop

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "trace_id": self.trace_id,
            "epochs": self.epochs,
            "events": self.events,
            "full_solves": self.full_solves,
            "cache_hits": self.cache_hits,
            "solved": self.solved,
            "cache_hit_ratio": self.cache_hit_ratio,
            "admission_rejects": self.admission_rejects,
            "repairs": self.repairs,
            "decision_count": self.decision_count,
            "decision_window": self.decision_window,
            "decision_p50_s": self.decision_p50_s,
            "decision_p95_s": self.decision_p95_s,
            "decision_p99_s": self.decision_p99_s,
            "decision_max_s": self.decision_max_s,
            "decision_mean_s": self.decision_mean_s,
            "benefit_first": self.benefit_first,
            "benefit_last": self.benefit_last,
            "n_streams_last": self.n_streams_last,
            "alerts_fired": self.alerts_fired,
            "alerts_resolved": self.alerts_resolved,
            "benefit_drop_ratio": self.benefit_drop_ratio,
            "shed": self.shed,
            "evicted_for_admission": self.evicted_for_admission,
            "brownout_epochs": self.brownout_epochs,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "wal_syncs": self.wal_syncs,
        }

    def render(self) -> str:
        lines = [
            f"serve run: {self.path}",
            f"  trace_id          {self.trace_id or '-'}",
            f"  epochs            {self.epochs}",
            f"  events            {self.events}",
            f"  full solves       {self.full_solves}",
            f"  cache hits        {self.cache_hits}"
            f"  (hit ratio {self.cache_hit_ratio:.1%})",
            f"  re-solved streams {self.solved}",
            f"  admission rejects {self.admission_rejects}",
            f"  repairs           {self.repairs}",
            f"  decision latency  p50 {self.decision_p50_s * 1e3:.3f} ms"
            f" · p95 {self.decision_p95_s * 1e3:.3f} ms"
            f" · p99 {self.decision_p99_s * 1e3:.3f} ms"
            f" · max {self.decision_max_s * 1e3:.3f} ms"
            f" (window {self.decision_window} of {self.decision_count} epochs)",
        ]
        if self.benefit_first is not None:
            lines.append(
                f"  benefit           {self.benefit_first:+.4f} (first)"
                f" -> {self.benefit_last:+.4f} (last)"
                f" · {self.n_streams_last} streams at end"
            )
        if self.shed or self.brownout_epochs or self.breaker_opens:
            lines.append(
                f"  overload          {self.shed} joins shed"
                f" · {self.evicted_for_admission} evicted for admission"
                f" · {self.brownout_epochs} brownout epochs"
                f" · breaker opened {self.breaker_opens}x"
                f" / closed {self.breaker_closes}x"
            )
        if self.alerts_fired or self.alerts_resolved:
            lines.append(
                f"  alerts            {self.alerts_fired} fired"
                f" · {self.alerts_resolved} resolved"
            )
            for a in self.alerts[-5:]:
                lines.append(
                    f"    {a.get('event')}: {a.get('rule')}"
                    f" ({a.get('metric')}={a.get('value'):.4g}"
                    f" vs {a.get('threshold'):.4g}, {a.get('severity')})"
                )
        return "\n".join(lines)


def summarize_serve_run(path) -> ServeSummary:
    """Parse a serve run's JSONL trace into a :class:`ServeSummary`.

    Reads across rotated segments (``path.N`` ... ``path``) and is
    tolerant of partial logs (crashed runs): percentiles come from the
    per-epoch span events, counters prefer the final ``run.summary``
    but fall back to summing the per-epoch decision events.
    """
    from repro.obs.sinks import iter_jsonl_records, jsonl_segments
    from repro.serve.service import DECISION_WINDOW

    path = Path(path)
    if not jsonl_segments(path):
        raise FileNotFoundError(path)
    summary = ServeSummary(path=str(path))
    durations: list[float] = []
    benefits: list[float] = []
    epoch_full_solves = epoch_cache_hits = epoch_solved = 0
    epoch_rejects = epoch_events = 0
    epoch_shed = 0
    run_counters: dict | None = None
    for rec in iter_jsonl_records(path):
        kind = rec.get("event")
        if kind == "trace.start" and summary.trace_id is None:
            summary.trace_id = rec.get("trace_id")
        elif kind == "span" and rec.get("name") == DECISION_SPAN:
            durations.append(float(rec.get("duration_s", 0.0)))
        elif kind == "serve.decision":
            summary.epochs += 1
            epoch_events += len(rec.get("events", ()))
            epoch_full_solves += bool(rec.get("full_solve"))
            epoch_cache_hits += int(rec.get("cache_hits", 0))
            epoch_solved += int(rec.get("solved", 0))
            epoch_rejects += len(rec.get("rejected", ()))
            epoch_shed += len(rec.get("shed", ()))
            if rec.get("mode") == "brownout":
                summary.brownout_epochs += 1
            if rec.get("benefit") is not None:
                benefits.append(float(rec["benefit"]))
            summary.n_streams_last = int(
                rec.get("n_streams", summary.n_streams_last)
            )
        elif kind == "alert.fired":
            summary.alerts_fired += 1
            summary.alerts.append(rec)
        elif kind == "alert.resolved":
            summary.alerts_resolved += 1
            summary.alerts.append(rec)
        elif kind == "run.summary":
            run_counters = rec.get("report", {}).get("counters", {})
    counters = run_counters if run_counters is not None else {}
    summary.counters = counters
    summary.events = int(counters.get("serve.events", epoch_events))
    summary.full_solves = int(counters.get("serve.full_solves", epoch_full_solves))
    summary.cache_hits = int(counters.get("serve.cache_hits", epoch_cache_hits))
    summary.solved = int(counters.get("serve.solved", epoch_solved))
    summary.admission_rejects = int(
        counters.get("serve.admission_rejects", epoch_rejects)
    )
    summary.repairs = int(counters.get("serve.repairs", 0))
    summary.shed = int(counters.get("admit.shed", epoch_shed))
    summary.evicted_for_admission = int(counters.get("admit.evicted_for", 0))
    summary.breaker_opens = int(counters.get("breaker.opens", 0))
    summary.breaker_closes = int(counters.get("breaker.closes", 0))
    summary.wal_syncs = int(counters.get("wal.syncs", 0))
    summary.decision_count = len(durations)
    # Headline percentiles use the rolling-window definition shared
    # with SchedulerService.summary(): the last DECISION_WINDOW epochs.
    window = sorted(durations[-DECISION_WINDOW:])
    summary.decision_window = len(window)
    summary.decision_p50_s = _percentile(window, 0.50)
    summary.decision_p95_s = _percentile(window, 0.95)
    summary.decision_p99_s = _percentile(window, 0.99)
    summary.decision_max_s = window[-1] if window else 0.0
    summary.decision_mean_s = (
        sum(durations) / len(durations) if durations else 0.0
    )
    if benefits:
        summary.benefit_first = benefits[0]
        summary.benefit_last = benefits[-1]
    return summary
