"""Incremental planning engine for the serve loop.

A batch optimizer answers "what is the best decision for this problem";
the serve loop needs "how does the current decision change when one
stream joins".  Re-running Algorithm 1 end to end per event is
O(M²) in the divisor-priority pass alone — at M=1000 streams a single
``EVAProblem.evaluate`` takes seconds, which no per-event path can
afford.  :class:`IncrementalPlanner` instead *maintains* the schedule:

* groups are live objects holding their distinct periods, total
  processing time, and bit-rate, so the Theorem-3 admission check for
  one sub-stream is O(distinct periods) ≈ O(1);
* per-stream outcome contributions (Eq. 2–4 terms) are kept as running
  sums, so the outcome vector after a delta costs O(sub-streams) for
  the latency term and O(1) for the rest;
* the group→server Hungarian solve reuses the memoized
  :func:`repro.sched.assignment.solve_group_assignment`.

Every mutation is transactional: a failed insertion rolls back to the
pre-call state, so the service can try candidates best-first and fall
back cleanly.  The invariant — every group satisfies Theorem 3 (hence
Const2, hence zero jitter) — is exactly the one Algorithm 1 maintains,
which the engine/Algorithm-1 equivalence tests check with
:func:`repro.sched.theory.const2_satisfied`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.problem import ConfigSpace, EVAProblem
from repro.outcomes.functions import OutcomeFunctions
from repro.pref.decision_maker import LinearL1Preference
from repro.sched.assignment import solve_group_assignment
from repro.sched.grouping import InfeasibleScheduleError
from repro.sched.streams import PeriodicStream

__all__ = ["IncrementalPlanner", "approx_preference"]

#: Slack for float capacity / integer-multiple comparisons (matches
#: the tolerances in repro.sched).
_EPS = 1e-9

#: Objectives where lower raw values are better (canonical order);
#: duplicated from repro.core.benefit to avoid a core<->serve cycle.
_LOWER_IS_BETTER = np.array([True, False, True, True, True])


def approx_preference(problem: EVAProblem, weights=None) -> LinearL1Preference:
    """Eq. 13 preference with analytically-derived normalization bounds.

    :func:`repro.core.benefit.make_preference` evaluates the two corner
    decisions through Algorithm 1, which is exact but O(M²) — minutes at
    M=1000.  All five objectives are monotone in the uniform corner
    configurations, so the bounds can be computed directly from the
    outcome functions; only the latency term needs the server
    assignment, which is approximated with the mean uplink bandwidth.
    The resulting preference is deterministic and construction is O(M).
    """
    space = problem.config_space
    out = problem.outcomes
    m = problem.n_streams
    mean_bw = float(np.mean(problem.bandwidths_mbps)) * 1e6
    mean_texture = float(np.mean(problem.textures))
    corners = []
    for r, s in (
        (min(space.resolutions), min(space.fps_values)),
        (max(space.resolutions), max(space.fps_values)),
    ):
        rv = np.full(m, float(r))
        sv = np.full(m, float(s))
        ltc = out.profile.processing_time(r) + out.encoder.bits_per_frame(
            r, texture=mean_texture
        ) / mean_bw
        corners.append(
            np.array(
                [
                    ltc,
                    out.accuracy(rv, sv),
                    out.network_mbps(rv, sv),
                    out.computation_tflops(rv, sv),
                    out.energy_watts(rv, sv),
                ]
            )
        )
    corners = np.stack(corners)
    lo, hi = corners.min(axis=0), corners.max(axis=0)
    k = lo.size
    if weights is None:
        weights = np.ones(k)
    return LinearL1Preference(
        weights=np.asarray(weights, dtype=float),
        utopia=np.where(_LOWER_IS_BETTER, lo, hi),
        lo=lo,
        hi=hi,
    )


def _period_key(period: float) -> float:
    """Canonical dict key for a float period."""
    return round(period, 12)


class _Group:
    """One zero-jitter server group (Theorem-3 invariant holder)."""

    __slots__ = ("subs", "periods", "total_p", "rate", "pmin")

    def __init__(self) -> None:
        self.subs: list[_Sub] = []
        self.periods: dict[float, int] = {}  # period key -> sub count
        self.total_p = 0.0
        self.rate = 0.0  # Σ bits_per_frame · fps (bits/s)
        self.pmin = math.inf

    def fits(self, period: float, ptime: float) -> bool:
        """Would Theorem 3 still hold with a sub of this shape added?"""
        pmin = min(self.pmin, period)
        if self.total_p + ptime > pmin + _EPS:
            return False
        for q in self.periods:
            ratio = q / pmin
            if abs(ratio - round(ratio)) > _EPS:
                return False
        ratio = period / pmin
        return abs(ratio - round(ratio)) <= _EPS

    def add(self, sub: "_Sub") -> None:
        key = _period_key(sub.period)
        self.subs.append(sub)
        self.periods[key] = self.periods.get(key, 0) + 1
        self.total_p += sub.ptime
        self.rate += sub.rate
        self.pmin = min(self.pmin, sub.period)
        sub.group = self

    def remove(self, sub: "_Sub") -> None:
        key = _period_key(sub.period)
        self.subs.remove(sub)
        count = self.periods[key] - 1
        if count:
            self.periods[key] = count
        else:
            del self.periods[key]
        self.total_p -= sub.ptime
        self.rate -= sub.rate
        if not self.subs:
            self.total_p = 0.0
            self.rate = 0.0
            self.pmin = math.inf
        elif _period_key(sub.period) == _period_key(self.pmin):
            self.pmin = min(s.period for s in self.subs)
        sub.group = None


class _Sub:
    """One (possibly split) sub-stream as placed in a group."""

    __slots__ = ("owner", "period", "ptime", "bits", "rate", "group")

    def __init__(self, owner: int, period: float, ptime: float, bits: float) -> None:
        self.owner = owner
        self.period = period
        self.ptime = ptime
        self.bits = bits  # textured encoded bits per frame
        self.rate = bits / period  # bits/s
        self.group: _Group | None = None


class _Entry:
    """Per-stream decision cache entry: config plus outcome contributions."""

    __slots__ = ("sid", "texture", "resolution", "fps", "acc", "net", "com",
                 "eng", "ptime", "bits", "subs")

    def __init__(self, sid: int, texture: float, resolution: float, fps: float,
                 acc: float, net: float, com: float, eng: float,
                 ptime: float, bits: float) -> None:
        self.sid = sid
        self.texture = texture
        self.resolution = resolution
        self.fps = fps
        self.acc = acc
        self.net = net
        self.com = com
        self.eng = eng
        self.ptime = ptime
        self.bits = bits
        self.subs: list[_Sub] = []


class IncrementalPlanner:
    """Maintains an Algorithm-1-style schedule under deltas.

    Parameters
    ----------
    bandwidths_mbps:
        Nominal uplink bandwidth per server (defines N).
    config_space, outcomes:
        The decision knobs and Eq. 2–5 closed forms (defaults match
        :class:`~repro.core.problem.EVAProblem`).
    preference:
        Benefit function used by :meth:`rank_configs` to order
        candidate knob pairs for a joining stream.
    """

    def __init__(
        self,
        bandwidths_mbps,
        *,
        config_space: ConfigSpace | None = None,
        outcomes: OutcomeFunctions | None = None,
        preference: LinearL1Preference | None = None,
    ) -> None:
        self.nominal_bw = np.asarray(bandwidths_mbps, dtype=float)
        if self.nominal_bw.ndim != 1 or self.nominal_bw.size < 1:
            raise ValueError("bandwidths_mbps must be a non-empty 1-D sequence")
        self.config_space = config_space or ConfigSpace()
        self.outcomes = outcomes or OutcomeFunctions()
        self.preference = preference
        n = self.nominal_bw.size
        self.alive = [True] * n
        self.factor = [1.0] * n
        self.groups: list[_Group] = [_Group() for _ in range(n)]
        self.entries: dict[int, _Entry] = {}
        # Running Eq. 2–4 sums (acc is a sum of per-stream terms; the
        # mean is taken in outcome()).
        self.acc_sum = 0.0
        self.net_sum = 0.0
        self.com_sum = 0.0
        self.eng_sum = 0.0
        # Approximate-latency sums for candidate scoring (mean-bw model).
        self.ptime_sum = 0.0
        self.bits_sum = 0.0
        # Static per-candidate outcome terms (texture-independent).
        self._candidates = self._build_candidate_table()

    # -- construction ------------------------------------------------------
    @classmethod
    def for_problem(
        cls, problem: EVAProblem, *, preference: LinearL1Preference | None = None
    ) -> "IncrementalPlanner":
        """Planner over a problem's substrate (servers, knobs, outcomes)."""
        return cls(
            problem.bandwidths_mbps,
            config_space=problem.config_space,
            outcomes=problem.outcomes,
            preference=preference,
        )

    def _build_candidate_table(self) -> list[dict]:
        out = self.outcomes
        rows = []
        for r, s in self.config_space.all_configs():
            rv, sv = np.array([r]), np.array([s])
            rows.append(
                {
                    "r": float(r),
                    "s": float(s),
                    "acc": float(out.accuracy_fn(rv, sv)[0]),
                    "net": out.encoder.bitrate(r, s) / 1e6,
                    "com": out.profile.flops_per_frame(r) * s,
                    "eng": (
                        out.gamma * out.encoder.bits_per_frame(r) * s
                        + out.profile.energy_per_frame(r) * s
                    ),
                    "ptime": out.profile.processing_time(r),
                }
            )
        return rows

    # -- server state ------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return self.nominal_bw.size

    @property
    def n_alive(self) -> int:
        return sum(self.alive)

    @property
    def n_streams(self) -> int:
        return len(self.entries)

    def alive_indices(self) -> list[int]:
        return [j for j in range(self.n_servers) if self.alive[j]]

    def effective_bw(self) -> np.ndarray:
        """Per-alive-server effective bandwidth (Mbps), alive order."""
        return np.array(
            [self.nominal_bw[j] * self.factor[j] for j in self.alive_indices()]
        )

    def set_bandwidth_factor(self, server: int, factor: float) -> None:
        if not (0 <= server < self.n_servers):
            raise ValueError(f"server {server} out of range for {self.n_servers}")
        if not (0 < factor <= 1):
            raise ValueError(f"bandwidth factor must be in (0, 1], got {factor}")
        self.factor[server] = float(factor)

    def server_up(self, server: int) -> bool:
        """Mark a server alive again; returns False if already alive."""
        if not (0 <= server < self.n_servers):
            raise ValueError(f"server {server} out of range for {self.n_servers}")
        if self.alive[server]:
            return False
        self.alive[server] = True
        self.groups.append(_Group())
        return True

    def server_down(self, server: int, *, priority_of=None) -> dict:
        """Mark a server dead and repair the schedule incrementally.

        One logical group must dissolve (groups ↔ alive servers are
        1:1).  The lightest group (least total processing time) is
        dissolved and its streams re-placed; a stream that no longer
        fits at its current config is degraded to the minimum config,
        and evicted if even that fails.  With ``priority_of`` (a
        ``sid -> int`` callable) higher-priority streams re-place
        first, so scarce capacity displaces the low classes — with the
        default (all priorities equal) the order is plain id order,
        bit-identical to the un-prioritized behavior.  Returns
        ``{"migrated", "degraded", "evicted"}`` stats.
        """
        if not (0 <= server < self.n_servers):
            raise ValueError(f"server {server} out of range for {self.n_servers}")
        stats = {"migrated": 0, "degraded": 0, "evicted": []}
        if not self.alive[server]:
            return stats
        self.alive[server] = False
        if self.n_alive == 0:
            self.alive[server] = True
            raise InfeasibleScheduleError("last alive server cannot go down")
        victim = min(
            range(len(self.groups)),
            key=lambda i: (self.groups[i].total_p, i),
        )
        group = self.groups.pop(victim)
        affected = sorted({sub.owner for sub in group.subs})
        if priority_of is not None:
            affected.sort(key=lambda sid: (-priority_of(sid), sid))
        # Detach the dissolved group's subs; their owners re-place fully.
        for sub in list(group.subs):
            group.remove(sub)
        min_r = min(self.config_space.resolutions)
        min_s = min(self.config_space.fps_values)
        for sid in affected:
            entry = self.entries[sid]
            # Pull the stream's surviving subs out too: it re-places as
            # a unit so split counts stay consistent.
            for sub in entry.subs:
                if sub.group is not None:
                    sub.group.remove(sub)
            entry.subs = []
            if self._place_entry(entry, entry.resolution, entry.fps):
                stats["migrated"] += 1
                continue
            if (entry.resolution, entry.fps) != (min_r, min_s) and self._place_entry(
                entry, min_r, min_s
            ):
                stats["degraded"] += 1
                continue
            self._drop_entry(entry)
            stats["evicted"].append(sid)
        return stats

    # -- stream mutations --------------------------------------------------
    def _make_subs(self, sid: int, texture: float, r: float, s: float
                   ) -> tuple[list[_Sub], float, float]:
        """Split a (r, s) stream into its placeable subs (plus ptime, bits)."""
        ptime = self.outcomes.profile.processing_time(r)
        bits = self.outcomes.encoder.bits_per_frame(r, texture=texture)
        k = 1
        if ptime > 1.0 / s + 1e-12:
            k = max(1, math.ceil(s * ptime - 1e-12))
        sub_fps = s / k if k >= 2 else s
        period = 1.0 / sub_fps
        return (
            [_Sub(sid, period, ptime, bits) for _ in range(max(k, 1))],
            ptime,
            bits,
        )

    def _try_place(self, subs: list[_Sub]) -> bool:
        """First-fit each sub into the groups; all-or-nothing."""
        placed: list[_Sub] = []
        for sub in subs:
            for group in self.groups:
                if group.fits(sub.period, sub.ptime):
                    group.add(sub)
                    placed.append(sub)
                    break
            else:
                for p in placed:
                    p.group.remove(p)
                return False
        return True

    def _place_entry(self, entry: _Entry, r: float, s: float) -> bool:
        """(Re)place an already-registered entry at config (r, s)."""
        subs, ptime, bits = self._make_subs(entry.sid, entry.texture, r, s)
        if not self._try_place(subs):
            return False
        self._sub_sums(entry, -1.0)
        cand = self._candidate_for(r, s)
        entry.resolution, entry.fps = float(r), float(s)
        entry.acc, entry.net = cand["acc"], cand["net"]
        entry.com, entry.eng = cand["com"], cand["eng"]
        entry.ptime, entry.bits = ptime, bits
        entry.subs = subs
        self._sub_sums(entry, 1.0)
        return True

    def _candidate_for(self, r: float, s: float) -> dict:
        for cand in self._candidates:
            if cand["r"] == float(r) and cand["s"] == float(s):
                return cand
        raise ValueError(f"({r}, {s}) is not a knob pair of the config space")

    def _sub_sums(self, entry: _Entry, sign: float) -> None:
        self.acc_sum += sign * entry.acc
        self.net_sum += sign * entry.net
        self.com_sum += sign * entry.com
        self.eng_sum += sign * entry.eng
        self.ptime_sum += sign * entry.ptime
        self.bits_sum += sign * entry.bits

    def _drop_entry(self, entry: _Entry) -> None:
        for sub in entry.subs:
            if sub.group is not None:
                sub.group.remove(sub)
        self._sub_sums(entry, -1.0)
        del self.entries[entry.sid]

    def add_stream(self, sid: int, texture: float, r: float, s: float) -> bool:
        """Admit a stream at config (r, s); False (state unchanged) if unfit."""
        if sid in self.entries:
            raise ValueError(f"stream {sid} already admitted")
        subs, ptime, bits = self._make_subs(sid, texture, r, s)
        if not self._try_place(subs):
            return False
        cand = self._candidate_for(r, s)
        entry = _Entry(
            sid, float(texture), float(r), float(s),
            cand["acc"], cand["net"], cand["com"], cand["eng"], ptime, bits,
        )
        entry.subs = subs
        self.entries[sid] = entry
        self._sub_sums(entry, 1.0)
        return True

    def remove_stream(self, sid: int) -> bool:
        """Remove a stream; False if unknown."""
        entry = self.entries.get(sid)
        if entry is None:
            return False
        self._drop_entry(entry)
        return True

    def set_config(self, sid: int, r: float, s: float) -> bool:
        """Re-place a stream at a new config; rolls back on failure."""
        entry = self.entries.get(sid)
        if entry is None:
            raise KeyError(f"stream {sid} not admitted")
        old_subs = entry.subs
        old_groups = [sub.group for sub in old_subs]
        for sub in old_subs:
            sub.group.remove(sub)
        entry.subs = []
        if self._place_entry(entry, r, s):
            return True
        # Roll back: the old subs fit their old groups by construction.
        for sub, group in zip(old_subs, old_groups):
            group.add(sub)
        entry.subs = old_subs
        return False

    # -- admission scoring -------------------------------------------------
    def rank_configs(self, texture: float) -> list[tuple[float, float]]:
        """Knob pairs ordered by marginal system benefit, best first.

        Scores each candidate (r, s) by the benefit of the post-admission
        outcome vector, using the running Eq. 2–4 sums plus a mean-
        bandwidth latency approximation (the exact latency needs the
        Hungarian assignment, which would defeat O(1) scoring).  Ties
        break toward the cheaper configuration for determinism.
        """
        if self.preference is None:
            raise ValueError("rank_configs needs a preference to score with")
        eff = self.effective_bw()
        mean_bw = float(np.mean(eff)) * 1e6 if eff.size else 1e6
        n = len(self.entries)
        rows = np.empty((len(self._candidates), 5))
        for i, cand in enumerate(self._candidates):
            bits = self.outcomes.encoder.bits_per_frame(cand["r"], texture=texture)
            lat = cand["ptime"] + bits / mean_bw
            rows[i, 0] = (self.ptime_sum + self.bits_sum / mean_bw + lat) / (n + 1)
            rows[i, 1] = (self.acc_sum + cand["acc"]) / (n + 1)
            rows[i, 2] = self.net_sum + cand["net"]
            rows[i, 3] = self.com_sum + cand["com"]
            rows[i, 4] = self.eng_sum + cand["eng"]
        scores = np.asarray(self.preference.value(rows), dtype=float)
        order = sorted(
            range(len(self._candidates)),
            key=lambda i: (
                -scores[i],
                self._candidates[i]["r"],
                self._candidates[i]["s"],
            ),
        )
        return [(self._candidates[i]["r"], self._candidates[i]["s"]) for i in order]

    def admit(self, sid: int, texture: float) -> tuple[float, float] | None:
        """Admit a stream at the best config that fits (best-first greedy).

        Returns the chosen (r, s), or ``None`` if no knob pair fits —
        the admission-control reject the service counts.
        """
        for r, s in self.rank_configs(texture):
            if self.add_stream(sid, texture, r, s):
                return (r, s)
        return None

    def utilization_of(self, sid: int) -> float:
        """A stream's processing-time demand in server-seconds per second.

        Each of the stream's ``k`` sub-streams runs at ``fps/k`` and
        costs ``ptime`` per frame, so the total is ``ptime * fps``
        regardless of the split — the resource denominator of
        :meth:`eviction_scores`.
        """
        entry = self.entries[sid]
        return entry.ptime * entry.fps

    def eviction_scores(self) -> dict[int, float]:
        """Marginal benefit per unit utilization for every stream.

        ``score[sid]`` estimates how much *system benefit per
        server-second of capacity* stream ``sid`` contributes: the
        benefit of the current schedule minus the benefit with the
        stream removed (running Eq. 2–4 sums, mean-bandwidth latency
        approximation — the same O(1) model :meth:`rank_configs`
        scores admissions with), divided by
        :meth:`utilization_of`.  The admission controller evicts
        lowest-score first, so shedding frees the most capacity per
        unit of benefit given up.  Deterministic: pure arithmetic over
        the entry table, no RNG, no wall clock.
        """
        if self.preference is None:
            raise ValueError("eviction_scores needs a preference to score with")
        if not self.entries:
            return {}
        eff = self.effective_bw()
        mean_bw = float(np.mean(eff)) * 1e6 if eff.size else 1e6
        sids = sorted(self.entries)
        n = len(sids)
        row_all = np.array(
            [
                (self.ptime_sum + self.bits_sum / mean_bw) / n,
                self.acc_sum / n,
                self.net_sum,
                self.com_sum,
                self.eng_sum,
            ]
        )
        benefit_all = float(self.preference.value(row_all))
        if n == 1:
            sid = sids[0]
            util = max(self.utilization_of(sid), _EPS)
            return {sid: benefit_all / util}
        rows = np.empty((n, 5))
        for i, sid in enumerate(sids):
            e = self.entries[sid]
            m = n - 1
            rows[i, 0] = (
                self.ptime_sum - e.ptime + (self.bits_sum - e.bits) / mean_bw
            ) / m
            rows[i, 1] = (self.acc_sum - e.acc) / m
            rows[i, 2] = self.net_sum - e.net
            rows[i, 3] = self.com_sum - e.com
            rows[i, 4] = self.eng_sum - e.eng
        benefit_without = np.asarray(self.preference.value(rows), dtype=float)
        return {
            sid: (benefit_all - float(benefit_without[i]))
            / max(self.utilization_of(sid), _EPS)
            for i, sid in enumerate(sids)
        }

    # -- full solves -------------------------------------------------------
    def clear_streams(self) -> None:
        """Drop every stream (server state and caches survive)."""
        self.groups = [_Group() for _ in range(self.n_alive)]
        self.entries = {}
        self.acc_sum = self.net_sum = self.com_sum = self.eng_sum = 0.0
        self.ptime_sum = self.bits_sum = 0.0

    def solve_all(
        self, textures: dict[int, float], *, priority_of=None
    ) -> dict:
        """Greedy warm-up: admit-all at minimum config, then upgrade.

        Admission first (every stream at the cheapest knob pair —
        maximizes the admitted population), then one benefit-ordered
        upgrade pass per stream (first higher-ranked config that still
        fits zero-jitter wins; :meth:`set_config` rolls back cleanly on
        misfit).  Both passes walk streams in id order, or — with a
        ``priority_of`` callable — higher priority classes first, so
        when capacity runs out it is the low classes that get rejected
        or stay at min config.  The serve loop's "full solve" when no
        batch scheduler is attached.  Returns
        ``{"admitted", "rejected"}`` stats.
        """
        if self.n_alive == 0:
            raise InfeasibleScheduleError("no alive server to solve onto")
        self.clear_streams()
        min_r = min(self.config_space.resolutions)
        min_s = min(self.config_space.fps_values)
        order = sorted(textures)
        if priority_of is not None:
            order.sort(key=lambda sid: (-priority_of(sid), sid))
        stats = {"admitted": 0, "rejected": []}
        for sid in order:
            if self.add_stream(sid, textures[sid], min_r, min_s):
                stats["admitted"] += 1
            else:
                stats["rejected"].append(sid)
        for sid in order:
            entry = self.entries.get(sid)
            if entry is None:
                continue  # rejected above
            for r, s in self.rank_configs(entry.texture):
                if (r, s) == (entry.resolution, entry.fps):
                    break  # already at the best feasible config
                if self.set_config(sid, r, s):
                    break
        return stats

    def rebuild(self, configs: dict[int, tuple[float, float]],
                textures: dict[int, float]) -> dict:
        """Seed the engine from a batch scheduler's decision.

        Streams whose assigned config cannot be embedded zero-jitter
        degrade to the minimum config; if even that fails they are
        evicted.  Returns ``{"admitted", "degraded", "evicted"}``.
        """
        if self.n_alive == 0:
            raise InfeasibleScheduleError("no alive server to rebuild onto")
        self.clear_streams()
        min_r = min(self.config_space.resolutions)
        min_s = min(self.config_space.fps_values)
        stats = {"admitted": 0, "degraded": 0, "evicted": []}
        for sid in sorted(configs):
            r, s = self.config_space.snap(*configs[sid])
            texture = textures.get(sid, 1.0)
            if self.add_stream(sid, texture, r, s):
                stats["admitted"] += 1
            elif (r, s) != (min_r, min_s) and self.add_stream(
                sid, texture, min_r, min_s
            ):
                stats["degraded"] += 1
            else:
                stats["evicted"].append(sid)
        return stats

    # -- outcome accounting ------------------------------------------------
    def assignment(self) -> dict[int, int]:
        """Memoized Hungarian map: group index → physical server index."""
        alive = self.alive_indices()
        rates = np.array([g.rate for g in self.groups])
        server_of_group = solve_group_assignment(rates, self.effective_bw())
        return {gi: alive[si] for gi, si in enumerate(server_of_group)}

    def outcome(self) -> np.ndarray:
        """Exact Eq. 2–5 outcome vector for the current schedule."""
        if not self.entries:
            raise ValueError("no admitted streams; outcome undefined")
        server_of = self.assignment()
        group_index = {id(g): i for i, g in enumerate(self.groups)}
        eff = {
            j: self.nominal_bw[j] * self.factor[j] * 1e6
            for j in self.alive_indices()
        }
        lat_total = 0.0
        for sid in sorted(self.entries):
            entry = self.entries[sid]
            inv_bw = 0.0
            for sub in entry.subs:
                j = server_of[group_index[id(sub.group)]]
                inv_bw += 1.0 / eff[j]
            lat_total += entry.ptime + entry.bits * inv_bw / len(entry.subs)
        n = len(self.entries)
        return np.array(
            [
                lat_total / n,
                self.acc_sum / n,
                self.net_sum,
                self.com_sum,
                self.eng_sum,
            ]
        )

    def stream_assignment(self) -> dict[int, tuple[int, ...]]:
        """Per-stream physical server(s), one per sub-stream, id-sorted."""
        server_of = self.assignment()
        group_index = {id(g): i for i, g in enumerate(self.groups)}
        return {
            sid: tuple(
                server_of[group_index[id(sub.group)]]
                for sub in self.entries[sid].subs
            )
            for sid in sorted(self.entries)
        }

    def decision_arrays(self) -> tuple[list[int], np.ndarray, np.ndarray]:
        """(sorted stream ids, resolutions, fps) of the current schedule."""
        sids = sorted(self.entries)
        r = np.array([self.entries[s].resolution for s in sids])
        s = np.array([self.entries[s].fps for s in sids])
        return sids, r, s

    def as_periodic_streams(self) -> tuple[list[PeriodicStream], list[int]]:
        """Flatten to (split streams, assignment) for the theory predicates."""
        server_of = self.assignment()
        group_index = {id(g): i for i, g in enumerate(self.groups)}
        streams: list[PeriodicStream] = []
        assignment: list[int] = []
        next_id = 0
        for sid in sorted(self.entries):
            entry = self.entries[sid]
            for sub in entry.subs:
                streams.append(
                    PeriodicStream(
                        stream_id=next_id,
                        fps=1.0 / sub.period,
                        resolution=entry.resolution,
                        processing_time=sub.ptime,
                        bits_per_frame=sub.bits,
                        parent_id=sid,
                    )
                )
                assignment.append(server_of[group_index[id(sub.group)]])
                next_id += 1
        return streams, assignment
