"""Greedy batch scheduler backed by the incremental serve engine.

Exposes the engine's best-first admission (:meth:`IncrementalPlanner.
solve_all`) through the standard :class:`~repro.core.scheduler.
Scheduler` protocol, so it registers in :mod:`repro.baselines` as
``greedy`` and plugs into every batch surface (CLI ``optimize``, bench,
chaos).  It is the serve loop's default full solve made comparable: one
deterministic pass admitting streams in id order at the
benefit-maximizing config that fits zero-jitter, no iterations, no RNG.
At M=1000 it finishes in well under a second where the GP-driven
optimizers take minutes — the fleet-scale warm-up the churn experiment
relies on.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import OptimizationOutcome, ScheduleDecision
from repro.core.scheduler import SchedulerMixin
from repro.pref.decision_maker import LinearL1Preference
from repro.serve.engine import IncrementalPlanner

__all__ = ["GreedyScheduler"]


class GreedyScheduler(SchedulerMixin):
    """One-shot best-first greedy admission over the serve engine.

    Parameters
    ----------
    problem:
        The scheduling problem to solve.
    preference:
        System benefit function; ranks candidate configs per stream.
    rng:
        Accepted for registry signature compatibility; unused (the
        greedy pass is fully deterministic).
    """

    method_name = "Greedy"

    def __init__(
        self,
        problem: EVAProblem,
        *,
        preference: LinearL1Preference,
        rng=None,
    ) -> None:
        self.problem = problem
        self.preference = preference

    def optimize(self) -> OptimizationOutcome:
        problem = self.problem
        planner = IncrementalPlanner.for_problem(
            problem, preference=self.preference
        )
        textures = {
            i: float(problem.textures[i]) for i in range(problem.n_streams)
        }
        stats = planner.solve_all(textures)
        outcome = planner.outcome()
        # Decision arrays cover every input stream; rejected streams are
        # pinned at the minimum config with a sentinel assignment of -1.
        min_r = min(problem.config_space.resolutions)
        min_s = min(problem.config_space.fps_values)
        m = problem.n_streams
        resolutions = np.full(m, float(min_r))
        fps = np.full(m, float(min_s))
        assignment = [-1] * m
        per_stream = planner.stream_assignment()
        for sid, entry in planner.entries.items():
            resolutions[sid] = entry.resolution
            fps[sid] = entry.fps
            assignment[sid] = int(per_stream[sid][0])
        decision = ScheduleDecision(
            resolutions=resolutions,
            fps=fps,
            assignment=assignment,
            outcome=outcome,
            benefit=float(self.preference.value(outcome)),
            method=self.method_name,
        )
        return OptimizationOutcome(
            decision=decision,
            true_benefit=decision.benefit,
            n_iterations=1,
            converged=True,
            history=[decision.benefit],
            extras={
                "admitted": stats["admitted"],
                "rejected": [int(s) for s in stats["rejected"]],
            },
        )
