"""Serve-loop events: the admission/arrival queue and its persistence.

The serve loop consumes a time-ordered stream of :class:`ServeEvent`
records — stream churn, bandwidth drift, server membership, and drift
alarms — grouped into epochs by the service's epoch clock.  The kinds
mirror :data:`repro.resilience.faults.FAULT_KINDS` (``from_fault``
converts a :class:`~repro.resilience.faults.FaultEvent` one-to-one), so
a chaos fault plan replays onto a live service unchanged.

Determinism is the core contract: a :class:`EventQueue` pops events in
``(time, submission order)`` order regardless of push order, and an
:class:`EventLog` JSON round-trips byte-for-byte, so the same seed and
log always reproduce the same decision sequence.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.resilience.faults import FaultEvent

__all__ = [
    "SERVE_EVENT_KINDS",
    "ServeEvent",
    "EventQueue",
    "EventLog",
    "from_fault",
]

#: Recognized serve event kinds (the ``serve.*`` glossary of the README).
SERVE_EVENT_KINDS = (
    "stream_join",
    "stream_leave",
    "bandwidth_drift",
    "server_down",
    "server_up",
    "drift",
)

#: fault kind -> (serve kind, value transform)
_FAULT_TO_SERVE = {
    "server_crash": "server_down",
    "server_recover": "server_up",
    "bandwidth_drop": "bandwidth_drift",
    "bandwidth_restore": "bandwidth_drift",
    "stream_leave": "stream_leave",
    "stream_join": "stream_join",
}


@dataclass(frozen=True)
class ServeEvent:
    """One serve-loop occurrence.

    Parameters
    ----------
    time:
        Wall-clock seconds on the service's simulated timeline.
    kind:
        One of :data:`SERVE_EVENT_KINDS`.
    target:
        Stream id (stream kinds), server index (server/bandwidth
        kinds), or ``-1`` when not applicable (``drift``).
    value:
        Kind-specific parameter — content texture for ``stream_join``,
        bandwidth multiplier for ``bandwidth_drift``.
    """

    time: float
    kind: str
    target: int = -1
    value: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in SERVE_EVENT_KINDS:
            raise ValueError(
                f"unknown serve event kind {self.kind!r}; "
                f"choose from {SERVE_EVENT_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.kind == "bandwidth_drift":
            v = 1.0 if self.value is None else float(self.value)
            if not (0 < v <= 1):
                raise ValueError(f"bandwidth factor must be in (0, 1], got {v}")
            object.__setattr__(self, "value", v)
        if self.kind == "stream_join" and self.value is not None:
            if self.value <= 0:
                raise ValueError(f"join texture must be > 0, got {self.value}")
        if self.kind != "drift" and self.target < 0:
            raise ValueError(
                f"{self.kind} needs a non-negative target, got {self.target}"
            )

    def to_dict(self) -> dict:
        out = {"time": float(self.time), "kind": self.kind, "target": int(self.target)}
        if self.value is not None:
            out["value"] = float(self.value)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "ServeEvent":
        return cls(
            time=float(d["time"]),
            kind=str(d["kind"]),
            target=int(d.get("target", -1)),
            value=d.get("value"),
        )


def from_fault(event: FaultEvent) -> ServeEvent:
    """Convert a resilience fault event into its serve equivalent.

    ``bandwidth_restore`` becomes a drift back to factor 1.0; the other
    kinds map one-to-one (crash/recover to membership, churn verbatim).
    """
    kind = _FAULT_TO_SERVE[event.kind]
    value: float | None = None
    if event.kind == "bandwidth_drop":
        value = event.value
    elif event.kind == "bandwidth_restore":
        value = 1.0
    return ServeEvent(time=event.time, kind=kind, target=event.target, value=value)


class EventQueue:
    """Deterministic time-ordered event queue (min-heap).

    Ties on ``time`` break by submission order, so the pop sequence is
    a pure function of the push sequence — the property the
    bit-identical-replay tests pin down.
    """

    def __init__(self, events: Iterable[ServeEvent] = ()) -> None:
        self._heap: list[tuple[float, int, ServeEvent]] = []
        self._seq = 0
        for e in events:
            self.push(e)

    def push(self, event: ServeEvent) -> None:
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1

    def peek(self) -> ServeEvent | None:
        """Next event without removing it (``None`` when empty)."""
        return self._heap[0][2] if self._heap else None

    def pop(self) -> ServeEvent:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[ServeEvent]:
        """Drain the queue in order (consumes it)."""
        while self._heap:
            yield self.pop()


@dataclass(frozen=True)
class EventLog:
    """A replayable churn workload: events plus the topology they assume.

    ``seed`` records the generator seed (informational; replay never
    re-draws).  ``n_streams``/``n_servers`` pin the initial topology so
    ``repro serve run --events`` can rebuild a matching problem, and
    ``horizon_s`` is the simulated duration the events span.
    """

    events: tuple[ServeEvent, ...] = ()
    seed: int | None = None
    n_streams: int = 0
    n_servers: int = 0
    horizon_s: float = 0.0

    def __post_init__(self) -> None:
        # Stable sort keeps generation order among same-time events.
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ServeEvent]:
        return iter(self.events)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_streams": int(self.n_streams),
            "n_servers": int(self.n_servers),
            "horizon_s": float(self.horizon_s),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EventLog":
        return cls(
            events=tuple(ServeEvent.from_dict(e) for e in d.get("events", ())),
            seed=d.get("seed"),
            n_streams=int(d.get("n_streams", 0)),
            n_servers=int(d.get("n_servers", 0)),
            horizon_s=float(d.get("horizon_s", 0.0)),
        )

    def save(self, path) -> Path:
        """Write the log as sorted-key JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path) -> "EventLog":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_fault_plan(cls, plan, *, n_streams: int = 0, n_servers: int = 0) -> "EventLog":
        """Replay a :class:`~repro.resilience.faults.FaultPlan` as serve events."""
        return cls(
            events=tuple(from_fault(e) for e in plan),
            seed=getattr(plan, "seed", None),
            n_streams=n_streams,
            n_servers=n_servers,
            horizon_s=getattr(plan, "horizon", 0.0),
        )
