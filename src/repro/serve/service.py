"""The long-lived scheduler service: epoch clock, event loop, decisions.

:class:`SchedulerService` turns "a scheduler run" into "a scheduler
process".  It holds the live schedule in an
:class:`~repro.serve.engine.IncrementalPlanner`, consumes
:class:`~repro.serve.events.ServeEvent` batches grouped by an epoch
clock, and emits one :class:`ServeDecision` per epoch:

* **warm-up** (epoch 0) is the only full solve on the happy path: a
  batch scheduler's :meth:`~repro.core.scheduler.Scheduler.optimize`
  (or the engine's greedy admission) seeds the per-stream decision
  cache;
* **steady state** replans incrementally — each event touches only the
  streams it names, every untouched stream's cached config is reused
  (``serve.cache_hits``), and the decision latency is the engine's own
  delta cost, measured per epoch under the ``serve.decision`` span;
* **full solves** after warm-up happen only on explicit ``drift``
  events or a ``reoptimize_every`` schedule, via the scheduler's
  :meth:`~repro.core.scheduler.Scheduler.replan` (PaMO warm-starts).

Overload hardening layers on top of that loop: joins route through an
:class:`~repro.serve.admission.AdmissionController` (priority classes,
benefit-aware eviction, token-bucket and queue-depth shedding), a
:class:`~repro.resilience.breaker.CircuitBreaker` guards the full-solve
path and drops the service into **brownout** (incremental-only deltas,
min-config admissions) when solves breach their deadline or raise, and
a :class:`RemediationPolicy` turns the attached
:class:`~repro.obs.health.HealthMonitor`'s ``alert.fired`` edges into
the same actions (enter brownout / shed joins / force a checkpoint)
instead of only reporting them.

Counters: ``serve.replans`` (epoch decisions), ``serve.full_solves``,
``serve.cache_hits``, ``serve.events``, ``serve.solved``,
``serve.repairs``, ``serve.evictions``, ``serve.admission_rejects``,
plus the hardening families ``admit.rejected``/``admit.shed``/
``admit.evicted_for``, ``breaker.*``, ``serve.brownout_*``, and
``serve.suppressed_full_solves``.

The service pickles whole (planner, queue, scheduler, counters), so
:func:`repro.resilience.checkpoint.save_checkpoint` gives mid-run
checkpoint/resume with a bit-identical continuation — the determinism
tests replay the same event log straight and split across a resume and
require identical decision signatures.  With a
:class:`~repro.serve.wal.WriteAheadLog` attached, every submitted
event and every epoch decision fingerprint also lands in an
append-only journal, so a SIGKILL loses nothing the checkpoint missed
(``repro serve recover`` = checkpoint + WAL suffix replay).
"""

from __future__ import annotations

import hashlib
import struct
import time
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.problem import EVAProblem
from repro.core.result import ScheduleDecision
from repro.obs import telemetry
from repro.pref.decision_maker import LinearL1Preference
from repro.sched.grouping import InfeasibleScheduleError
from repro.serve.admission import AdmissionController
from repro.serve.engine import IncrementalPlanner
from repro.serve.events import EventQueue, ServeEvent

__all__ = [
    "DECISION_WINDOW",
    "RemediationPolicy",
    "SchedulerService",
    "ServeDecision",
    "ServeEpochTick",
    "RegistryFactory",
]

#: Samples in the rolling decision window — THE definition of the
#: serve loop's "current" latency percentiles and benefit baseline.
#: :meth:`SchedulerService.summary`, :meth:`SchedulerService.
#: health_snapshot`, and :func:`repro.serve.report.summarize_serve_run`
#: all compute p50/p95/p99 over the most recent ``DECISION_WINDOW``
#: epochs, so a scrape mid-run and a post-hoc report agree.
DECISION_WINDOW = 512

#: Instrument keys mirrored as monotone counters, and how many latency
#: samples may sit in the scrape-time flush buffer before the serve
#: thread flushes inline (bounds memory on scraper-less runs).
_COUNTER_KEYS = (
    "epochs", "full_solves", "cache_hits", "solved", "rejects", "evictions",
    "shed",
)
_FLUSH_EVERY = 4096


def _pct(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted list (0 if empty)."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] * (1 - (pos - lo)) + ordered[hi] * (pos - lo)


class _WindowStats:
    """Incrementally-maintained rolling window of per-epoch stats.

    The serve loop pushes one entry per epoch and the observability
    path reads percentiles/sums per epoch, so everything here is
    amortized O(log n): the latency order statistic lives in a
    bisect-maintained sorted list and the cache-hit/benefit aggregates
    are running sums updated on push/evict — a full O(n) pass per
    epoch would blow the <2% metrics-overhead budget.
    """

    def __init__(self, maxlen: int = DECISION_WINDOW) -> None:
        self.maxlen = int(maxlen)
        self.entries: deque[tuple] = deque()
        self.lat_sorted: list[float] = []
        self.hits = 0
        self.solved = 0
        self.benefit_sum = 0.0
        self.benefit_n = 0
        self.last_benefit: float | None = None

    def push(
        self,
        latency_s: float,
        benefit: float | None,
        cache_hits: int,
        solved: int,
        full_solve: bool,
    ) -> None:
        if len(self.entries) >= self.maxlen:
            old = self.entries.popleft()
            self.lat_sorted.pop(bisect_left(self.lat_sorted, old[0]))
            self.hits -= old[2]
            self.solved -= old[3]
            if old[1] is not None:
                self.benefit_sum -= old[1]
                self.benefit_n -= 1
        entry = (
            float(latency_s),
            None if benefit is None else float(benefit),
            int(cache_hits),
            int(solved),
            bool(full_solve),
        )
        self.entries.append(entry)
        insort(self.lat_sorted, entry[0])
        self.hits += entry[2]
        self.solved += entry[3]
        if entry[1] is not None:
            self.benefit_sum += entry[1]
            self.benefit_n += 1
            self.last_benefit = entry[1]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def baseline(self) -> float | None:
        """Rolling mean benefit over the window (None before any score)."""
        return self.benefit_sum / self.benefit_n if self.benefit_n else None

    @classmethod
    def from_entries(
        cls, entries: Iterable[tuple], maxlen: int = DECISION_WINDOW
    ) -> "_WindowStats":
        """Rebuild from raw entry tuples (pre-refactor checkpoints)."""
        window = cls(maxlen)
        for entry in entries:
            window.push(*entry)
        return window


def _get_cache_hit_ratio(svc, w: _WindowStats) -> float:
    total = w.hits + w.solved
    return w.hits / total if total else 0.0


def _get_benefit_drop(svc, w: _WindowStats) -> float | None:
    benefit, baseline = w.last_benefit, w.baseline
    if benefit is None or baseline is None:
        return None
    return max(0.0, (baseline - benefit) / max(abs(baseline), 1e-12))


#: ``metric name -> getter(service, window)`` for every documented
#: :meth:`SchedulerService.health_snapshot` key.  The compiled SLO
#: probe (:meth:`SchedulerService._build_slo_probe`) evaluates only the
#: getters the attached rules reference — flat single-call functions,
#: since this runs every epoch on the hot path.
_SLO_GETTERS: dict[str, Callable] = {
    "epoch": lambda svc, w: svc.epoch,
    "window": lambda svc, w: len(w.entries),
    "decision_p50_s": lambda svc, w: _pct(w.lat_sorted, 0.50),
    "decision_p95_s": lambda svc, w: _pct(w.lat_sorted, 0.95),
    "decision_p99_s": lambda svc, w: _pct(w.lat_sorted, 0.99),
    "decision_max_s": lambda svc, w: w.lat_sorted[-1] if w.lat_sorted else 0.0,
    "cache_hit_ratio": _get_cache_hit_ratio,
    "queue_depth": lambda svc, w: len(svc.queue),
    "n_streams": lambda svc, w: len(svc.planner.entries),
    "n_alive_servers": lambda svc, w: svc.planner.n_alive,
    "benefit": lambda svc, w: w.last_benefit,
    "benefit_baseline": lambda svc, w: w.baseline,
    "benefit_drop_ratio": _get_benefit_drop,
    "mode_brownout": lambda svc, w: 1 if svc.mode == "brownout" else 0,
    "breaker_state": lambda svc, w: (
        0 if svc.breaker is None else svc.breaker.rank
    ),
}


@dataclass(frozen=True)
class RemediationPolicy:
    """How ``alert.fired``/``alert.resolved`` edges steer the service.

    An alert whose severity reaches ``brownout_severity`` puts the
    service into brownout (and the matching ``alert.resolved`` edge
    lifts it, once no other reason holds); one reaching
    ``shed_severity`` additionally turns on join shedding; one
    reaching ``checkpoint_severity`` forces an immediate checkpoint to
    the run's checkpoint path (crash insurance while unhealthy).
    ``None`` disables that action.  Severities are the
    :data:`repro.obs.health.SEVERITIES` names.
    """

    brownout_severity: str | None = "unhealthy"
    shed_severity: str | None = None
    checkpoint_severity: str | None = None

    def __post_init__(self) -> None:
        from repro.obs.health import SEVERITIES

        for name in ("brownout_severity", "shed_severity", "checkpoint_severity"):
            value = getattr(self, name)
            if value is not None and value not in SEVERITIES[1:]:
                raise ValueError(
                    f"{name} must be one of {SEVERITIES[1:]} or None, "
                    f"got {value!r}"
                )

    def to_dict(self) -> dict:
        return {
            "brownout_severity": self.brownout_severity,
            "shed_severity": self.shed_severity,
            "checkpoint_severity": self.checkpoint_severity,
        }


@dataclass
class ServeDecision:
    """One epoch's scheduling decision and its bookkeeping.

    ``signature()`` is the determinism fingerprint: everything that
    must replay bit-identically (configs, placement, outcome, benefit)
    and nothing that legitimately varies (wall-clock latency).
    """

    epoch: int
    time: float
    events: list[str]
    stream_ids: list[int]
    resolutions: np.ndarray
    fps: np.ndarray
    assignment: dict[int, tuple[int, ...]]
    outcome: np.ndarray | None
    benefit: float | None
    full_solve: bool
    cache_hits: int
    solved: int
    rejected: list[int]
    evicted: list[int]
    latency_s: float = 0.0
    shed: list[int] = field(default_factory=list)
    mode: str = "normal"

    def signature(self) -> tuple:
        """Bit-exact replay fingerprint (excludes wall-clock latency)."""
        return (
            self.epoch,
            tuple(self.events),
            tuple(self.stream_ids),
            tuple(float(v) for v in self.resolutions),
            tuple(float(v) for v in self.fps),
            tuple(sorted(self.assignment.items())),
            None if self.outcome is None else tuple(float(v) for v in self.outcome),
            None if self.benefit is None else float(self.benefit),
            self.full_solve,
            self.cache_hits,
            self.solved,
            tuple(self.rejected),
            tuple(self.evicted),
            tuple(self.shed),
            self.mode,
        )

    def sig_hash(self) -> str:
        """Short stable hash of the decision (the WAL fingerprint).

        Covers the same content as :meth:`signature`, but the float
        arrays go into the digest as raw little-endian IEEE-754 bytes
        instead of ``repr`` text — identical determinism (bit-equal
        floats hash bit-identically across processes), an order of
        magnitude cheaper on the journaled per-epoch hot path.
        """
        h = hashlib.sha256()
        h.update(f"{self.mode}#{len(self.events)}|".encode("utf-8"))
        h.update("|".join(self.events).encode("utf-8"))
        # One length-prefixed int vector covers every discrete field —
        # length prefixes keep adjacent sequences from aliasing.
        ints = [self.epoch, int(self.full_solve), self.cache_hits, self.solved]
        for seq in (self.stream_ids, self.rejected, self.evicted, self.shed):
            ints.append(len(seq))
            ints.extend(seq)
        ints.extend(
            x
            for sid, servers in sorted(self.assignment.items())
            for x in (sid, len(servers), *servers)
        )
        h.update(struct.pack(f"<{len(ints)}q", *ints))
        h.update(np.asarray(self.resolutions, dtype="<f8").tobytes())
        h.update(np.asarray(self.fps, dtype="<f8").tobytes())
        if self.outcome is not None:
            h.update(np.asarray(self.outcome, dtype="<f8").tobytes())
        if self.benefit is not None:
            h.update(np.float64(self.benefit).tobytes())
        return h.hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "epoch": int(self.epoch),
            "time": float(self.time),
            "events": list(self.events),
            "n_streams": len(self.stream_ids),
            "stream_ids": [int(s) for s in self.stream_ids],
            "resolutions": [float(v) for v in self.resolutions],
            "fps": [float(v) for v in self.fps],
            "assignment": {
                str(k): [int(q) for q in v] for k, v in self.assignment.items()
            },
            "outcome": None if self.outcome is None else [
                float(v) for v in self.outcome
            ],
            "benefit": None if self.benefit is None else float(self.benefit),
            "full_solve": bool(self.full_solve),
            "cache_hits": int(self.cache_hits),
            "solved": int(self.solved),
            "rejected": [int(s) for s in self.rejected],
            "evicted": [int(s) for s in self.evicted],
            "shed": [int(s) for s in self.shed],
            "mode": self.mode,
            "latency_s": float(self.latency_s),
        }


@dataclass
class ServeEpochTick:
    """One monitoring epoch of :meth:`SchedulerService.run_epochs`.

    Field-compatible with :class:`repro.core.online.EpochRecord` so the
    legacy ``OnlineScheduler`` shim converts trivially.
    """

    epoch: int
    expected: np.ndarray
    observed: np.ndarray
    deviation: float
    reoptimized: bool


class RegistryFactory:
    """Picklable ``factory(problem, epoch) -> Scheduler`` over the registry.

    The serve checkpoint pickles the whole service, factory included,
    so CLI runs use this named class instead of a closure.
    """

    def __init__(self, method: str, preference, seed: int = 0, **kwargs) -> None:
        self.method = method
        self.preference = preference
        self.seed = seed
        self.kwargs = dict(kwargs)

    def __call__(self, problem: EVAProblem, epoch: int = 0):
        from repro.baselines import make_scheduler

        return make_scheduler(
            self.method,
            problem,
            preference=self.preference,
            rng=self.seed + epoch,
            **self.kwargs,
        )


class SchedulerService:
    """Event-driven online scheduler (see module docstring).

    Parameters
    ----------
    problem:
        Initial topology: its streams are the warm-up population, its
        servers/knobs/outcome functions the substrate for the whole run.
    preference:
        System benefit function scoring every epoch decision.
    scheduler_factory:
        Optional ``factory(problem, epoch) -> Scheduler`` for full
        solves (warm-up and drift).  ``None`` uses the engine's greedy
        admission as the full solve — the fast path for large fleets.
    epoch_s:
        Epoch clock granularity; same-epoch events batch into one
        decision.
    reoptimize_every:
        Force a full solve every N epochs (0 = never; incremental only).
    reuse_scheduler:
        Keep one scheduler across full solves and :meth:`~repro.core.
        scheduler.Scheduler.replan` it (warm starts).  ``False``
        re-instantiates per solve — the legacy ``OnlineScheduler``
        contract.
    admission:
        :class:`~repro.serve.admission.AdmissionController` deciding
        joins.  The default controller admits exactly what the bare
        planner admits (no priorities, no shedding) — prior behavior.
    breaker:
        Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        guarding full solves; open = brownout.
    remediation:
        Optional :class:`RemediationPolicy` mapping health-monitor
        alert edges to brownout/shed/checkpoint actions.
    """

    def __init__(
        self,
        problem: EVAProblem,
        *,
        preference: LinearL1Preference,
        scheduler_factory: Callable[..., object] | None = None,
        epoch_s: float = 1.0,
        reoptimize_every: int = 0,
        reuse_scheduler: bool = True,
        admission: AdmissionController | None = None,
        breaker=None,
        remediation: RemediationPolicy | None = None,
    ) -> None:
        if epoch_s <= 0:
            raise ValueError(f"epoch_s must be > 0, got {epoch_s}")
        if reoptimize_every < 0:
            raise ValueError(
                f"reoptimize_every must be >= 0, got {reoptimize_every}"
            )
        self.problem = problem
        self.preference = preference
        self.scheduler_factory = scheduler_factory
        self.epoch_s = float(epoch_s)
        self.reoptimize_every = int(reoptimize_every)
        self.reuse_scheduler = bool(reuse_scheduler)
        self.admission = admission if admission is not None else AdmissionController()
        self.breaker = breaker
        self.remediation = remediation
        # Operating mode: "normal", or "brownout" (incremental-only
        # deltas, min-config admissions).  The reason sets track *why*
        # — brownout lifts only when every reason has cleared.
        self.mode = "normal"
        self._brownout_reasons: set[str] = set()
        self._shed_reasons: set[str] = set()
        # Write-ahead log: transient handle + the persisted high-water
        # sequence number (how recovery knows which WAL suffix to replay).
        self.wal = None
        self.wal_seq = 0
        # epoch -> (mode, full_solve) pins during WAL replay; empty on
        # live runs.
        self._forced_modes: dict[int, tuple[str, bool]] = {}
        self._stop = False
        self._ckpt_path = None
        self.scheduler = None
        self.planner = IncrementalPlanner.for_problem(problem, preference=preference)
        self.queue = EventQueue()
        self.decisions: list[ServeDecision] = []
        self.textures: dict[int, float] = {
            i: float(problem.textures[i]) for i in range(problem.n_streams)
        }
        self._next_sid = problem.n_streams
        self.epoch = 0
        self.started = False
        self.last_decision: ScheduleDecision | None = None
        # Becomes True once churn events mutate the topology, after
        # which full solves rebuild the problem from live state instead
        # of reusing the constructor's problem object.
        self._topology_dirty = False
        # Rolling per-epoch stats (latency, benefit, hits, solved,
        # full) — the bounded window behind summary()/health_snapshot().
        self._window = _WindowStats(DECISION_WINDOW)
        # Live observability (attach_observability): a MetricsRegistry
        # mirror and a HealthMonitor driving /healthz + alert events.
        self.metrics = None
        self.monitor = None
        self.alerts: list[dict] = []
        self._mhandles: dict | None = None
        self._slo_probe: Callable[[], dict] | None = None
        # Counter deltas accumulate in plain ints per epoch and flush
        # into the registry at scrape time (or every _FLUSH_EVERY
        # epochs) — the per-epoch path stays lock- and registry-free.
        self._mcounts: dict[str, int] | None = None
        self._mflushed: dict[str, int] = {}
        self._mpending: list[float] = []
        self._mpending_done = 0

    # -- topology ----------------------------------------------------------
    def current_problem(self) -> EVAProblem | None:
        """Degraded problem over active streams and alive servers.

        ``None`` when nothing survives (no stream or no server) — the
        same contract as :func:`repro.resilience.chaos.degraded_problem`.
        """
        bw = self.planner.effective_bw()
        sids = sorted(self.textures)
        if bw.size == 0 or not sids:
            return None
        return EVAProblem(
            n_streams=len(sids),
            bandwidths_mbps=bw,
            config_space=self.problem.config_space,
            textures=[self.textures[s] for s in sids],
            profile=self.problem.profile,
            encoder=self.problem.encoder,
            outcomes=self.problem.outcomes,
        )

    def epoch_of(self, t: float) -> int:
        """Epoch index for an event time (epoch 0 is the warm-up)."""
        return int(t / self.epoch_s + 1e-9) + 1

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> ServeDecision:
        """Warm-up full solve over the initial stream population."""
        if self.started:
            raise RuntimeError("service already started")
        self.started = True
        t0 = time.perf_counter()
        with telemetry.span("serve.decision"):
            stats = self._full_solve(reason="warmup", epoch=0)
            decision = self._emit_decision(
                epoch=0,
                t=0.0,
                events=[],
                full_solve=True,
                solved=len(self.planner.entries),
                cache_hits=0,
                rejected=stats.get("rejected", []),
                evicted=stats.get("evicted", []),
                latency_s=time.perf_counter() - t0,
            )
        return decision

    def submit(self, events: Iterable[ServeEvent]) -> int:
        """Queue events for :meth:`run`; returns how many were queued.

        With a WAL attached every event is journaled (with its
        sequence number) *before* it enters the queue — write-ahead —
        so a crash after ``submit`` returns can always replay it.
        """
        n = 0
        wal = self.wal
        for e in events:
            if wal is not None:
                self.wal_seq += 1
                wal.append_event(self.wal_seq, e)
            self.queue.push(e)
            n += 1
        return n

    def attach_wal(self, wal) -> None:
        """Attach a :class:`~repro.serve.wal.WriteAheadLog`.

        Transient like the metrics registry (checkpoints drop the file
        handle but keep :attr:`wal_seq`); attach before :meth:`start`
        so the warm-up decision is journaled too.
        """
        self.wal = wal

    def request_stop(self) -> None:
        """Ask :meth:`run` to stop after the epoch in flight (graceful).

        Signal-handler safe: sets a flag the run loop checks between
        epochs — the current epoch drains, the final checkpoint and
        WAL sync still happen, and :meth:`run` returns normally.
        """
        self._stop = True

    def run(
        self,
        *,
        max_epochs: int | None = None,
        checkpoint_path=None,
        checkpoint_every: int = 0,
        pace_s: float = 0.0,
    ) -> list[ServeDecision]:
        """Drain the event queue epoch by epoch; returns new decisions.

        ``max_epochs`` bounds this call (the queue keeps the rest —
        how the mid-run checkpoint tests split a run).  With
        ``checkpoint_path`` the whole service pickles every
        ``checkpoint_every`` epochs (and at the end of the call).
        ``pace_s`` sleeps between epochs — replayed logs drain in
        milliseconds otherwise, too fast for a live scraper to watch.
        :meth:`request_stop` (the CLI's SIGTERM/SIGINT handler) ends
        the loop after the epoch in flight; the final checkpoint and
        WAL sync still run.
        """
        if not self.started:
            self.start()
        self._stop = False
        self._ckpt_path = checkpoint_path or None
        made: list[ServeDecision] = []
        try:
            while self.queue and (max_epochs is None or len(made) < max_epochs):
                first = self.queue.peek()
                epoch = self.epoch_of(first.time)
                batch = [self.queue.pop()]
                while self.queue and self.epoch_of(self.queue.peek().time) == epoch:
                    batch.append(self.queue.pop())
                made.append(self.process_epoch(epoch, batch))
                if (
                    checkpoint_path
                    and checkpoint_every > 0
                    and len(made) % checkpoint_every == 0
                ):
                    self.save_checkpoint(checkpoint_path)
                if self._stop:
                    telemetry.counter("serve.graceful_stops")
                    telemetry.event("serve.graceful_stop", epoch=int(self.epoch))
                    break
                if pace_s > 0 and self.queue:
                    time.sleep(pace_s)
            if checkpoint_path and made:
                self.save_checkpoint(checkpoint_path)
        finally:
            if self.wal is not None:
                self.wal.sync()
        return made

    # -- the per-epoch decision -------------------------------------------
    def process_epoch(self, epoch: int, batch: list[ServeEvent]) -> ServeDecision:
        """Apply one epoch's events and produce its decision.

        ``mode`` for the epoch (what admissions and the decision
        record see) is the operating mode at epoch start — or, during
        WAL replay, the mode the original run journaled for this
        epoch, which pins recovered decisions to the recorded ones
        even when a transition was triggered by wall-clock latency.
        """
        self.epoch = epoch
        forced = self._forced_modes.pop(epoch, None) if self._forced_modes else None
        mode = forced[0] if forced is not None else self.mode
        shed_mode = bool(self._shed_reasons)
        t = batch[-1].time if batch else epoch * self.epoch_s
        t0 = time.perf_counter()
        with telemetry.span("serve.decision"):
            touched: set[int] = set()
            solved = 0
            rejected: list[int] = []
            evicted: list[int] = []
            shed: list[int] = []
            want_full = False
            if any(ev.kind != "drift" for ev in batch):
                self._topology_dirty = True
            for ev in batch:
                if ev.kind == "stream_join":
                    sid = ev.target if ev.target >= 0 else self._next_sid
                    if sid in self.planner.entries:
                        sid = self._next_sid
                    self._next_sid = max(self._next_sid, sid + 1)
                    texture = float(ev.value) if ev.value is not None else 1.0
                    out = self.admission.request_join(
                        self.planner,
                        sid,
                        texture,
                        epoch=epoch,
                        queue_depth=len(self.queue),
                        min_config=mode == "brownout",
                        shed_mode=shed_mode,
                    )
                    if out.admitted:
                        self.textures[sid] = texture
                        touched.add(sid)
                        solved += 1
                        if out.evicted:
                            for vid in out.evicted:
                                self.textures.pop(vid, None)
                                touched.add(vid)
                            evicted.extend(out.evicted)
                            telemetry.counter(
                                "admit.evicted_for", len(out.evicted)
                            )
                            telemetry.counter(
                                "serve.evictions", len(out.evicted)
                            )
                    elif out.action == "shed":
                        shed.append(sid)
                        telemetry.counter("admit.shed")
                    else:
                        rejected.append(sid)
                        telemetry.counter("admit.rejected")
                        telemetry.counter("serve.admission_rejects")
                    for vid in out.dropped:  # failed rollback (pathological)
                        self.textures.pop(vid, None)
                        touched.add(vid)
                        evicted.append(vid)
                elif ev.kind == "stream_leave":
                    if self.planner.remove_stream(ev.target):
                        self.textures.pop(ev.target, None)
                        touched.add(ev.target)
                elif ev.kind == "bandwidth_drift":
                    if 0 <= ev.target < self.planner.n_servers:
                        self.planner.set_bandwidth_factor(
                            ev.target, float(ev.value)
                        )
                elif ev.kind == "server_down":
                    stats = self.planner.server_down(
                        ev.target, priority_of=self.admission.priority_of
                    )
                    repaired = stats["migrated"] + stats["degraded"]
                    solved += stats["degraded"]
                    touched.update(stats["evicted"])
                    for sid in stats["evicted"]:
                        self.textures.pop(sid, None)
                    evicted.extend(stats["evicted"])
                    if repaired:
                        telemetry.counter("serve.repairs", repaired)
                elif ev.kind == "server_up":
                    self.planner.server_up(ev.target)
                elif ev.kind == "drift":
                    want_full = True
            if self.reoptimize_every and epoch % self.reoptimize_every == 0:
                want_full = True
            # The breaker sees every *wanted* full solve, replay or
            # not, so its state marches identically on deterministic
            # failures; only the run/skip choice is pinned by `forced`.
            probe = False
            if want_full and self.breaker is not None:
                allowed = self.breaker.allow(epoch)
                probe = allowed and self.breaker.state == "half_open"
                if not allowed and forced is None:
                    want_full = False
                    telemetry.counter("breaker.short_circuits")
            if forced is not None:
                want_full = forced[1]
            elif want_full and mode == "brownout" and not probe:
                # Brownout: incremental-only.  Breaker probes bypass
                # this (the breaker can only close by trying).
                want_full = False
                telemetry.counter("serve.suppressed_full_solves")
            full_stats: dict = {}
            if want_full:
                t_solve = time.perf_counter()
                failed = False
                try:
                    full_stats = self._full_solve(reason="drift", epoch=epoch)
                except InfeasibleScheduleError:
                    raise
                except Exception as exc:
                    if self.breaker is None:
                        raise
                    # Batch-scheduler failures raise before the engine
                    # re-embeds, so the live schedule is intact; count
                    # the failure and carry on incrementally.
                    failed = True
                    full_stats = {}
                    telemetry.counter("serve.full_solve_errors")
                    telemetry.event(
                        "serve.full_solve_error",
                        epoch=int(epoch),
                        error=repr(exc),
                    )
                if not failed:
                    solved = len(self.planner.entries)
                    touched.update(self.planner.entries)
                if self.breaker is not None:
                    label = self.breaker.record(
                        epoch=epoch,
                        duration_s=time.perf_counter() - t_solve,
                        failed=failed,
                    )
                    if label is not None:
                        self._on_breaker(label, epoch)
                if failed:
                    want_full = False  # the decision records an incremental epoch
            cache_hits = max(0, len(self.planner.entries) - len(
                touched & set(self.planner.entries)
            )) if not want_full else 0
            decision = self._emit_decision(
                epoch=epoch,
                t=t,
                events=[self._event_label(e) for e in batch],
                full_solve=want_full,
                solved=solved,
                cache_hits=cache_hits,
                rejected=rejected + full_stats.get("rejected", []),
                evicted=evicted + full_stats.get("evicted", []),
                shed=shed,
                mode=mode,
                latency_s=time.perf_counter() - t0,
            )
        telemetry.counter("serve.events", len(batch))
        return decision

    # -- brownout / remediation --------------------------------------------
    def _on_breaker(self, label: str, epoch: int) -> None:
        if label == "open":
            self._enter_brownout("breaker", epoch=epoch)
        elif label == "close":
            self._exit_brownout("breaker", epoch=epoch)

    def _enter_brownout(self, reason: str, *, epoch: int) -> None:
        self._brownout_reasons.add(reason)
        if self.mode != "brownout":
            self.mode = "brownout"
            telemetry.counter("serve.brownout_enters")
            telemetry.event(
                "serve.brownout_enter", epoch=int(epoch), reason=reason
            )

    def _exit_brownout(self, reason: str, *, epoch: int) -> None:
        self._brownout_reasons.discard(reason)
        if not self._brownout_reasons and self.mode == "brownout":
            self.mode = "normal"
            telemetry.counter("serve.brownout_exits")
            telemetry.event(
                "serve.brownout_exit", epoch=int(epoch), reason=reason
            )

    def _remediate(self, edge: dict, *, epoch: int) -> None:
        """Close the loop on one health-alert edge (see RemediationPolicy)."""
        from repro.obs.health import severity_rank

        policy = self.remediation
        if policy is None:
            return
        rank = severity_rank(edge.get("severity", "degraded"))
        reason = f"alert:{edge.get('rule')}"
        if edge.get("event") == "alert.fired":
            if (
                policy.shed_severity is not None
                and rank >= severity_rank(policy.shed_severity)
            ):
                self._shed_reasons.add(reason)
                telemetry.counter("serve.shed_mode_enters")
            if (
                policy.brownout_severity is not None
                and rank >= severity_rank(policy.brownout_severity)
            ):
                self._enter_brownout(reason, epoch=epoch)
            if (
                policy.checkpoint_severity is not None
                and rank >= severity_rank(policy.checkpoint_severity)
                and self._ckpt_path
                and not self._forced_modes  # not mid-replay
            ):
                self.save_checkpoint(self._ckpt_path)
                telemetry.counter("serve.remediation_checkpoints")
        else:  # alert.resolved
            self._shed_reasons.discard(reason)
            self._exit_brownout(reason, epoch=epoch)

    @staticmethod
    def _event_label(e: ServeEvent) -> str:
        label = f"{e.kind}:{e.target}"
        if e.value is not None:
            label += f"x{e.value:g}"
        return label

    def _deploy_batch(self, *, reason: str, epoch: int) -> dict | None:
        """Solve the full problem and deploy; no engine re-embedding.

        Returns engine stats on the factory-less path (the greedy solve
        IS the engine state); ``None`` on the batch-scheduler path,
        where only ``last_decision`` is updated.
        """
        telemetry.counter("serve.full_solves")
        if self.scheduler_factory is None:
            stats = self.planner.solve_all(dict(self.textures))
            for sid in stats.get("rejected", []):
                self.textures.pop(sid, None)
            self.last_decision = None
            return stats
        prob = self.current_problem() if self._topology_dirty else self.problem
        if prob is None:
            raise InfeasibleScheduleError(
                "no surviving stream/server to solve for"
            )
        if self.scheduler is None or not self.reuse_scheduler:
            self.scheduler = self.scheduler_factory(prob, epoch)
            out = self.scheduler.optimize()
        else:
            out = self.scheduler.replan(prob, reason=reason)
        self.last_decision = out.decision
        return None

    def _full_solve(self, *, reason: str, epoch: int) -> dict:
        """Re-solve and re-embed into the engine (event-loop full solve)."""
        stats = self._deploy_batch(reason=reason, epoch=epoch)
        if stats is not None:
            return stats
        decision = self.last_decision
        sids = sorted(self.textures)
        configs = {
            sid: (float(decision.resolutions[i]), float(decision.fps[i]))
            for i, sid in enumerate(sids)
        }
        stats = self.planner.rebuild(configs, self.textures)
        for sid in stats.get("evicted", []):
            self.textures.pop(sid, None)
        return stats

    def _emit_decision(
        self,
        *,
        epoch: int,
        t: float,
        events: list[str],
        full_solve: bool,
        solved: int,
        cache_hits: int,
        rejected: list[int],
        evicted: list[int],
        latency_s: float,
        shed: list[int] | None = None,
        mode: str = "normal",
    ) -> ServeDecision:
        sids, r, s = self.planner.decision_arrays()
        outcome = benefit = None
        assignment: dict[int, tuple[int, ...]] = {}
        if sids and self.planner.n_alive:
            outcome = self.planner.outcome()
            benefit = float(self.preference.value(outcome))
            assignment = self.planner.stream_assignment()
        decision = ServeDecision(
            epoch=epoch,
            time=t,
            events=events,
            stream_ids=sids,
            resolutions=r,
            fps=s,
            assignment=assignment,
            outcome=outcome,
            benefit=benefit,
            full_solve=full_solve,
            cache_hits=cache_hits,
            solved=solved,
            rejected=rejected,
            evicted=evicted,
            latency_s=latency_s,
            shed=list(shed) if shed else [],
            mode=mode,
        )
        self.decisions.append(decision)
        self._window.push(
            latency_s, benefit, cache_hits, solved, bool(full_solve)
        )
        if self.wal is not None:
            self.wal.append_epoch(
                epoch=epoch,
                mode=mode,
                full=bool(full_solve),
                sig=decision.sig_hash(),
            )
        telemetry.counter("serve.replans")
        if not full_solve:  # serve.full_solves counted in _full_solve
            telemetry.counter("serve.cache_hits", cache_hits)
        telemetry.counter("serve.solved", solved)
        if telemetry.enabled:
            telemetry.event(
                "serve.decision",
                epoch=int(epoch),
                time=float(t),
                events=events,
                n_streams=len(sids),
                n_alive_servers=int(self.planner.n_alive),
                benefit=benefit,
                outcome=None if outcome is None else [float(v) for v in outcome],
                full_solve=bool(full_solve),
                cache_hits=int(cache_hits),
                solved=int(solved),
                rejected=[int(x) for x in rejected],
                evicted=[int(x) for x in evicted],
                shed=[int(x) for x in decision.shed],
                mode=mode,
                latency_s=float(latency_s),
            )
        self._observe(decision)
        return decision

    # -- live observability ------------------------------------------------
    def attach_observability(self, *, metrics=None, monitor=None) -> None:
        """Attach a live metrics mirror and/or a health monitor.

        ``metrics`` is a :class:`repro.obs.metrics.MetricsRegistry`:
        event-driven instruments (counters, the latency histogram) are
        updated after every epoch decision, while derived gauges
        (streams, queue depth, hit ratio, benefit) refresh lazily at
        scrape time via a registry collect hook — the gauge-function
        idiom, which keeps the per-epoch cost inside the <2% budget.
        ``monitor`` is a :class:`repro.obs.health.HealthMonitor`
        evaluated against :meth:`health_snapshot` each epoch, its edge
        events appended to :attr:`alerts` and emitted as
        ``alert.fired``/``alert.resolved`` telemetry.  Both are
        transient: checkpoints drop the registry (it owns locks), so
        re-attach after :meth:`resume`.
        """
        if self.metrics is not None:
            self.metrics.remove_collect_hook(self._refresh_gauges)
        self.metrics = metrics
        self.monitor = monitor
        self._mhandles = None if metrics is None else {
            "epochs": metrics.counter(
                "serve_epochs_total", "epoch decisions made"
            ),
            "full_solves": metrics.counter(
                "serve_full_solves_total", "full re-solves"
            ),
            "cache_hits": metrics.counter(
                "serve_cache_hits_total", "cached stream decisions"
            ),
            "solved": metrics.counter(
                "serve_solved_total", "re-solved stream decisions"
            ),
            "rejects": metrics.counter(
                "serve_admission_rejects_total", "rejected joins"
            ),
            "evictions": metrics.counter(
                "serve_evictions_total", "evicted streams"
            ),
            "shed": metrics.counter(
                "serve_sheds_total", "joins shed by admission control"
            ),
            "latency": metrics.histogram(
                "serve_decision_latency_seconds",
                "per-epoch decision latency",
                window_samples=DECISION_WINDOW,
            ),
            "streams": metrics.gauge("serve_streams", "admitted streams"),
            "alive": metrics.gauge("serve_alive_servers", "servers up"),
            "queue": metrics.gauge(
                "serve_queue_depth", "events waiting in the queue"
            ),
            "hit_ratio": metrics.gauge(
                "serve_cache_hit_ratio", "windowed cached/(cached+solved)"
            ),
            "benefit": metrics.gauge(
                "serve_benefit", "current total system benefit"
            ),
            "baseline": metrics.gauge(
                "serve_benefit_baseline", "rolling mean benefit (window)"
            ),
            "drop": metrics.gauge(
                "serve_benefit_drop_ratio",
                "relative drop of current benefit vs rolling baseline",
            ),
            "health": metrics.gauge(
                "serve_health", "health state (0=ok, 1=degraded, 2=unhealthy)"
            ),
            "mode": metrics.gauge(
                "serve_mode", "operating mode (0=normal, 1=brownout)"
            ),
            "breaker": metrics.gauge(
                "serve_breaker_state",
                "circuit breaker (0=closed, 1=half_open, 2=open)",
            ),
        }
        self._slo_probe = (
            None if monitor is None else self._build_slo_probe(monitor)
        )
        self._mcounts = (
            None
            if metrics is None
            else {key: 0 for key in _COUNTER_KEYS}
        )
        self._mflushed = {key: 0 for key in _COUNTER_KEYS}
        self._mpending = []
        self._mpending_done = 0
        if metrics is not None:
            metrics.add_collect_hook(self._refresh_gauges)
            self._observe(self.decisions[-1] if self.decisions else None)

    def _build_slo_probe(self, monitor) -> Callable[[], dict]:
        """Compile a minimal per-epoch snapshot for ``monitor``'s rules.

        :meth:`health_snapshot` builds all 13 documented keys; the
        attached rules typically read two.  This binds one getter per
        *referenced* key (unknown metrics stay absent, so such rules
        abstain — the same semantics as the full snapshot) and returns
        a zero-arg callable the per-epoch path evaluates instead.
        Closures don't pickle; checkpoints drop the probe and
        :meth:`__setstate__` recompiles it from the monitor's rules.
        """
        needed = {rule.metric for rule in monitor.rules}
        probes = [(k, g) for k, g in _SLO_GETTERS.items() if k in needed]

        def probe() -> dict:
            window = self._window
            return {k: g(self, window) for k, g in probes}

        return probe

    def _observe(self, decision: ServeDecision | None) -> None:
        """Per-epoch observability: event counters, histogram, SLO rules.

        Hot path — one call per epoch; the ``test_metrics_overhead``
        bench holds it under 2% of the serve loop.  Counter deltas and
        latency samples land in plain Python state (no locks, no
        registry calls) and flush on scrape; derived gauges refresh at
        scrape time too (:meth:`_refresh_gauges`, a registry collect
        hook).  ``serve_health`` is additionally bumped on alert edges
        so the gauge moves with the event, and SLO rules run against
        the compiled minimal probe, not the full snapshot.
        """
        if decision is None:
            return
        c = self._mcounts
        if c is not None:
            c["epochs"] += 1
            if decision.full_solve:
                c["full_solves"] += 1
            c["cache_hits"] += decision.cache_hits
            c["solved"] += decision.solved
            if decision.rejected:
                c["rejects"] += len(decision.rejected)
            if decision.evicted:
                c["evictions"] += len(decision.evicted)
            if decision.shed:
                c["shed"] += len(decision.shed)
            self._mpending.append(decision.latency_s)
            if len(self._mpending) >= _FLUSH_EVERY:
                with self.metrics.lock:
                    self._flush_metrics_locked(trim=True)
        if self.monitor is not None:
            snap_fn = self._slo_probe or self.health_snapshot
            edges = self.monitor.evaluate(snap_fn(), epoch=decision.epoch)
            for edge in edges:
                self.alerts.append(dict(edge))
                if self.remediation is not None:
                    self._remediate(edge, epoch=decision.epoch)
                kind = edge.pop("event")
                telemetry.counter(f"serve.{kind.replace('.', '_')}")
                telemetry.event(kind, epoch=decision.epoch, **edge)
            if self._mhandles is not None and edges:
                from repro.obs.health import severity_rank

                self._mhandles["health"].set(severity_rank(self.monitor.state))

    def _flush_metrics_locked(self, *, trim: bool = False) -> None:
        """Push accumulated counter deltas and latency samples.

        Caller must hold the registry lock.  Counter totals are
        monotone, so a delta missed by one flush (a racing increment)
        is picked up by the next — nothing is lost or double-counted.
        ``trim`` drops already-flushed samples from the pending list;
        only the serve thread (the list's sole writer) may pass it.
        """
        h = self._mhandles
        c = self._mcounts
        if h is None or c is None:
            return
        flushed = self._mflushed
        for key in _COUNTER_KEYS:
            delta = c[key] - flushed[key]
            if delta:
                h[key].inc_locked(delta)
                flushed[key] = c[key]
        pending = self._mpending
        done = self._mpending_done
        n = len(pending)
        if done < n:
            observe = h["latency"].observe_locked
            for value in pending[done:n]:
                observe(value)
            self._mpending_done = n
        if trim:
            del pending[: self._mpending_done]
            self._mpending_done = 0

    def _refresh_gauges(self) -> None:
        """Scrape-time refresh (registry collect hook).

        Runs on the scraper's thread whenever the registry is collected
        (``/metrics``, ``/varz``, ``to_dict``): flushes the counter
        accumulator, then recomputes derived gauges — so all of this
        costs the serve loop nothing between scrapes.
        """
        h = self._mhandles
        if h is None:
            return
        snap = self.health_snapshot()
        with self.metrics.lock:
            self._flush_metrics_locked()
            h["streams"].set_locked(snap["n_streams"])
            h["alive"].set_locked(snap["n_alive_servers"])
            h["queue"].set_locked(snap["queue_depth"])
            h["hit_ratio"].set_locked(snap["cache_hit_ratio"])
            if snap["benefit"] is not None:
                h["benefit"].set_locked(snap["benefit"])
                h["baseline"].set_locked(snap["benefit_baseline"])
                h["drop"].set_locked(snap["benefit_drop_ratio"])
            if self.monitor is not None:
                from repro.obs.health import severity_rank

                h["health"].set_locked(severity_rank(self.monitor.state))
            h["mode"].set_locked(1 if self.mode == "brownout" else 0)
            h["breaker"].set_locked(
                0 if self.breaker is None else self.breaker.rank
            )

    def health_snapshot(self) -> dict:
        """Windowed SLO inputs: the dict :class:`HealthMonitor` rules see.

        Percentiles and the benefit baseline come from the rolling
        :data:`DECISION_WINDOW` — the same definition :meth:`summary`
        and ``repro serve report`` use — so an alert threshold means
        the same thing everywhere.
        """
        w = self._window
        lat = w.lat_sorted
        hits, solved = w.hits, w.solved
        benefit = w.last_benefit
        baseline = w.baseline
        drop = 0.0
        if benefit is not None and baseline is not None:
            drop = max(0.0, (baseline - benefit) / max(abs(baseline), 1e-12))
        snap: dict = {
            "epoch": self.epoch,
            "window": len(self._window),
            "decision_p50_s": _pct(lat, 0.50),
            "decision_p95_s": _pct(lat, 0.95),
            "decision_p99_s": _pct(lat, 0.99),
            "decision_max_s": lat[-1] if lat else 0.0,
            "cache_hit_ratio": hits / (hits + solved) if hits + solved else 0.0,
            "queue_depth": len(self.queue),
            "n_streams": len(self.planner.entries),
            "n_alive_servers": self.planner.n_alive,
            "benefit": benefit,
            "benefit_baseline": baseline,
            "benefit_drop_ratio": drop if benefit is not None else None,
            "mode_brownout": 1 if self.mode == "brownout" else 0,
            "breaker_state": 0 if self.breaker is None else self.breaker.rank,
        }
        return snap

    def health_status(self) -> dict:
        """``/healthz`` document: monitor verdict plus the snapshot."""
        doc = (
            self.monitor.status()
            if self.monitor is not None
            else {"status": "ok", "alerts": [], "rules": []}
        )
        doc["snapshot"] = self.health_snapshot()
        return doc

    def varz(self) -> dict:
        """``/varz`` service section: summary + snapshot + alert history."""
        return {
            "summary": self.summary(),
            "snapshot": self.health_snapshot(),
            "alerts_fired": sum(
                1 for a in self.alerts if a.get("event") == "alert.fired"
            ),
            "recent_alerts": self.alerts[-10:],
        }

    # -- monitoring loop (legacy OnlineScheduler semantics) ----------------
    def run_epochs(
        self,
        n_epochs: int,
        *,
        environment: Callable[[ScheduleDecision, int], np.ndarray],
        detector=None,
    ) -> list[ServeEpochTick]:
        """Fixed-epoch monitoring: observe, detect drift, full-solve.

        The environment maps the deployed decision to an observed
        outcome vector; the detector flags sustained deviation; a drift
        triggers a full solve (a fresh scheduler when
        ``reuse_scheduler=False`` — the legacy contract).  Epochs are
        numbered 0..n-1 per call, matching the old loop exactly.

        Deploys here go through :meth:`_deploy_batch`, not the
        incremental planner: the monitoring loop redeploys the batch
        decision verbatim (the legacy contract keeps every stream even
        when the engine's first-fit embedding would degrade some).
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if detector is None:
            from repro.core.online import DriftDetector

            detector = DriftDetector()
        if not self.started:
            self.started = True
            self._deploy_batch(reason="warmup", epoch=0)
        ticks: list[ServeEpochTick] = []
        for epoch in range(n_epochs):
            decision = self.deployed_decision()
            expected = decision.outcome
            observed = environment(decision, epoch)
            dev = detector.deviation(expected, observed)
            drifted = detector.update(expected, observed)
            if drifted:
                self._deploy_batch(reason="drift", epoch=epoch)
                detector.reset()
                telemetry.counter("serve.drift_reoptimizations")
            ticks.append(
                ServeEpochTick(
                    epoch=epoch,
                    expected=np.asarray(expected, dtype=float),
                    observed=np.asarray(observed, dtype=float),
                    deviation=dev,
                    reoptimized=drifted,
                )
            )
        return ticks

    def deployed_decision(self) -> ScheduleDecision:
        """The live decision as a :class:`ScheduleDecision`.

        From the last batch solve when one exists; synthesized from the
        engine state otherwise (greedy/incremental mode).
        """
        if self.last_decision is not None:
            return self.last_decision
        sids, r, s = self.planner.decision_arrays()
        if not sids:
            raise RuntimeError("no streams admitted; nothing deployed")
        outcome = self.planner.outcome()
        per_stream = self.planner.stream_assignment()
        return ScheduleDecision(
            resolutions=r,
            fps=s,
            assignment=[int(per_stream[sid][0]) for sid in sids],
            outcome=outcome,
            benefit=float(self.preference.value(outcome)),
            method="Serve",
        )

    # -- checkpoint / resume ----------------------------------------------
    def save_checkpoint(self, path):
        """Atomically pickle the whole service (engine, queue, scheduler).

        Syncs the WAL first: a checkpoint's ``wal_seq`` high-water mark
        must never run ahead of the durable journal, or recovery would
        skip events the checkpoint claims to have absorbed.
        """
        from repro.resilience.checkpoint import save_checkpoint

        if self.wal is not None:
            self.wal.sync()
        return save_checkpoint(
            path,
            scheduler=self,
            bo_state=None,
            kind="serve",
            epoch=self.epoch,
            n_streams=len(self.planner.entries),
        )

    @classmethod
    def resume(cls, path) -> "SchedulerService":
        """Load a serve checkpoint written by :meth:`save_checkpoint`."""
        from repro.resilience.checkpoint import load_checkpoint

        ckpt = load_checkpoint(path)
        if ckpt.meta.get("kind") != "serve":
            raise ValueError(
                f"{path} is not a serve checkpoint "
                f"(kind={ckpt.meta.get('kind')!r})"
            )
        service = ckpt.scheduler
        if not isinstance(service, cls):
            raise ValueError(f"{path} does not hold a {cls.__name__}")
        return service

    # -- pickling ----------------------------------------------------------
    def __getstate__(self) -> dict:
        """Checkpoint state: drop the live metrics registry.

        The registry owns locks and feeds an HTTP thread — neither
        belongs in a checkpoint.  The :class:`HealthMonitor` (pure
        state) and the alert history *do* pickle, so a resumed run
        keeps its firing alerts; re-attach a registry with
        :meth:`attach_observability` after :meth:`resume`.
        """
        state = self.__dict__.copy()
        state["metrics"] = None
        state["wal"] = None  # file handle; wal_seq (the high-water mark) stays
        state["_stop"] = False
        state["_mhandles"] = None
        state["_slo_probe"] = None  # compiled closures don't pickle
        state["_mcounts"] = None  # accumulator belongs to the registry
        state["_mflushed"] = {}
        state["_mpending"] = []
        state["_mpending_done"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Checkpoints written before live observability existed.
        self.__dict__.setdefault("metrics", None)
        self.__dict__.setdefault("monitor", None)
        self.__dict__.setdefault("alerts", [])
        # ... and before overload hardening existed.
        self.__dict__.setdefault("admission", AdmissionController())
        self.__dict__.setdefault("breaker", None)
        self.__dict__.setdefault("remediation", None)
        self.__dict__.setdefault("mode", "normal")
        self.__dict__.setdefault("_brownout_reasons", set())
        self.__dict__.setdefault("_shed_reasons", set())
        self.__dict__.setdefault("wal", None)
        self.__dict__.setdefault("wal_seq", 0)
        self.__dict__.setdefault("_forced_modes", {})
        self.__dict__.setdefault("_stop", False)
        self.__dict__.setdefault("_ckpt_path", None)
        self.__dict__.setdefault("_mhandles", None)
        self.__dict__.setdefault("_mcounts", None)
        self.__dict__.setdefault("_mflushed", {})
        self.__dict__.setdefault("_mpending", [])
        self.__dict__.setdefault("_mpending_done", 0)
        self.__dict__["_slo_probe"] = (
            None if self.monitor is None else self._build_slo_probe(self.monitor)
        )
        window = self.__dict__.get("_window")
        if window is None:
            self.__dict__["_window"] = _WindowStats(DECISION_WINDOW)
        elif not isinstance(window, _WindowStats):
            # Pre-refactor checkpoints stored a deque of entry tuples.
            self.__dict__["_window"] = _WindowStats.from_entries(window)

    # -- summary -----------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate run statistics over all decisions so far.

        Counts are lifetime totals; the latency percentiles are the
        *rolling-window* definition (last :data:`DECISION_WINDOW`
        epochs) shared with :meth:`health_snapshot` and ``repro serve
        report`` — lifetime percentiles go stale on hours-long runs,
        reporting warm-up latencies forever.
        """
        lat = self._window.lat_sorted
        benefits = [d.benefit for d in self.decisions if d.benefit is not None]
        return {
            "epochs": len(self.decisions),
            "full_solves": sum(1 for d in self.decisions if d.full_solve),
            "cache_hits": sum(d.cache_hits for d in self.decisions),
            "solved": sum(d.solved for d in self.decisions),
            "rejected": sum(len(d.rejected) for d in self.decisions),
            "evicted": sum(len(d.evicted) for d in self.decisions),
            "shed": sum(len(d.shed) for d in self.decisions),
            "brownout_epochs": sum(
                1 for d in self.decisions if d.mode == "brownout"
            ),
            "mode": self.mode,
            "breaker_state": (
                None if self.breaker is None else self.breaker.state
            ),
            "breaker_opens": 0 if self.breaker is None else self.breaker.opens,
            "n_streams": len(self.planner.entries),
            "n_alive_servers": self.planner.n_alive,
            "benefit_first": benefits[0] if benefits else None,
            "benefit_last": benefits[-1] if benefits else None,
            "decision_window": len(lat),
            "decision_p50_s": _pct(lat, 0.50),
            "decision_p95_s": _pct(lat, 0.95),
            "decision_p99_s": _pct(lat, 0.99),
            "decision_max_s": lat[-1] if lat else 0.0,
            "alerts_fired": sum(
                1 for a in self.alerts if a.get("event") == "alert.fired"
            ),
            "health": self.monitor.state if self.monitor is not None else "ok",
        }
