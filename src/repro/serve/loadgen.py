"""Deterministic seeded churn workload generator.

:func:`generate_load` draws a Poisson-arrival churn timeline — stream
joins/leaves, per-server bandwidth drift, and server flaps — and
resolves it into a valid :class:`~repro.serve.events.EventLog`: leaves
only name streams that are actually active at that instant, at most one
server is down at a time, and the population never dips below
``min_active``.  The same ``seed`` always yields the same byte-exact
log (NumPy ``default_rng``, fixed draw order), which together with the
service's deterministic replay gives bit-identical decision sequences.

Rates are per *simulated* hour: ``ChurnProfile(arrivals_per_hour=2000,
departures_per_hour=2000)`` drives thousands of admissions/evictions
through the serve loop in one run, which is the scale knob of the
acceptance churn experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.events import EventLog, ServeEvent

__all__ = ["ChurnProfile", "generate_load"]


@dataclass(frozen=True)
class ChurnProfile:
    """Shape of a churn workload (all rates per simulated hour).

    The flash-crowd and diurnal knobs modulate the *arrival* rate only
    (leaves, drifts, and flaps stay homogeneous): ``burst_multiplier``
    scales arrivals inside the ``[burst_start_s, burst_start_s +
    burst_duration_s)`` window — the overload wave admission control
    exists to survive — and ``diurnal_amplitude`` adds a sinusoidal
    day/night swing with period ``diurnal_period_s``.  Both default
    off, in which case generation takes the exact legacy draw path
    (byte-identical logs for existing seeds).
    """

    hours: float = 1.0
    arrivals_per_hour: float = 100.0
    departures_per_hour: float = 100.0
    drifts_per_hour: float = 10.0
    flaps_per_hour: float = 2.0
    texture_range: tuple[float, float] = (0.6, 1.4)
    bw_factor_range: tuple[float, float] = (0.3, 1.0)
    min_active: int = 1
    flap_outage_s: float = 60.0
    burst_start_s: float | None = None
    burst_duration_s: float = 120.0
    burst_multiplier: float = 1.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.hours <= 0:
            raise ValueError(f"hours must be > 0, got {self.hours}")
        for name in (
            "arrivals_per_hour",
            "departures_per_hour",
            "drifts_per_hour",
            "flaps_per_hour",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.min_active < 0:
            raise ValueError(f"min_active must be >= 0, got {self.min_active}")
        lo, hi = self.texture_range
        if not (0 < lo <= hi):
            raise ValueError(f"bad texture_range {self.texture_range}")
        lo, hi = self.bw_factor_range
        if not (0 < lo <= hi <= 1):
            raise ValueError(f"bad bw_factor_range {self.bw_factor_range}")
        if self.burst_start_s is not None and self.burst_start_s < 0:
            raise ValueError(
                f"burst_start_s must be >= 0, got {self.burst_start_s}"
            )
        if self.burst_duration_s <= 0:
            raise ValueError(
                f"burst_duration_s must be > 0, got {self.burst_duration_s}"
            )
        if self.burst_multiplier < 1:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )
        if not (0 <= self.diurnal_amplitude < 1):
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), "
                f"got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_s <= 0:
            raise ValueError(
                f"diurnal_period_s must be > 0, got {self.diurnal_period_s}"
            )

    @property
    def modulated(self) -> bool:
        """True when any arrival-rate modulation is active."""
        burst = self.burst_start_s is not None and self.burst_multiplier > 1
        return burst or self.diurnal_amplitude > 0

    def arrival_rate_factor(self, t: float) -> float:
        """Instantaneous arrival-rate multiplier at simulated time ``t``."""
        f = 1.0
        if self.diurnal_amplitude > 0:
            f *= 1.0 + self.diurnal_amplitude * float(
                np.sin(2.0 * np.pi * t / self.diurnal_period_s)
            )
        if (
            self.burst_start_s is not None
            and self.burst_start_s <= t < self.burst_start_s + self.burst_duration_s
        ):
            f *= self.burst_multiplier
        return f

    @property
    def peak_rate_factor(self) -> float:
        """Upper bound of :meth:`arrival_rate_factor` (thinning envelope)."""
        peak = 1.0 + self.diurnal_amplitude
        if self.burst_start_s is not None:
            peak *= self.burst_multiplier
        return peak


def generate_load(
    n_streams: int,
    n_servers: int,
    *,
    profile: ChurnProfile | None = None,
    seed: int = 0,
) -> EventLog:
    """Draw a churn event log for an ``n_streams``/``n_servers`` topology.

    The initial population (ids ``0..n_streams-1``) is assumed admitted
    by the service's warm-up; generated joins allocate fresh ids above
    it.  Draw order is fixed (counts, then times, then a single ordered
    walk assigning targets), so a given ``(topology, profile, seed)``
    triple is fully reproducible.
    """
    if n_streams < 1:
        raise ValueError(f"n_streams must be >= 1, got {n_streams}")
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")
    profile = profile or ChurnProfile()
    rng = np.random.default_rng(seed)
    horizon = profile.hours * 3600.0

    def times(rate_per_hour: float) -> np.ndarray:
        n = rng.poisson(rate_per_hour * profile.hours)
        return np.sort(rng.uniform(0.0, horizon, size=n))

    def arrival_times(rate_per_hour: float) -> np.ndarray:
        """Arrival draw: legacy path when homogeneous, thinning otherwise.

        The inhomogeneous (flash-crowd/diurnal) process is drawn at the
        peak envelope rate and thinned by the instantaneous rate factor
        — a standard exact sampler.  With modulation off this is
        byte-for-byte the legacy ``times`` call (no extra draws), so
        existing seeds keep their logs.
        """
        if not profile.modulated:
            return times(rate_per_hour)
        peak = profile.peak_rate_factor
        candidates = times(rate_per_hour * peak)
        if candidates.size == 0:
            return candidates
        keep = rng.uniform(0.0, 1.0, size=candidates.size) * peak
        accept = np.array(
            [profile.arrival_rate_factor(float(t)) for t in candidates]
        )
        return candidates[keep < accept]

    slots = (
        [(t, "stream_join") for t in arrival_times(profile.arrivals_per_hour)]
        + [(t, "stream_leave") for t in times(profile.departures_per_hour)]
        + [(t, "bandwidth_drift") for t in times(profile.drifts_per_hour)]
        + [(t, "flap") for t in times(profile.flaps_per_hour)]
    )
    slots.sort(key=lambda ts: ts[0])

    active = list(range(n_streams))
    next_id = n_streams
    down_server: int | None = None
    down_until = -1.0
    events: list[ServeEvent] = []
    tex_lo, tex_hi = profile.texture_range
    bw_lo, bw_hi = profile.bw_factor_range
    for t, kind in slots:
        if down_server is not None and t >= down_until:
            events.append(ServeEvent(time=down_until, kind="server_up", target=down_server))
            down_server = None
        if kind == "stream_leave" and len(active) <= profile.min_active:
            kind = "stream_join"  # preserve the population floor
        if kind == "stream_join":
            sid = next_id
            next_id += 1
            active.append(sid)
            events.append(
                ServeEvent(
                    time=t,
                    kind="stream_join",
                    target=sid,
                    value=float(rng.uniform(tex_lo, tex_hi)),
                )
            )
        elif kind == "stream_leave":
            sid = active.pop(int(rng.integers(len(active))))
            events.append(ServeEvent(time=t, kind="stream_leave", target=sid))
        elif kind == "bandwidth_drift":
            events.append(
                ServeEvent(
                    time=t,
                    kind="bandwidth_drift",
                    target=int(rng.integers(n_servers)),
                    value=float(rng.uniform(bw_lo, bw_hi)),
                )
            )
        else:  # flap: one server down at a time, bounded outage
            if down_server is not None or n_servers < 2:
                continue
            down_server = int(rng.integers(n_servers))
            down_until = min(t + profile.flap_outage_s, horizon)
            events.append(ServeEvent(time=t, kind="server_down", target=down_server))
    if down_server is not None:
        events.append(ServeEvent(time=down_until, kind="server_up", target=down_server))
    return EventLog(
        events=tuple(events),
        seed=seed,
        n_streams=n_streams,
        n_servers=n_servers,
        horizon_s=horizon,
    )
