"""Event sinks for the telemetry registry.

A sink receives structured event dicts (one per ``Telemetry.event`` /
span completion) and decides where they go:

* :class:`NullSink` — drops everything (the default; keeps the
  disabled-telemetry path allocation-free);
* :class:`MemorySink` — appends to an in-process list (tests,
  programmatic inspection);
* :class:`JsonlSink` — one JSON object per line, append-mode file
  (the ``--telemetry out.jsonl`` CLI path).
"""

from __future__ import annotations

import atexit
import json
import threading
from pathlib import Path
from typing import Any, TextIO

from repro.utils.serialization import to_jsonable


class EventSink:
    """Interface: ``emit`` one event dict; ``flush``/``close`` resources."""

    def emit(self, record: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Discard all events."""

    def emit(self, record: dict[str, Any]) -> None:
        pass


class MemorySink(EventSink):
    """Buffer events in :attr:`records` for in-process inspection."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()


class JsonlSink(EventSink):
    """Append events as JSON lines to ``path`` (opened lazily).

    Writes are serialized under a lock (spans may complete on several
    threads at once), and the file is registered for close at
    interpreter exit so a run that dies mid-flight still leaves a
    readable log behind.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = None
        self._lock = threading.Lock()
        self._atexit_registered = False

    def _handle(self) -> TextIO:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
        return self._fh

    def emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(to_jsonable(record)) + "\n"
        with self._lock:
            self._handle().write(line)

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            if self._atexit_registered:
                atexit.unregister(self.close)
                self._atexit_registered = False
