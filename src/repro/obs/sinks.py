"""Event sinks for the telemetry registry.

A sink receives structured event dicts (one per ``Telemetry.event`` /
span completion) and decides where they go:

* :class:`NullSink` — drops everything (the default; keeps the
  disabled-telemetry path allocation-free);
* :class:`MemorySink` — appends to an in-process list (tests,
  programmatic inspection);
* :class:`JsonlSink` — one JSON object per line, append-mode file
  (the ``--telemetry out.jsonl`` CLI path).
"""

from __future__ import annotations

import atexit
import json
import signal
import threading
import weakref
from pathlib import Path
from typing import Any, TextIO

from repro.utils.serialization import to_jsonable

#: Live JsonlSinks with an open file handle, flushed when the process
#: is killed by SIGTERM/SIGINT.  ``atexit`` alone is not enough — it
#: never runs when a signal's default action tears the process down —
#: and chaos/CI runs kill workers with SIGTERM as a matter of course.
_LIVE_SINKS: "weakref.WeakSet[JsonlSink]" = weakref.WeakSet()
_signals_installed = False
_previous_handlers: dict[int, Any] = {}


def _flush_live_sinks(signum: int, frame) -> None:
    for sink in list(_LIVE_SINKS):
        try:
            sink.flush()
        except Exception:  # noqa: BLE001 — never mask the signal path
            pass
    previous = _previous_handlers.get(signum)
    if callable(previous):
        previous(signum, frame)
    elif previous != signal.SIG_IGN:
        # Re-deliver with the default disposition so the exit status
        # still says "killed by signal" (SIGINT falls through to
        # KeyboardInterrupt via default_int_handler below).
        signal.signal(signum, signal.SIG_DFL)
        signal.raise_signal(signum)


def _install_signal_flush() -> None:
    """Chain a flush-everything step onto SIGTERM/SIGINT (main thread only)."""
    global _signals_installed
    if _signals_installed:
        return
    if threading.current_thread() is not threading.main_thread():
        return  # signal.signal is main-thread-only; atexit still covers us
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            _previous_handlers[signum] = signal.getsignal(signum)
            signal.signal(signum, _flush_live_sinks)
        except (OSError, ValueError):  # pragma: no cover — exotic embedders
            _previous_handlers.pop(signum, None)
    _signals_installed = True


class EventSink:
    """Interface: ``emit`` one event dict; ``flush``/``close`` resources."""

    def emit(self, record: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Discard all events."""

    def emit(self, record: dict[str, Any]) -> None:
        pass


class MemorySink(EventSink):
    """Buffer events in :attr:`records` for in-process inspection."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()


class JsonlSink(EventSink):
    """Append events as JSON lines to ``path`` (opened lazily).

    Writes are serialized under a lock (spans may complete on several
    threads at once), and the file is registered for close at
    interpreter exit so a run that dies mid-flight still leaves a
    readable log behind.  SIGTERM/SIGINT also flush every live sink
    (chaining to any previously installed handler) — ``atexit`` never
    fires when a signal's default action kills the process.

    Rotation: with ``max_bytes > 0`` the file rotates before a write
    would push it past the limit — ``run.jsonl`` becomes
    ``run.jsonl.1`` (older segments shift to ``.2``, ``.3``, ... up to
    ``backup_count``, the oldest dropped) and a fresh file is opened.
    Long-lived serve runs stay bounded on disk, and the readers
    (:func:`jsonl_segments`, :func:`repro.obs.trace.load_events`,
    ``repro serve report``) stitch segments back together oldest-first
    so trace reconstruction sees one continuous log.
    """

    def __init__(self, path, *, max_bytes: int = 0, backup_count: int = 3) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if backup_count < 0:
            raise ValueError(f"backup_count must be >= 0, got {backup_count}")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backup_count = int(backup_count)
        self.rotations = 0
        self._fh: TextIO | None = None
        # RLock: the signal-flush handler runs on the main thread and
        # may interrupt an emit() that already holds the lock.
        self._lock = threading.RLock()
        self._atexit_registered = False

    def _handle(self) -> TextIO:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
            _LIVE_SINKS.add(self)
            _install_signal_flush()
        return self._fh

    def _rotate(self) -> None:
        """Shift ``path`` -> ``path.1`` -> ... under the held lock."""
        self._fh.close()
        self._fh = None
        if self.backup_count > 0:
            oldest = self.path.with_name(f"{self.path.name}.{self.backup_count}")
            oldest.unlink(missing_ok=True)
            for i in range(self.backup_count - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        else:
            # No backups kept: rotation truncates in place.
            self.path.unlink(missing_ok=True)
        self.rotations += 1

    def emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(to_jsonable(record)) + "\n"
        with self._lock:
            fh = self._handle()
            if self.max_bytes > 0:
                pos = fh.tell()
                if pos > 0 and pos + len(line) > self.max_bytes:
                    self._rotate()
                    fh = self._handle()
            fh.write(line)

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            if self._atexit_registered:
                atexit.unregister(self.close)
                self._atexit_registered = False
        _LIVE_SINKS.discard(self)


def jsonl_segments(path) -> list[Path]:
    """All on-disk segments of a (possibly rotated) JSONL log.

    Oldest first: ``path.N``, ..., ``path.1``, then ``path`` itself —
    concatenating them in this order reproduces the unrotated log, so
    trace reconstruction works across rotation boundaries.  A log that
    never rotated yields just ``[path]``; a missing base path yields
    whatever numbered segments exist.
    """
    base = Path(path)
    numbered: list[tuple[int, Path]] = []
    i = 1
    while True:
        seg = base.with_name(f"{base.name}.{i}")
        if not seg.exists():
            break
        numbered.append((i, seg))
        i += 1
    out = [seg for _, seg in sorted(numbered, reverse=True)]
    if base.exists():
        out.append(base)
    return out


def iter_jsonl_records(path):
    """Yield parsed record dicts across all rotated segments of ``path``.

    Blank and malformed lines (a torn final line from a killed run, or
    the torn line a rotation boundary can leave in a crash) are
    skipped rather than fatal.
    """
    for segment in jsonl_segments(path):
        with segment.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(rec, dict):
                    yield rec
