"""Run analysis: summarize and compare telemetry event logs.

``repro report run.jsonl`` turns a JSONL telemetry log into a run
summary — span time tree, BO convergence curve, top counters, and the
domain diagnostics tables (GP health, preference fidelity, constraint
pressure) — rendered as text, JSON, or Markdown.

``repro compare baseline.jsonl candidate.jsonl --threshold 10%`` diffs
two runs on wall time, BO iteration count, and final benefit, and
reports a *regression* when the candidate is worse by more than the
threshold — the CI perf gate exits non-zero on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.trace import (
    SpanNode,
    build_span_forest,
    load_events,
    orphan_parent_ids,
    trace_ids,
)

__all__ = [
    "RunSummary",
    "summarize_events",
    "summarize_file",
    "render_text",
    "render_markdown",
    "to_json",
    "MetricDelta",
    "CompareResult",
    "parse_threshold",
    "compare_runs",
    "compare_files",
]

#: Absolute wall-time slack (seconds) absorbing scheduler/timer noise on
#: very short runs; the relative threshold dominates for long ones.
WALL_TIME_SLACK_S = 0.25


@dataclass
class RunSummary:
    """Everything ``repro report`` knows about one telemetry log."""

    trace_id: str | None = None
    method: str | None = None
    seed: int | None = None
    wall_time_s: float = 0.0
    n_iterations: int = 0
    converged: bool | None = None
    final_benefit: float | None = None
    n_dm_queries: int | None = None
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    spans: dict[str, dict[str, float]] = field(default_factory=dict)
    iterations: list[dict[str, Any]] = field(default_factory=list)
    gp_diagnostics: list[dict[str, Any]] = field(default_factory=list)
    pref_diagnostics: list[dict[str, Any]] = field(default_factory=list)
    roots: list[SpanNode] = field(default_factory=list)
    orphan_parents: list[str] = field(default_factory=list)
    n_events: int = 0


def _aggregate_spans_from_events(
    events: Sequence[dict[str, Any]]
) -> dict[str, dict[str, float]]:
    """Exact span stats (incl. percentiles) from raw span events."""
    durations: dict[str, list[float]] = {}
    for e in events:
        if e.get("event") == "span" and "duration_s" in e:
            durations.setdefault(str(e.get("span", e.get("name", "?"))), []).append(
                float(e["duration_s"])
            )
    spans: dict[str, dict[str, float]] = {}
    for path, ds in durations.items():
        ds.sort()
        spans[path] = {
            "count": len(ds),
            "total_s": sum(ds),
            "min_s": ds[0],
            "max_s": ds[-1],
            "p50_s": ds[int(0.50 * (len(ds) - 1))],
            "p95_s": ds[int(0.95 * (len(ds) - 1))],
        }
    return spans


def summarize_events(events: Sequence[dict[str, Any]]) -> RunSummary:
    """Build a :class:`RunSummary` from parsed telemetry events."""
    s = RunSummary(n_events=len(events))
    tids = trace_ids(events)
    s.trace_id = tids[0] if tids else None

    for e in events:
        kind = e.get("event")
        if kind == "bo.iteration":
            s.iterations.append(e)
        elif kind == "gp.diagnostics":
            s.gp_diagnostics.append(e)
        elif kind == "pref.diagnostics":
            s.pref_diagnostics.append(e)
        elif kind == "optimize.done":
            s.method = e.get("method", s.method)
            s.seed = e.get("seed", s.seed)
            outcome = e.get("outcome") or {}
            s.converged = outcome.get("converged", s.converged)
            s.n_dm_queries = outcome.get("n_dm_queries", s.n_dm_queries)
            decision = outcome.get("decision") or {}
            if decision.get("benefit") is not None:
                s.final_benefit = float(decision["benefit"])
        elif kind == "run.summary":
            report = e.get("report") or {}
            s.counters = dict(report.get("counters", {}))
            s.gauges = dict(report.get("gauges", {}))
            s.spans = {
                k: {kk: vv for kk, vv in v.items() if kk != "sample"}
                for k, v in report.get("spans", {}).items()
            }

    s.iterations.sort(key=lambda e: e.get("iteration", 0))
    s.n_iterations = len(s.iterations)
    if s.final_benefit is None and s.iterations:
        last = s.iterations[-1]
        if last.get("incumbent_benefit") is not None:
            s.final_benefit = float(last["incumbent_benefit"])
    if not s.counters and s.iterations:
        # pre-run.summary logs: bo.iteration embeds cumulative counters
        s.counters = dict(s.iterations[-1].get("counters") or {})
    if not s.spans:
        s.spans = _aggregate_spans_from_events(events)

    s.roots = build_span_forest(events)
    s.orphan_parents = sorted(orphan_parent_ids(events))
    s.wall_time_s = sum(r.duration_s for r in s.roots)
    if s.wall_time_s == 0.0:
        ts = [float(e["ts"]) for e in events if "ts" in e]
        s.wall_time_s = (max(ts) - min(ts)) if len(ts) > 1 else 0.0
    return s


def summarize_file(path) -> RunSummary:
    """:func:`summarize_events` over a JSONL log on disk."""
    return summarize_events(load_events(path))


# ---------------------------------------------------------------------------
# rendering


def _fmt_s(v: float) -> str:
    return f"{v * 1e3:.1f}ms" if v < 1.0 else f"{v:.3f}s"


def _span_tree_rows(summary: RunSummary) -> list[tuple[str, dict[str, float]]]:
    """(indented label, stats) rows: aggregate paths, indented by depth."""
    rows = []
    for path in sorted(summary.spans):
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        rows.append(("  " * depth + name, summary.spans[path]))
    return rows


def _convergence_lines(summary: RunSummary, width: int = 32) -> list[str]:
    its = summary.iterations
    vals = [e.get("incumbent_benefit") for e in its]
    vals = [float(v) for v in vals if v is not None]
    if not vals:
        return []
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    lines = []
    for e, v in zip(its, vals):
        bar = "#" * max(1, int(round((v - lo) / span * width)))
        acq = e.get("acquisition_value")
        acq_s = f"  acq={acq:.4g}" if isinstance(acq, (int, float)) else ""
        lines.append(
            f"  iter {e.get('iteration', '?'):>3}  "
            f"best={v:+.4f}  {bar}{acq_s}"
        )
    return lines


def _diagnostics_rows(summary: RunSummary) -> list[dict[str, Any]]:
    """One row per BO iteration joining preference + GP diagnostics."""
    pref_by_iter = {
        e.get("iteration"): e for e in summary.pref_diagnostics
    }
    rows = []
    for e in summary.iterations:
        i = e.get("iteration")
        pref = pref_by_iter.get(i, {})
        rows.append(
            {
                "iteration": i,
                "batch_benefit": e.get("batch_benefit"),
                "incumbent_benefit": e.get("incumbent_benefit"),
                "acquisition_value": e.get("acquisition_value"),
                "kendall_tau": pref.get("kendall_tau"),
                "n_comparisons": pref.get("n_comparisons"),
                "t_iteration_s": e.get("t_iteration_s"),
            }
        )
    return rows


def _num(v: Any, fmt: str = "{:+.4f}") -> str:
    if v is None:
        return "-"
    if isinstance(v, bool):
        return str(v)
    try:
        return fmt.format(float(v))
    except (TypeError, ValueError):
        return str(v)


def to_json(summary: RunSummary) -> dict[str, Any]:
    """JSON-safe dict of the summary (machine-readable report)."""
    return {
        "trace_id": summary.trace_id,
        "method": summary.method,
        "seed": summary.seed,
        "wall_time_s": summary.wall_time_s,
        "n_iterations": summary.n_iterations,
        "converged": summary.converged,
        "final_benefit": summary.final_benefit,
        "n_dm_queries": summary.n_dm_queries,
        "n_events": summary.n_events,
        "orphan_parents": summary.orphan_parents,
        "counters": summary.counters,
        "gauges": summary.gauges,
        "spans": summary.spans,
        "iterations": [
            {
                k: e.get(k)
                for k in (
                    "iteration",
                    "batch_benefit",
                    "incumbent_benefit",
                    "acquisition_value",
                    "pool_size",
                    "batch_size",
                    "t_select_s",
                    "t_observe_s",
                    "t_model_update_s",
                    "t_iteration_s",
                )
            }
            for e in summary.iterations
        ],
        "gp_diagnostics": [
            {k: e.get(k) for k in ("iteration", "phase", "objectives")}
            for e in summary.gp_diagnostics
        ],
        "pref_diagnostics": [
            {
                k: e.get(k)
                for k in ("iteration", "n_comparisons", "n_items", "kendall_tau")
            }
            for e in summary.pref_diagnostics
        ],
    }


def render_text(summary: RunSummary, *, top_counters: int = 12) -> str:
    """Human-readable run report."""
    out: list[str] = []
    out.append(f"trace    {summary.trace_id or '(none)'}")
    if summary.method:
        seed = f"  seed {summary.seed}" if summary.seed is not None else ""
        out.append(f"method   {summary.method}{seed}")
    out.append(f"wall     {_fmt_s(summary.wall_time_s)}")
    conv = "" if summary.converged is None else (
        "  (converged)" if summary.converged else "  (hit iteration cap)"
    )
    out.append(f"iters    {summary.n_iterations}{conv}")
    if summary.final_benefit is not None:
        out.append(f"benefit  {summary.final_benefit:+.4f}")
    if summary.n_dm_queries is not None:
        out.append(f"queries  {summary.n_dm_queries} decision-maker comparisons")
    if summary.orphan_parents:
        out.append(
            f"WARNING  {len(summary.orphan_parents)} orphaned parent span IDs "
            "(incomplete merge?)"
        )

    if summary.spans:
        out.append("")
        out.append("span tree (total / count / p50 / p95):")
        for label, st in _span_tree_rows(summary):
            p50 = st.get("p50_s")
            p95 = st.get("p95_s")
            pct = (
                f"  p50={_fmt_s(p50)} p95={_fmt_s(p95)}"
                if p50 is not None and p95 is not None
                else ""
            )
            out.append(
                f"  {label:<40} {_fmt_s(st.get('total_s', 0.0)):>10} "
                f"x{int(st.get('count', 0)):<5}{pct}"
            )

    curve = _convergence_lines(summary)
    if curve:
        out.append("")
        out.append("convergence (incumbent benefit per iteration):")
        out.extend(curve)

    rows = _diagnostics_rows(summary)
    if rows:
        out.append("")
        out.append("diagnostics per iteration:")
        out.append(
            "  iter   batch      incumbent  acq        kendall_tau  comparisons"
        )
        for r in rows:
            out.append(
                f"  {str(r['iteration']):>4}   "
                f"{_num(r['batch_benefit']):>9}  "
                f"{_num(r['incumbent_benefit']):>9}  "
                f"{_num(r['acquisition_value'], '{:.4g}'):>9}  "
                f"{_num(r['kendall_tau'], '{:.3f}'):>11}  "
                f"{_num(r['n_comparisons'], '{:.0f}'):>11}"
            )

    if summary.gp_diagnostics:
        last = summary.gp_diagnostics[-1]
        objectives = last.get("objectives") or {}
        if objectives:
            out.append("")
            out.append(f"outcome GPs (latest, phase={last.get('phase')}):")
            for name, d in objectives.items():
                ells = d.get("lengthscales")
                ell_s = (
                    "/".join(f"{v:.3g}" for v in ells) if ells else "-"
                )
                out.append(
                    f"  {name:<4} ell={ell_s:<16} "
                    f"scale={_num(d.get('outputscale'), '{:.3g}'):<8} "
                    f"noise={_num(d.get('noise'), '{:.2e}'):<9} "
                    f"lml={_num(d.get('log_marginal_likelihood'), '{:.2f}'):<9} "
                    f"rmse={_num(d.get('holdout_rmse'), '{:.4g}')}"
                )

    if summary.counters:
        out.append("")
        out.append("top counters:")
        ranked = sorted(summary.counters.items(), key=lambda kv: -kv[1])
        for k, v in ranked[:top_counters]:
            out.append(f"  {k:<36} {v:>12g}")
    return "\n".join(out)


def render_markdown(summary: RunSummary, *, top_counters: int = 12) -> str:
    """Markdown run report (tables for spans, diagnostics, counters)."""
    out: list[str] = []
    out.append(f"# Run report — trace `{summary.trace_id or '(none)'}`")
    out.append("")
    out.append("| field | value |")
    out.append("|---|---|")
    out.append(f"| method | {summary.method or '-'} |")
    out.append(f"| seed | {summary.seed if summary.seed is not None else '-'} |")
    out.append(f"| wall time | {_fmt_s(summary.wall_time_s)} |")
    out.append(f"| BO iterations | {summary.n_iterations} |")
    out.append(f"| converged | {summary.converged} |")
    out.append(f"| final benefit | {_num(summary.final_benefit)} |")
    if summary.spans:
        out.append("")
        out.append("## Span tree")
        out.append("")
        out.append("| span | total | count | p50 | p95 |")
        out.append("|---|---:|---:|---:|---:|")
        for label, st in _span_tree_rows(summary):
            p50, p95 = st.get("p50_s"), st.get("p95_s")
            out.append(
                f"| `{label.replace('  ', '&nbsp;&nbsp;')}` "
                f"| {_fmt_s(st.get('total_s', 0.0))} | {int(st.get('count', 0))} "
                f"| {_fmt_s(p50) if p50 is not None else '-'} "
                f"| {_fmt_s(p95) if p95 is not None else '-'} |"
            )
    rows = _diagnostics_rows(summary)
    if rows:
        out.append("")
        out.append("## Diagnostics per iteration")
        out.append("")
        out.append(
            "| iter | batch benefit | incumbent | acq value | Kendall-τ "
            "| comparisons |"
        )
        out.append("|---:|---:|---:|---:|---:|---:|")
        for r in rows:
            out.append(
                f"| {r['iteration']} | {_num(r['batch_benefit'])} "
                f"| {_num(r['incumbent_benefit'])} "
                f"| {_num(r['acquisition_value'], '{:.4g}')} "
                f"| {_num(r['kendall_tau'], '{:.3f}')} "
                f"| {_num(r['n_comparisons'], '{:.0f}')} |"
            )
    if summary.counters:
        out.append("")
        out.append("## Top counters")
        out.append("")
        out.append("| counter | value |")
        out.append("|---|---:|")
        for k, v in sorted(summary.counters.items(), key=lambda kv: -kv[1])[
            :top_counters
        ]:
            out.append(f"| `{k}` | {v:g} |")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# comparison


@dataclass
class MetricDelta:
    """One compared metric between baseline and candidate."""

    name: str
    baseline: float | None
    candidate: float | None
    regressed: bool
    detail: str = ""


@dataclass
class CompareResult:
    """Outcome of ``repro compare``: per-metric rows + overall verdict."""

    threshold: float
    metrics: list[MetricDelta] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(m.regressed for m in self.metrics)


def parse_threshold(text: str) -> float:
    """'10%' → 0.10; '0.1' → 0.1.  Raises ValueError on junk."""
    text = str(text).strip()
    if text.endswith("%"):
        value = float(text[:-1]) / 100.0
    else:
        value = float(text)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"threshold must be a non-negative fraction, got {text!r}")
    return value


def compare_runs(
    baseline: RunSummary, candidate: RunSummary, *, threshold: float = 0.10
) -> CompareResult:
    """Diff two runs; a metric regresses when the candidate is worse by
    more than ``threshold`` (relative).

    * wall time: worse = slower; an absolute slack of
      :data:`WALL_TIME_SLACK_S` absorbs timer noise on sub-second runs;
    * BO iterations: worse = more iterations to finish;
    * final benefit: worse = lower, measured against ``|baseline|``.
    """
    result = CompareResult(threshold=threshold)

    base_w, cand_w = baseline.wall_time_s, candidate.wall_time_s
    wall_regressed = (cand_w - base_w) > max(threshold * base_w, WALL_TIME_SLACK_S)
    result.metrics.append(
        MetricDelta(
            "wall_time_s",
            base_w,
            cand_w,
            wall_regressed,
            detail=f"+{(cand_w - base_w):.3f}s"
            if cand_w >= base_w
            else f"-{(base_w - cand_w):.3f}s",
        )
    )

    base_i, cand_i = baseline.n_iterations, candidate.n_iterations
    iter_regressed = base_i > 0 and cand_i > base_i * (1.0 + threshold)
    result.metrics.append(
        MetricDelta(
            "bo_iterations",
            float(base_i),
            float(cand_i),
            iter_regressed,
            detail=f"{cand_i - base_i:+d}",
        )
    )

    base_b, cand_b = baseline.final_benefit, candidate.final_benefit
    if base_b is not None and cand_b is not None:
        scale = max(abs(base_b), 1e-9)
        benefit_regressed = (base_b - cand_b) > threshold * scale
        detail = f"{cand_b - base_b:+.4f}"
    else:
        benefit_regressed = False
        detail = "missing" if (base_b is None) != (cand_b is None) else "n/a"
    result.metrics.append(
        MetricDelta("final_benefit", base_b, cand_b, benefit_regressed, detail)
    )
    return result


def compare_files(
    baseline_path, candidate_path, *, threshold: float = 0.10
) -> tuple[CompareResult, RunSummary, RunSummary]:
    """:func:`compare_runs` over two JSONL logs on disk."""
    base = summarize_file(baseline_path)
    cand = summarize_file(candidate_path)
    return compare_runs(base, cand, threshold=threshold), base, cand


def render_compare(result: CompareResult) -> str:
    """Text table of a comparison, one metric per row."""
    out = [
        f"threshold {result.threshold * 100:g}%",
        f"{'metric':<16} {'baseline':>12} {'candidate':>12} "
        f"{'delta':>10}  verdict",
    ]
    for m in result.metrics:
        out.append(
            f"{m.name:<16} {_num(m.baseline, '{:.4f}'):>12} "
            f"{_num(m.candidate, '{:.4f}'):>12} {m.detail:>10}  "
            f"{'REGRESSED' if m.regressed else 'ok'}"
        )
    out.append("result: " + ("REGRESSION" if result.regressed else "PASS"))
    return "\n".join(out)
