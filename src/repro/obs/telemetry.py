"""Process-wide telemetry: phase timers, counters, events, profiling.

The :class:`Telemetry` registry is the single observability surface for
the whole pipeline.  Instrumented code does::

    from repro.obs import telemetry

    with telemetry.span("pamo.fit_outcomes"):
        ...
    telemetry.counter("pamo.tx_cache.hit")
    telemetry.event("bo.iteration", iteration=3, batch_best=z)

and pays (almost) nothing unless someone called
:meth:`Telemetry.enable` — the disabled path is one attribute load and
a branch per call, with a shared no-op span object, so hot loops can be
instrumented unconditionally (guarded by the
``benchmarks/test_telemetry_overhead.py`` <2% budget).

Concepts
--------
* **Spans** are hierarchical wall-clock timers.  Nested spans record
  under their slash-joined path (``pamo.optimize/pamo.bo_loop``), so a
  report shows *where inside what* the time went.  Each span completion
  also emits a ``span`` event to the sink.
* **Counters** are monotonic (``counter``); **gauges** are
  last-value-wins (``gauge``).
* **Events** are structured records appended to the configured
  :class:`~repro.obs.sinks.EventSink` (JSONL on disk for CLI runs).
* **Profiling** is opt-in per registry: with ``profile=True`` each
  *outermost* span runs under :mod:`cProfile` and the aggregate top
  functions appear in :meth:`report`; with ``trace_malloc=True`` spans
  additionally record their peak traced-memory delta.

Cross-process use: worker processes (see :mod:`repro.bench.parallel`)
enable a fresh registry, run their arm, and ship ``report()`` dicts
back; the parent folds them in with :meth:`merge_report`.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import random
import threading
import time
import uuid
from typing import Any

from repro.obs.sinks import EventSink, JsonlSink, MemorySink, NullSink

__all__ = ["Telemetry", "telemetry", "get_telemetry", "new_trace_id", "new_span_id"]

#: Max durations retained per span path for percentile estimation.
RESERVOIR_SIZE = 128


def new_trace_id() -> str:
    """Fresh 32-hex-char trace identifier."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """Fresh 16-hex-char span identifier."""
    return uuid.uuid4().hex[:16]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class _NullSpan:
    """Shared no-op context manager returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: times its block and folds stats into the registry."""

    __slots__ = (
        "_telemetry",
        "name",
        "path",
        "span_id",
        "parent_id",
        "_t0",
        "_wall0",
        "_mem0",
        "_profiler",
    )

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name
        self.path = name
        self.span_id = new_span_id()
        self.parent_id: str | None = None
        self._t0 = 0.0
        self._wall0 = 0.0
        self._mem0 = 0
        self._profiler: cProfile.Profile | None = None

    def __enter__(self) -> "_Span":
        self._telemetry._span_enter(self)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._t0
        self._telemetry._span_exit(self, elapsed)
        return False


def _new_stats() -> dict[str, float]:
    return {"count": 0, "total_s": 0.0, "min_s": float("inf"), "max_s": 0.0}


class Telemetry:
    """Registry of spans, counters, gauges, and an event sink.

    Disabled by default: every public instrumentation call checks
    :attr:`enabled` first and returns immediately, so library code can
    instrument unconditionally.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._sink: EventSink = NullSink()
        self._profile = False
        self._trace_malloc = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._spans: dict[str, dict[str, float]] = {}
        self._samples: dict[str, list[float]] = {}
        self._sample_rng = random.Random(0x5EED)
        self._pstats: pstats.Stats | None = None
        self._profiler_depth = 0
        self._started_tracemalloc = False
        self._trace_id: str | None = None
        self._parent_span_id: str | None = None
        self._pid = os.getpid()
        self._metrics = None  # optional live MetricsRegistry mirror

    # -- lifecycle -------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sink(self) -> EventSink:
        return self._sink

    @property
    def trace_id(self) -> str | None:
        """Trace ID of the current (or most recent) enabled run."""
        return self._trace_id

    def current_span_id(self) -> str | None:
        """Span ID of the innermost open span on this thread.

        Falls back to the cross-process parent span when no span is
        open (the link :mod:`repro.bench.parallel` workers inherit).
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1][1]
        return self._parent_span_id

    def enable(
        self,
        sink: EventSink | str | None = None,
        *,
        profile: bool = False,
        trace_malloc: bool = False,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
    ) -> "Telemetry":
        """Turn recording on.

        ``sink`` may be an :class:`EventSink`, a path (JSONL file), or
        ``None`` to record spans/counters without an event log.
        ``profile=True`` wraps outermost spans in :mod:`cProfile`;
        ``trace_malloc=True`` records per-span peak memory deltas.

        Every enabled run belongs to a *trace*: a fresh ``trace_id`` is
        generated unless one is passed in (worker processes inherit the
        parent's so merged event logs reconstruct one trace tree), and
        ``parent_span_id`` links this process's root spans under a span
        of another process.
        """
        if isinstance(sink, (str, bytes)) or hasattr(sink, "__fspath__"):
            sink = JsonlSink(sink)
        self._sink = sink if sink is not None else NullSink()
        self._profile = bool(profile)
        self._trace_malloc = bool(trace_malloc)
        if self._trace_malloc:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        self._trace_id = trace_id or new_trace_id()
        self._parent_span_id = parent_span_id
        self._pid = os.getpid()
        self._enabled = True
        self.event(
            "trace.start",
            trace_id=self._trace_id,
            pid=self._pid,
            parent_id=self._parent_span_id,
        )
        return self

    def disable(self) -> "Telemetry":
        """Stop recording and release the sink (accumulated stats stay)."""
        self._enabled = False
        self._sink.flush()
        self._sink.close()
        self._sink = NullSink()
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False
        return self

    def attach_metrics(self, registry) -> "Telemetry":
        """Mirror counters/gauges/span durations into a live registry.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry` (or
        anything with ``inc``/``set``/``observe_span``).  While attached
        *and* telemetry is enabled, every :meth:`counter`,
        :meth:`gauge`, and span completion also updates the registry, so
        existing instrumentation feeds the ``/metrics`` scrape surface
        without new call sites.  Pass ``None`` to detach.
        """
        self._metrics = registry
        return self

    def reset(self) -> "Telemetry":
        """Clear all accumulated counters, gauges, spans, and profiles."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._spans.clear()
            self._samples.clear()
            self._pstats = None
        return self

    # -- spans -----------------------------------------------------------
    def _stack(self) -> list[tuple[str, str]]:
        """Per-thread stack of (name, span_id) for the open spans."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str):
        """Context manager timing a phase; nests into slash-joined paths."""
        if not self._enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _span_enter(self, span: _Span) -> None:
        stack = self._stack()
        if stack:
            span.path = "/".join([f[0] for f in stack] + [span.name])
            span.parent_id = stack[-1][1]
        else:
            span.path = span.name
            span.parent_id = self._parent_span_id
        stack.append((span.name, span.span_id))
        if self._trace_malloc:
            import tracemalloc

            span._mem0 = tracemalloc.get_traced_memory()[1]
        if self._profile:
            with self._lock:
                outermost = self._profiler_depth == 0
                self._profiler_depth += 1
            if outermost:
                span._profiler = cProfile.Profile()
                span._profiler.enable()

    def _span_exit(self, span: _Span, elapsed: float) -> None:
        if span._profiler is not None:
            span._profiler.disable()
        mem_peak = 0
        if self._trace_malloc:
            import tracemalloc

            mem_peak = max(0, tracemalloc.get_traced_memory()[1] - span._mem0)
        with self._lock:
            if self._profile:
                self._profiler_depth -= 1
                if span._profiler is not None:
                    stats = pstats.Stats(span._profiler)
                    if self._pstats is None:
                        self._pstats = stats
                    else:
                        self._pstats.add(stats)
            st = self._spans.setdefault(span.path, _new_stats())
            st["count"] += 1
            st["total_s"] += elapsed
            st["min_s"] = min(st["min_s"], elapsed)
            st["max_s"] = max(st["max_s"], elapsed)
            if mem_peak:
                st["mem_peak_bytes"] = max(st.get("mem_peak_bytes", 0), mem_peak)
            # Bounded reservoir (algorithm R) for p50/p95 in report().
            res = self._samples.setdefault(span.path, [])
            if len(res) < RESERVOIR_SIZE:
                res.append(elapsed)
            else:
                j = self._sample_rng.randrange(int(st["count"]))
                if j < RESERVOIR_SIZE:
                    res[j] = elapsed
        stack = self._stack()
        if stack and stack[-1][0] == span.name:
            stack.pop()
        if self._metrics is not None:
            self._metrics.observe_span(span.name, elapsed)
        record: dict[str, Any] = {
            "span": span.path,
            "name": span.name,
            "duration_s": elapsed,
            "start_ts": span._wall0,
            "trace_id": self._trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "tid": threading.get_ident(),
        }
        if mem_peak:
            record["mem_peak_bytes"] = mem_peak
        self.event("span", **record)

    # -- counters / gauges ----------------------------------------------
    def counter(self, name: str, inc: float = 1) -> None:
        """Add ``inc`` to the monotonic counter ``name``."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + inc
        if self._metrics is not None:
            self._metrics.inc(name, inc)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)
        if self._metrics is not None:
            self._metrics.set(name, value)

    # -- structured events ----------------------------------------------
    def event(self, kind: str, /, **fields: Any) -> None:
        """Append a structured record to the sink (no-op when disabled)."""
        if not self._enabled:
            return
        self._sink.emit({"event": kind, "ts": time.time(), "pid": self._pid, **fields})

    def emit_raw(self, record: dict[str, Any]) -> None:
        """Forward an already-built event record to the sink verbatim.

        Used when folding worker-process event logs into the parent's
        sink: the records keep their original trace/span IDs, pid, and
        timestamps.
        """
        if not self._enabled:
            return
        self._sink.emit(record)

    def emit_summary(self, **extra: Any) -> None:
        """Emit a ``run.summary`` event holding the full :meth:`report`.

        Makes a JSONL event log self-contained for ``repro report``:
        counters, gauges, and span stats (with percentiles) land next
        to the per-iteration events.
        """
        if not self._enabled:
            return
        self.event(
            "run.summary", trace_id=self._trace_id, report=self.report(), **extra
        )
        self.flush()

    def flush(self) -> None:
        self._sink.flush()

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of counters/gauges/spans, for delta reports."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "spans": {k: dict(v) for k, v in self._spans.items()},
            }

    def report(self, *, since: dict[str, Any] | None = None) -> dict[str, Any]:
        """Summary dict of everything recorded (JSON-safe).

        Span stats include ``p50_s``/``p95_s`` percentiles estimated
        from a bounded per-span duration reservoir, plus the reservoir
        itself under ``sample`` (so cross-process merges can combine
        percentiles).  With ``since`` (a :meth:`snapshot`), counters and
        span count/total become deltas — min/max and the percentiles
        stay absolute, which is the honest choice since extrema and
        sampled quantiles cannot be un-mixed.
        """
        snap = self.snapshot()
        with self._lock:
            samples = {k: list(v) for k, v in self._samples.items()}
        for k, st in snap["spans"].items():
            res = sorted(samples.get(k, ()))
            if res:
                st["p50_s"] = _percentile(res, 0.50)
                st["p95_s"] = _percentile(res, 0.95)
                st["sample"] = res
        if since is not None:
            base_c = since.get("counters", {})
            snap["counters"] = {
                k: v - base_c.get(k, 0)
                for k, v in snap["counters"].items()
                if v != base_c.get(k, 0)
            }
            base_s = since.get("spans", {})
            spans: dict[str, dict[str, float]] = {}
            for k, v in snap["spans"].items():
                b = base_s.get(k)
                if b is None:
                    spans[k] = v
                    continue
                if v["count"] == b["count"]:
                    continue
                d = dict(v)
                d["count"] = v["count"] - b["count"]
                d["total_s"] = v["total_s"] - b["total_s"]
                spans[k] = d
            snap["spans"] = spans
        out: dict[str, Any] = {
            "enabled": self._enabled,
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "spans": snap["spans"],
        }
        if self._pstats is not None and since is None:
            out["profile"] = {"top": _top_functions(self._pstats)}
        return out

    def merge_report(self, report: dict[str, Any] | None) -> "Telemetry":
        """Fold a worker-process :meth:`report` into this registry.

        Counters sum, gauges take the incoming value, span stats
        combine (count/total add, min/max widen, duration reservoirs
        pool and re-subsample to the bound).  ``None`` and profile
        sections are ignored.
        """
        if not report:
            return self
        with self._lock:
            for k, v in report.get("counters", {}).items():
                self._counters[k] = self._counters.get(k, 0) + v
            for k, v in report.get("gauges", {}).items():
                self._gauges[k] = v
            for k, v in report.get("spans", {}).items():
                st = self._spans.setdefault(k, _new_stats())
                st["count"] += v.get("count", 0)
                st["total_s"] += v.get("total_s", 0.0)
                st["min_s"] = min(st["min_s"], v.get("min_s", float("inf")))
                st["max_s"] = max(st["max_s"], v.get("max_s", 0.0))
                if "mem_peak_bytes" in v:
                    st["mem_peak_bytes"] = max(
                        st.get("mem_peak_bytes", 0), v["mem_peak_bytes"]
                    )
                incoming = v.get("sample")
                if incoming:
                    res = self._samples.setdefault(k, [])
                    res.extend(float(d) for d in incoming)
                    if len(res) > RESERVOIR_SIZE:
                        self._samples[k] = self._sample_rng.sample(
                            res, RESERVOIR_SIZE
                        )
        return self


def _top_functions(stats: pstats.Stats, n: int = 20) -> list[dict[str, Any]]:
    """Top-``n`` functions by cumulative time from aggregated pstats."""
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{lineno}({func})",
                "ncalls": int(nc),
                "tottime_s": float(tt),
                "cumtime_s": float(ct),
            }
        )
    rows.sort(key=lambda r: r["cumtime_s"], reverse=True)
    return rows[:n]


#: The process-wide registry all instrumented code records into.
telemetry = Telemetry()


def get_telemetry() -> Telemetry:
    """Return the process-wide :class:`Telemetry` registry."""
    return telemetry
