"""Live metrics: a thread-safe registry of counters, gauges, histograms.

Where :mod:`repro.obs.telemetry` answers "what happened over the whole
run" (JSONL events, post-hoc ``repro report``), this module answers
"what is happening *right now*": every instrument is cheap to update
from the serve loop and cheap to snapshot from a scraper thread, and
the snapshot carries *windowed* statistics — exact percentiles and
rates over the most recent samples — rather than lifetime aggregates
that go stale on hours-long runs.

Instruments
-----------
* :class:`Counter` — monotonic total (``..._total`` in Prometheus).
* :class:`Gauge` — last-value-wins instantaneous reading.
* :class:`Histogram` — fixed cumulative buckets plus an attached
  :class:`RollingWindow`, so one ``observe`` feeds both the Prometheus
  histogram series and the exact windowed p50/p95/p99.

Aggregators
-----------
* :class:`RollingWindow` — bounded (time horizon *and* sample count)
  buffer of recent observations with exact linear-interpolated
  percentiles and an observations-per-second rate.
* :class:`Ewma` — time-decayed exponentially weighted moving average
  (half-life semantics), for smooth rates like epochs/s.

The :class:`MetricsRegistry` is the scrape surface: ``collect()``
returns an ordered snapshot that :mod:`repro.obs.exposition` renders as
Prometheus text format, and ``to_dict()`` is the JSON twin served at
``/varz`` and consumed by ``repro serve top``.  All mutation goes
through one registry lock, so a scraper thread can render mid-epoch
without torn reads (pinned by the concurrent-scrape test).

Telemetry feeds in: :meth:`repro.obs.telemetry.Telemetry.attach_metrics`
mirrors every counter increment and span completion into a registry, so
existing instrumentation lights up the live surface without new call
sites.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Ewma",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollingWindow",
    "sanitize_metric_name",
]

#: Default histogram bucket upper bounds, in seconds — tuned for
#: scheduler decision latencies (sub-ms to tens of seconds).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default rolling-window shape shared by histograms and the serve loop:
#: keep at most this many samples...
DEFAULT_WINDOW_SAMPLES = 512
#: ...and drop anything older than this many seconds.
DEFAULT_WINDOW_S = 300.0

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary dotted name into a valid Prometheus name.

    ``serve.cache_hits`` -> ``serve_cache_hits``; a leading digit gets
    an underscore prefix.  Idempotent on already-valid names.
    """
    if _NAME_OK.match(name):
        return name
    fixed = _NAME_FIX.sub("_", name)
    if not fixed or not _NAME_OK.match(fixed):
        fixed = "_" + fixed
    return fixed


def percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted list (0 if empty)."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class RollingWindow:
    """Recent observations, bounded by sample count and age.

    Percentiles are *exact* over the retained window (sorted on query,
    not on insert — queries are scrape-rate, inserts are epoch-rate),
    which is what fixes the stale-reservoir problem of lifetime
    percentile estimates on long runs.
    """

    def __init__(
        self,
        *,
        horizon_s: float = DEFAULT_WINDOW_S,
        max_samples: int = DEFAULT_WINDOW_SAMPLES,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.horizon_s = float(horizon_s)
        self.max_samples = int(max_samples)
        self._clock = clock
        self._buf: deque[tuple[float, float]] = deque(maxlen=self.max_samples)

    def observe(self, value: float, *, t: float | None = None) -> None:
        now = self._clock() if t is None else t
        self._buf.append((now, float(value)))
        self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        buf = self._buf
        while buf and buf[0][0] < cutoff:
            buf.popleft()

    def values(self) -> list[float]:
        """Retained values, oldest first (pruning expired entries)."""
        self._prune(self._clock())
        return [v for _, v in self._buf]

    def __len__(self) -> int:
        self._prune(self._clock())
        return len(self._buf)

    def count(self) -> int:
        return len(self)

    def sum(self) -> float:
        return sum(self.values())

    def mean(self) -> float:
        vals = self.values()
        return sum(vals) / len(vals) if vals else 0.0

    def max(self) -> float:
        vals = self.values()
        return max(vals) if vals else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (linear interpolation) over the window."""
        return percentile(sorted(self.values()), q)

    def rate_per_s(self) -> float:
        """Observations per second over the retained span.

        Uses the actual span covered by retained samples (clamped to
        the horizon), so a freshly started window does not under-report.
        """
        now = self._clock()
        self._prune(now)
        if not self._buf:
            return 0.0
        span = min(self.horizon_s, now - self._buf[0][0])
        if span <= 0:
            return float(len(self._buf))
        return len(self._buf) / span

    def snapshot(self) -> dict[str, float]:
        """JSON-safe windowed stats (count, mean, p50/p95/p99, max, rate)."""
        vals = sorted(self.values())
        return {
            "count": len(vals),
            "mean": (sum(vals) / len(vals)) if vals else 0.0,
            "p50": percentile(vals, 0.50),
            "p95": percentile(vals, 0.95),
            "p99": percentile(vals, 0.99),
            "max": vals[-1] if vals else 0.0,
            "rate_per_s": self.rate_per_s(),
        }


class Ewma:
    """Time-decayed exponentially weighted moving average.

    Decay follows a half-life: an observation ``halflife_s`` old has
    half the weight of a fresh one, independent of the update cadence
    (the classic irregular-interval EWMA).
    """

    def __init__(
        self,
        *,
        halflife_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if halflife_s <= 0:
            raise ValueError(f"halflife_s must be > 0, got {halflife_s}")
        self.halflife_s = float(halflife_s)
        self._clock = clock
        self._value: float | None = None
        self._t: float | None = None

    @property
    def value(self) -> float:
        return 0.0 if self._value is None else self._value

    def update(self, value: float, *, t: float | None = None) -> float:
        now = self._clock() if t is None else t
        value = float(value)
        if self._value is None or self._t is None:
            self._value = value
        else:
            dt = max(0.0, now - self._t)
            alpha = 1.0 - math.exp(-math.log(2.0) * dt / self.halflife_s)
            self._value += alpha * (value - self._value)
        self._t = now
        return self._value


class Counter:
    """Monotonic counter.  Mutate via the owning registry's lock."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", *, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    def inc_locked(self, amount: float = 1.0) -> None:
        """Unlocked fast path: caller must hold the registry lock."""
        self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """Last-value-wins instantaneous reading."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", *, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_locked(self, value: float) -> None:
        """Unlocked fast path: caller must hold the registry lock."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Fixed-bucket cumulative histogram plus a rolling window.

    One ``observe`` updates both views: the Prometheus-style cumulative
    bucket counts (lifetime, cheap, mergeable) and the
    :class:`RollingWindow` that backs the exact windowed percentiles in
    :meth:`snapshot` — the numbers ``/healthz`` SLO rules and
    ``repro serve top`` read.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        window_s: float = DEFAULT_WINDOW_S,
        window_samples: int = DEFAULT_WINDOW_SAMPLES,
        lock: threading.Lock,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.help = help
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = tuple(bounds)
        self._lock = lock
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf is last
        self._count = 0
        self._sum = 0.0
        self.window = RollingWindow(
            horizon_s=window_s, max_samples=window_samples, clock=clock
        )

    def observe(self, value: float) -> None:
        with self._lock:
            self.observe_locked(value)

    def observe_locked(self, value: float) -> None:
        """Unlocked fast path: caller must hold the registry lock."""
        value = float(value)
        # First bucket whose bound >= value, i.e. the "value <= le"
        # Prometheus bucket; one past the end means +Inf.
        self._counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        self.window.observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            return self._cumulative_locked()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            window = self.window.snapshot()
            return {
                "type": self.kind,
                "help": self.help,
                "count": self._count,
                "sum": self._sum,
                "buckets": [
                    ["+Inf" if math.isinf(b) else b, c]
                    for b, c in self._cumulative_locked()
                ],
                "window": window,
            }

    def _cumulative_locked(self) -> list[tuple[float, int]]:
        out = []
        running = 0
        for bound, c in zip(self.buckets, self._counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out


class MetricsRegistry:
    """Get-or-create home for all live instruments.

    One :class:`threading.RLock` guards every instrument it creates, so
    a ``collect()`` from the exposition thread serializes against
    serve-loop updates — scrapes see a consistent point-in-time view.
    """

    def __init__(
        self,
        *,
        namespace: str = "repro",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.namespace = sanitize_metric_name(namespace) if namespace else ""
        self._clock = clock
        self._lock = threading.RLock()
        self._metrics: dict[str, Any] = {}
        self._collect_hooks: list[Callable[[], None]] = []

    def _full_name(self, name: str) -> str:
        name = sanitize_metric_name(name)
        if self.namespace and not name.startswith(self.namespace + "_"):
            name = f"{self.namespace}_{name}"
        return name

    def _get_or_create(self, name: str, factory: Callable[[str], Any], kind: str):
        full = self._full_name(name)
        with self._lock:
            existing = self._metrics.get(full)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {full!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            metric = factory(full)
            self._metrics[full] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda n: Counter(n, help, lock=self._lock), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda n: Gauge(n, help, lock=self._lock), "gauge"
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        window_s: float = DEFAULT_WINDOW_S,
        window_samples: int = DEFAULT_WINDOW_SAMPLES,
    ) -> Histogram:
        return self._get_or_create(
            name,
            lambda n: Histogram(
                n,
                help,
                buckets=buckets,
                window_s=window_s,
                window_samples=window_samples,
                lock=self._lock,
                clock=self._clock,
            ),
            "histogram",
        )

    # -- telemetry bridge -------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Bridge hook: mirror a telemetry counter increment."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """Bridge hook: mirror a telemetry gauge update."""
        self.gauge(name).set(value)

    def observe_span(self, name: str, seconds: float) -> None:
        """Bridge hook: record one span completion as a duration sample."""
        self.histogram(
            f"{name}_duration_seconds", f"span {name!r} durations"
        ).observe(seconds)

    # -- snapshots --------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        """The registry-wide RLock (reentrant).

        Renderers hold it across a whole multi-instrument read so a
        scrape sees one point-in-time view — per-instrument accessors
        each reacquire it, which lets writers interleave between reads.
        """
        return self._lock

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the start of every :meth:`collect`.

        The Prometheus *gauge function* idiom: derived gauges (queue
        depth, hit ratio, current benefit) are refreshed lazily when a
        scrape happens instead of on every producer event — scrapes
        arrive ~1/s while the serve loop emits thousands of epochs per
        second on replayed logs, so this keeps the per-epoch
        observability cost under its <2% budget.
        """
        with self._lock:
            if hook not in self._collect_hooks:
                self._collect_hooks.append(hook)

    def remove_collect_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a :meth:`add_collect_hook` callback (idempotent)."""
        with self._lock:
            try:
                self._collect_hooks.remove(hook)
            except ValueError:
                pass

    def collect(self) -> list[tuple[str, Any]]:
        """``(name, instrument)`` pairs in sorted-name order.

        Collect hooks run first (outside per-instrument reads, lock
        reentrant) so lazily-refreshed gauges are current in the result.
        """
        with self._lock:
            hooks = tuple(self._collect_hooks)
        for hook in hooks:
            hook()
        with self._lock:
            return sorted(self._metrics.items())

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of every instrument (the ``/varz`` body)."""
        with self._lock:
            return {name: metric.snapshot() for name, metric in self.collect()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return self._full_name(name) in self._metrics
