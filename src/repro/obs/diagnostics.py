"""Domain diagnostics: why a run converged, not just that it ran.

The telemetry registry records *where time went*; this module records
*model and constraint health* alongside it, as structured events the
``repro report`` CLI tabulates:

* ``gp.diagnostics`` — per-outcome-GP kernel hyperparameters, observation
  noise, log marginal likelihood, and (on refits) held-out RMSE of the
  pre-update model against the freshly measured batch;
* ``pref.diagnostics`` — preference-learner state: comparison/item
  counts and, when a ground-truth pricing oracle is available, the
  Kendall-τ rank agreement between ĝ and the true benefit over the
  learner's outcome space;
* ``sched.*`` counters/gauges — Const1/Const2 violation counts,
  zero-jitter (Theorem 1) group counts, and peak server utilization,
  emitted per Algorithm-1 schedule.

Every helper is a no-op while telemetry is disabled, so the emission
sites in the BO loop / scheduler stay unconditionally instrumented
without touching the <2% disabled-path overhead budget.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

import numpy as np

from repro.obs.telemetry import telemetry
from repro.sched.theory import (
    const1_satisfied,
    const2_satisfied,
    theorem1_zero_jitter,
    utilization,
)

__all__ = [
    "gp_hyperparameters",
    "holdout_rmse",
    "emit_outcome_gp_diagnostics",
    "rank_agreement",
    "emit_preference_diagnostics",
    "emit_schedule_diagnostics",
]


def gp_hyperparameters(gp) -> dict[str, Any]:
    """JSON-safe hyperparameter snapshot of one GP regressor.

    Prefers the model's own :meth:`~repro.gp.regression.GPRegressor.
    hyperparameters`; falls back to reading kernel/noise attributes for
    duck-typed surrogates.
    """
    describe = getattr(gp, "hyperparameters", None)
    if callable(describe):
        return describe()
    out: dict[str, Any] = {}
    kernel = getattr(gp, "kernel", None)
    if kernel is not None and hasattr(kernel, "lengthscales"):
        out["kernel"] = type(kernel).__name__
        out["lengthscales"] = [float(v) for v in np.atleast_1d(kernel.lengthscales)]
        out["outputscale"] = float(getattr(kernel, "outputscale", 1.0))
    if hasattr(gp, "noise"):
        out["noise"] = float(gp.noise)
    return out


def holdout_rmse(bank, x, y) -> dict[str, float]:
    """Per-objective RMSE of the bank's predictions at held-out points.

    Called with a freshly measured batch *before* the bank conditions on
    it, this is a genuine out-of-sample error estimate for each outcome
    surrogate.
    """
    from repro.outcomes.functions import OBJECTIVES

    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.atleast_2d(np.asarray(y, dtype=float))
    mean, _ = bank.predict_per_stream(x)
    err = np.sqrt(np.mean((mean - y) ** 2, axis=0))
    return {name: float(err[j]) for j, name in enumerate(OBJECTIVES)}


def emit_outcome_gp_diagnostics(
    bank,
    *,
    phase: str = "fit",
    iteration: int | None = None,
    holdout: tuple[np.ndarray, np.ndarray] | None = None,
    rmse: dict[str, float] | None = None,
) -> None:
    """Emit one ``gp.diagnostics`` event for a fitted outcome-GP bank.

    ``rmse`` attaches precomputed per-objective held-out RMSE (use
    :func:`holdout_rmse` on the *pre-update* model); alternatively
    ``holdout=(x, y)`` computes it here against ``bank`` as-is.
    """
    if not telemetry.enabled:
        return
    if rmse is None and holdout is not None:
        rmse = holdout_rmse(bank, *holdout)
    objectives: dict[str, Any] = {}
    for name, gp in getattr(bank, "models", {}).items():
        objectives[name] = gp_hyperparameters(gp)
        if rmse is not None and name in rmse:
            objectives[name]["holdout_rmse"] = rmse[name]
    telemetry.event(
        "gp.diagnostics", phase=phase, iteration=iteration, objectives=objectives
    )
    telemetry.counter("diag.gp_events")


def rank_agreement(predicted, truth) -> float:
    """Kendall-τ rank correlation between two utility vectors.

    1.0 means the learned preference orders every pair like the oracle;
    0.0 means no agreement.  Non-finite results (constant inputs)
    collapse to 0.0.
    """
    from scipy.stats import kendalltau

    predicted = np.asarray(predicted, dtype=float).ravel()
    truth = np.asarray(truth, dtype=float).ravel()
    if predicted.size != truth.size:
        raise ValueError(
            f"predicted has {predicted.size} values but truth has {truth.size}"
        )
    if predicted.size < 2:
        return 0.0
    tau = kendalltau(predicted, truth).statistic
    return float(tau) if np.isfinite(tau) else 0.0


def emit_preference_diagnostics(
    learner, *, oracle=None, iteration: int | None = None
) -> None:
    """Emit one ``pref.diagnostics`` event for a preference learner.

    ``oracle`` is a :class:`~repro.pref.decision_maker.TruePreference`
    (e.g. the simulated decision maker's hidden pricing rule); when
    given and the learner is fitted, the event carries the Kendall-τ
    rank agreement of ĝ against it over the learner's outcome space.
    ``learner=None`` (PaMO+ has no learner) is a silent no-op.
    """
    if not telemetry.enabled or learner is None:
        return
    fields: dict[str, Any] = {
        "iteration": iteration,
        "n_comparisons": int(learner.n_comparisons),
        "n_items": int(learner.n_items),
    }
    if oracle is not None and learner.is_fitted:
        space = learner.outcome_space
        tau = rank_agreement(learner.utility(space), oracle.value(space))
        fields["kendall_tau"] = tau
        telemetry.gauge("pref.kendall_tau", tau)
    telemetry.event("pref.diagnostics", **fields)
    telemetry.counter("diag.pref_events")


def emit_schedule_diagnostics(streams: Sequence, assignment: Sequence[int]) -> None:
    """Fold one Algorithm-1 schedule into the constraint counters.

    Counters: ``sched.schedules``, ``sched.const1_violations``,
    ``sched.const2_violations``, ``sched.zero_jitter_groups``,
    ``sched.groups``; gauge: ``sched.max_utilization``.
    """
    if not telemetry.enabled:
        return
    telemetry.counter("sched.schedules")
    if not const1_satisfied(streams, assignment):
        telemetry.counter("sched.const1_violations")
    if not const2_satisfied(streams, assignment):
        telemetry.counter("sched.const2_violations")
    groups: dict[int, list] = defaultdict(list)
    for st, q in zip(streams, assignment):
        if q != -1:
            groups[int(q)].append(st)
    telemetry.counter("sched.groups", len(groups))
    telemetry.counter(
        "sched.zero_jitter_groups",
        sum(1 for grp in groups.values() if theorem1_zero_jitter(grp)),
    )
    util = utilization(streams, assignment)
    if util:
        telemetry.gauge("sched.max_utilization", max(util.values()))
