"""Metrics exposition: Prometheus text + JSON over a stdlib HTTP thread.

:func:`render_prometheus` turns a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot into the
Prometheus text exposition format (version 0.0.4 — ``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` / ``_count``
histogram series), and :class:`MetricsServer` serves it from a daemon
thread so a live ``repro serve run`` is scrapeable without touching the
event loop:

* ``GET /metrics`` — Prometheus text format;
* ``GET /healthz`` — JSON health document (``status`` plus active
  alerts); HTTP 200 while ``ok``/``degraded``, 503 once ``unhealthy``
  (load balancers should stop sending before the operator pages);
* ``GET /varz``   — one JSON blob with everything: the full registry
  snapshot (windowed percentiles included), the health document, and
  the owner's service stats.  This is what ``repro serve top`` polls.

Everything is stdlib (:mod:`http.server`), bound to ``127.0.0.1`` by
default, and ``port=0`` asks the kernel for an ephemeral port — the
pattern every test uses to avoid collisions.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE_LATEST", "MetricsServer", "render_prometheus"]

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE_LATEST = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting (integers without ``.0``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered instrument as Prometheus text format.

    Holds the registry lock for the whole render so one scrape is a
    consistent point-in-time view (a histogram's ``+Inf`` bucket always
    equals its ``_count``, even while writer threads race the scrape).
    """
    lines: list[str] = []
    with registry.lock:
        return _render_locked(registry, lines)


def _render_locked(registry: MetricsRegistry, lines: list[str]) -> str:
    for name, metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            for bound, cumulative in metric.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _fmt(bound)
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        else:
            lines.append(f"{name} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /varz; everything else is 404."""

    server_version = "repro-metrics/1"
    server: "_HTTPServer"

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = render_prometheus(self.server.registry).encode()
                self._respond(200, CONTENT_TYPE_LATEST, body)
            elif path == "/healthz":
                health = self.server.health_fn()
                code = 503 if health.get("status") == "unhealthy" else 200
                self._respond_json(code, health)
            elif path == "/varz":
                self._respond_json(
                    200,
                    {
                        "metrics": self.server.registry.to_dict(),
                        "health": self.server.health_fn(),
                        "service": self.server.varz_fn(),
                    },
                )
            else:
                self._respond_json(404, {"error": f"no route {path!r}"})
        except Exception as exc:  # noqa: BLE001 — a scrape must never kill the server
            try:
                self._respond_json(500, {"error": repr(exc)})
            except OSError:
                pass  # client hung up mid-response

    def _respond(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, code: int, doc: dict[str, Any]) -> None:
        self._respond(
            code,
            "application/json",
            json.dumps(doc, sort_keys=True, default=str).encode(),
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay off stderr


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Serve-loop restarts (tests, checkpoints) rebind quickly.
    allow_reuse_address = True

    def __init__(self, addr, registry, health_fn, varz_fn) -> None:
        super().__init__(addr, _Handler)
        self.registry = registry
        self.health_fn = health_fn
        self.varz_fn = varz_fn


class MetricsServer:
    """A scrape endpoint for one registry, in a background thread.

    ``health`` and ``varz`` are zero-argument callables evaluated per
    request (so the serve loop stays the single writer of its own
    state); both default to static empty documents.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        health: Callable[[], dict[str, Any]] | None = None,
        varz: Callable[[], dict[str, Any]] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.requested_port = int(port)
        self._health = health or (lambda: {"status": "ok", "alerts": []})
        self._varz = varz or (lambda: {})
        self._httpd: _HTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        self._httpd = _HTTPServer(
            (self.host, self.requested_port), self.registry, self._health, self._varz
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
