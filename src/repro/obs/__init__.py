"""Observability: telemetry spans/counters/events and profiling hooks.

Usage::

    from repro.obs import telemetry

    telemetry.enable("run.jsonl", profile=False)   # opt in
    with telemetry.span("pamo.fit_outcomes"):
        ...
    telemetry.counter("pamo.tx_cache.hit")
    telemetry.event("bo.iteration", iteration=1, batch_best=0.42)
    summary = telemetry.report()

Everything is a fast no-op until :func:`~repro.obs.telemetry.Telemetry.enable`
is called, so library code is instrumented unconditionally.
"""

from repro.obs.sinks import EventSink, JsonlSink, MemorySink, NullSink
from repro.obs.telemetry import (
    Telemetry,
    get_telemetry,
    new_span_id,
    new_trace_id,
    telemetry,
)

__all__ = [
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "Telemetry",
    "get_telemetry",
    "new_span_id",
    "new_trace_id",
    "telemetry",
]
