"""Observability: telemetry spans/counters/events and profiling hooks.

Usage::

    from repro.obs import telemetry

    telemetry.enable("run.jsonl", profile=False)   # opt in
    with telemetry.span("pamo.fit_outcomes"):
        ...
    telemetry.counter("pamo.tx_cache.hit")
    telemetry.event("bo.iteration", iteration=1, batch_best=0.42)
    summary = telemetry.report()

Everything is a fast no-op until :func:`~repro.obs.telemetry.Telemetry.enable`
is called, so library code is instrumented unconditionally.
"""

from repro.obs.exposition import MetricsServer, render_prometheus
from repro.obs.health import Alert, HealthMonitor, SloRule, default_rules
from repro.obs.metrics import (
    Counter,
    Ewma,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingWindow,
)
from repro.obs.sinks import EventSink, JsonlSink, MemorySink, NullSink
from repro.obs.telemetry import (
    Telemetry,
    get_telemetry,
    new_span_id,
    new_trace_id,
    telemetry,
)

__all__ = [
    "Alert",
    "Counter",
    "EventSink",
    "Ewma",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MetricsServer",
    "NullSink",
    "RollingWindow",
    "SloRule",
    "Telemetry",
    "default_rules",
    "get_telemetry",
    "new_span_id",
    "new_trace_id",
    "render_prometheus",
    "telemetry",
]
