"""Declarative SLO rules and the ok/degraded/unhealthy state machine.

A serving system's health is not one boolean: the scheduler can be
*degraded* (cache-hit ratio collapsed, benefit sagging) long before it
is *unhealthy* (decision latency blowing the budget).  This module
turns a handful of declarative :class:`SloRule`\\ s into exactly that
three-state view, plus edge-triggered alert events the serve loop
writes into telemetry — so a chaos run can assert "the injected
``server_down`` fired ``alert.fired``" instead of eyeballing a log.

Rule syntax
-----------
A rule is "*healthy while this comparison holds*"::

    SloRule.parse("decision_p95_s < 0.25")
    SloRule.parse("benefit_drop_ratio < 0.2 ! unhealthy")
    SloRule.parse("latency: decision_p95_s < 0.25 for 3")

``metric`` is a key into the snapshot dict the caller passes to
:meth:`HealthMonitor.evaluate` (the serve loop uses
``SchedulerService.health_snapshot``); ``op`` is one of ``< <= > >=``;
``! severity`` names the state entered when the rule is violated
(default ``degraded``); ``for N`` requires N *consecutive* violating
evaluations before the alert fires (hysteresis against one-epoch
blips).  An optional leading ``name:`` labels the rule; otherwise the
spec itself is the name.

State machine
-------------
Overall state is the worst severity among currently-firing rules
(``ok`` < ``degraded`` < ``unhealthy``).  :meth:`HealthMonitor.evaluate`
returns the *edges* — ``alert.fired`` / ``alert.resolved`` event dicts
— exactly once per transition; steady violation produces no event spam.
Rules whose metric is absent from a snapshot are skipped (treated as
passing), so one rule set serves runs with and without benefit scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "SEVERITIES",
    "Alert",
    "HealthMonitor",
    "SloRule",
    "default_rules",
    "severity_rank",
]

#: Health states, mildest first.  Index = numeric rank (the
#: ``repro_serve_health`` gauge value).
SEVERITIES = ("ok", "degraded", "unhealthy")

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (``ok``=0, ``degraded``=1, ...)."""
    return SEVERITIES.index(severity)


@dataclass(frozen=True)
class SloRule:
    """One healthy-while condition over a snapshot metric."""

    metric: str
    op: str
    threshold: float
    severity: str = "degraded"
    name: str = ""
    for_count: int = 1

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(
                f"unknown comparator {self.op!r}; choose from {sorted(_OPS)}"
            )
        if self.severity not in SEVERITIES[1:]:
            raise ValueError(
                f"rule severity must be one of {SEVERITIES[1:]}, "
                f"got {self.severity!r}"
            )
        if self.for_count < 1:
            raise ValueError(f"for_count must be >= 1, got {self.for_count}")
        if not self.name:
            object.__setattr__(self, "name", self.spec())

    def holds(self, value: float) -> bool:
        """True when the healthy condition is satisfied."""
        return _OPS[self.op](float(value), self.threshold)

    def spec(self) -> str:
        """Compact string form; :meth:`parse` round-trips it."""
        out = f"{self.metric} {self.op} {self.threshold:g}"
        if self.for_count != 1:
            out += f" for {self.for_count}"
        if self.severity != "degraded":
            out += f" ! {self.severity}"
        return out

    @classmethod
    def parse(cls, spec: str) -> "SloRule":
        """Parse ``[name:] metric op value [for N] [! severity]``."""
        text = spec.strip()
        name = ""
        if ":" in text.split("<")[0].split(">")[0]:
            name, text = text.split(":", 1)
            name = name.strip()
            text = text.strip()
        severity = "degraded"
        if "!" in text:
            text, severity = text.rsplit("!", 1)
            severity = severity.strip()
            text = text.strip()
        for_count = 1
        parts = text.split()
        if len(parts) >= 2 and parts[-2] == "for":
            for_count = int(parts[-1])
            parts = parts[:-2]
        if len(parts) != 3:
            raise ValueError(
                f"cannot parse SLO rule {spec!r}; expected "
                "'[name:] metric op value [for N] [! severity]'"
            )
        metric, op, value = parts
        return cls(
            metric=metric,
            op=op,
            threshold=float(value),
            severity=severity,
            name=name,
            for_count=for_count,
        )


@dataclass
class Alert:
    """A currently-firing (or just-resolved) rule violation."""

    rule: str
    metric: str
    severity: str
    threshold: float
    value: float
    since_epoch: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "severity": self.severity,
            "threshold": self.threshold,
            "value": self.value,
            "since_epoch": self.since_epoch,
        }


@dataclass
class _RuleState:
    violations: int = 0
    alert: Alert | None = None


class HealthMonitor:
    """Evaluate SLO rules against snapshots; track firing alerts.

    Pure Python state (no locks, no threads), so it pickles inside a
    serve checkpoint and replays deterministically.
    """

    def __init__(self, rules: Iterable[SloRule] = ()) -> None:
        self.rules: list[SloRule] = list(rules)
        self._states: dict[str, _RuleState] = {
            r.name: _RuleState() for r in self.rules
        }
        self._compile()

    def _compile(self) -> None:
        """Pre-resolve per-rule lookups for the per-epoch evaluate loop.

        ``evaluate`` runs every serve epoch inside the <2% metrics
        budget; resolving ``_OPS[rule.op]``, the rule's dataclass
        attributes, and the state dict once here keeps the loop to one
        comparator call per rule.  (``_OPS`` holds lambdas, so the
        compiled list is dropped on pickle and rebuilt on load.)
        """
        self._checks = [
            (
                rule,
                self._states.setdefault(rule.name, _RuleState()),
                rule.metric,
                _OPS[rule.op],
                rule.threshold,
                rule.for_count,
            )
            for rule in self.rules
        ]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_checks", None)  # holds unpicklable comparator lambdas
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._compile()

    @property
    def active(self) -> list[Alert]:
        """Currently-firing alerts, worst severity first."""
        alerts = [
            s.alert for s in self._states.values() if s.alert is not None
        ]
        alerts.sort(key=lambda a: (-severity_rank(a.severity), a.rule))
        return alerts

    @property
    def state(self) -> str:
        """Overall health: worst severity among firing alerts.

        Read every epoch by the serve loop (the ``serve_health``
        gauge), so it scans the raw rule states instead of building
        :attr:`active`'s sorted list.
        """
        worst = 0
        for rule_state in self._states.values():
            alert = rule_state.alert
            if alert is not None:
                rank = severity_rank(alert.severity)
                if rank > worst:
                    worst = rank
        return SEVERITIES[worst]

    def evaluate(
        self,
        snapshot: Mapping[str, Any],
        *,
        epoch: int | None = None,
    ) -> list[dict[str, Any]]:
        """Check every rule; return edge-triggered alert event dicts.

        Each returned dict has ``event`` = ``alert.fired`` or
        ``alert.resolved`` plus the :meth:`Alert.to_dict` fields —
        ready to pass to ``telemetry.event(**...)`` or append to a log.
        """
        if len(self._checks) != len(self.rules):
            self._compile()  # rules list mutated after construction
        edges: list[dict[str, Any]] = []
        get = snapshot.get
        for rule, state, metric, op, threshold, for_count in self._checks:
            raw = get(metric)
            if raw is None:
                continue  # metric absent this round: rule abstains
            value = float(raw)
            if op(value, threshold):
                if state.violations:
                    state.violations = 0
                if state.alert is not None:
                    resolved = state.alert
                    state.alert = None
                    edges.append(
                        {
                            "event": "alert.resolved",
                            **resolved.to_dict(),
                            "value": value,
                        }
                    )
                continue
            state.violations += 1
            if state.alert is not None:
                state.alert.value = value  # keep the latest reading
            elif state.violations >= for_count:
                state.alert = Alert(
                    rule=rule.name,
                    metric=metric,
                    severity=rule.severity,
                    threshold=threshold,
                    value=value,
                    since_epoch=epoch,
                )
                edges.append({"event": "alert.fired", **state.alert.to_dict()})
        return edges

    def status(self) -> dict[str, Any]:
        """JSON-safe health document (the ``/healthz`` body)."""
        return {
            "status": self.state,
            "alerts": [a.to_dict() for a in self.active],
            "rules": [r.spec() for r in self.rules],
        }


def default_rules(
    *,
    p95_budget_s: float = 0.25,
    max_benefit_drop: float = 0.5,
    min_cache_hit_ratio: float = 0.0,
) -> list[SloRule]:
    """The stock serve-loop rule set.

    * p95 decision latency under budget, else ``unhealthy`` (after 3
      consecutive violations — warm-up full solves are slow by design);
    * windowed benefit drop vs the rolling baseline under
      ``max_benefit_drop``, else ``degraded``;
    * optionally, windowed cache-hit ratio above a floor (off by
      default: a fleet doing constant churn legitimately re-solves).
    """
    rules = [
        SloRule(
            metric="decision_p95_s",
            op="<",
            threshold=p95_budget_s,
            severity="unhealthy",
            name="decision_latency",
            for_count=3,
        ),
        SloRule(
            metric="benefit_drop_ratio",
            op="<",
            threshold=max_benefit_drop,
            severity="degraded",
            name="benefit_drop",
        ),
    ]
    if min_cache_hit_ratio > 0:
        rules.append(
            SloRule(
                metric="cache_hit_ratio",
                op=">=",
                threshold=min_cache_hit_ratio,
                severity="degraded",
                name="cache_hit_ratio",
            )
        )
    return rules
