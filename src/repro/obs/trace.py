"""Trace reconstruction and Chrome ``trace_event`` export.

Every enabled telemetry run is a *trace*: ``Telemetry.enable`` mints a
trace ID, each completed span carries a span ID plus a parent link, and
:mod:`repro.bench.parallel` propagates the IDs into worker processes so
a merged JSONL log is one tree.  This module turns such a log back into
structure:

* :func:`load_events` — parse a JSONL event log (tolerates a torn final
  line from a crashed run);
* :func:`build_span_forest` — reconstruct the span tree(s) from span
  IDs / parent links;
* :func:`orphan_parent_ids` — parent IDs referenced but never defined
  (should be empty for a complete merged trace);
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — convert to the
  Chrome ``trace_event`` JSON format, viewable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = [
    "SpanNode",
    "load_events",
    "build_span_forest",
    "orphan_parent_ids",
    "trace_ids",
    "to_chrome_trace",
    "write_chrome_trace",
]


def load_events(path) -> list[dict[str, Any]]:
    """Parse a JSONL telemetry event log into a list of record dicts.

    Reads across rotated segments (``path.N`` ... ``path.1``, then
    ``path`` — see :class:`repro.obs.sinks.JsonlSink` rotation), so a
    trace reconstructed from a size-rotated log is still one tree.
    Blank lines are skipped; a malformed (torn) final line — the
    signature of a run killed mid-write — is dropped rather than fatal.
    """
    from repro.obs.sinks import iter_jsonl_records, jsonl_segments

    if not jsonl_segments(path):
        raise FileNotFoundError(path)
    return list(iter_jsonl_records(path))


@dataclass
class SpanNode:
    """One completed span in a reconstructed trace tree."""

    span_id: str
    name: str
    path: str
    duration_s: float
    start_ts: float
    pid: int | None = None
    parent_id: str | None = None
    trace_id: str | None = None
    children: list["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterable["SpanNode"]:
        """Yield this node then all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def _span_events(events: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [
        e
        for e in events
        if e.get("event") == "span" and e.get("span_id") and "duration_s" in e
    ]


def build_span_forest(events: Sequence[dict[str, Any]]) -> list[SpanNode]:
    """Reconstruct span trees from a (possibly multi-process) event log.

    Returns the root nodes (spans with no parent, or whose parent never
    completed in this log), children sorted by start time.  A single
    in-process run yields one root per top-level span; a merged
    ``run_parallel`` log yields one tree because worker roots link to
    the parent process's enclosing span.
    """
    nodes: dict[str, SpanNode] = {}
    for e in _span_events(events):
        sid = str(e["span_id"])
        nodes[sid] = SpanNode(
            span_id=sid,
            name=str(e.get("name") or str(e.get("span", "")).rsplit("/", 1)[-1]),
            path=str(e.get("span", e.get("name", ""))),
            duration_s=float(e["duration_s"]),
            start_ts=float(e.get("start_ts", e.get("ts", 0.0) - e["duration_s"])),
            pid=e.get("pid"),
            parent_id=e.get("parent_id") or None,
            trace_id=e.get("trace_id"),
        )
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.start_ts)
    roots.sort(key=lambda n: n.start_ts)
    return roots


def orphan_parent_ids(events: Sequence[dict[str, Any]]) -> set[str]:
    """Parent span IDs referenced by spans but not defined in the log.

    A complete merged trace has none; anything returned here points at
    a worker log that was dropped instead of folded back in.
    """
    spans = _span_events(events)
    known = {str(e["span_id"]) for e in spans}
    return {
        str(e["parent_id"])
        for e in spans
        if e.get("parent_id") and str(e["parent_id"]) not in known
    }


def trace_ids(events: Sequence[dict[str, Any]]) -> list[str]:
    """Distinct trace IDs seen in the log, in first-seen order."""
    seen: dict[str, None] = {}
    for e in events:
        tid = e.get("trace_id")
        if tid:
            seen.setdefault(str(tid), None)
    return list(seen)


def to_chrome_trace(events: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Convert an event log to Chrome ``trace_event`` JSON (dict form).

    Spans become complete ("X") events with microsecond timestamps
    relative to the earliest record; other telemetry events become
    instant ("i") marks, so BO iterations and diagnostics line up with
    the span lanes in Perfetto.  Per-process metadata names each lane.
    """
    spans = _span_events(events)
    starts = [float(e.get("start_ts", e.get("ts", 0.0))) for e in spans]
    starts += [float(e["ts"]) for e in events if "ts" in e]
    t0 = min(starts) if starts else 0.0

    trace_events: list[dict[str, Any]] = []
    pids: dict[int, str] = {}
    for e in events:
        if e.get("event") == "trace.start" and e.get("pid") is not None:
            tag = str(e.get("trace_id", ""))[:8]
            role = "worker" if e.get("parent_id") else "main"
            pids[int(e["pid"])] = f"repro {role} (trace {tag}, pid {e['pid']})"

    for e in spans:
        start = float(e.get("start_ts", e.get("ts", 0.0) - e["duration_s"]))
        trace_events.append(
            {
                "name": str(e.get("name") or e.get("span")),
                "cat": "span",
                "ph": "X",
                "ts": (start - t0) * 1e6,
                "dur": float(e["duration_s"]) * 1e6,
                "pid": int(e.get("pid", 0) or 0),
                "tid": int(e.get("tid", 0) or 0),
                "args": {
                    "path": e.get("span"),
                    "span_id": e.get("span_id"),
                    "parent_id": e.get("parent_id"),
                    "trace_id": e.get("trace_id"),
                },
            }
        )
    for e in events:
        kind = e.get("event")
        if kind in (None, "span"):
            continue
        args = {k: v for k, v in e.items() if k not in ("event", "ts", "pid", "tid")}
        trace_events.append(
            {
                "name": str(kind),
                "cat": "event",
                "ph": "i",
                "s": "p",
                "ts": (float(e.get("ts", t0)) - t0) * 1e6,
                "pid": int(e.get("pid", 0) or 0),
                "tid": int(e.get("tid", 0) or 0),
                "args": args,
            }
        )
    for pid, label in pids.items():
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[dict[str, Any]], path) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(to_chrome_trace(events)))
    return out
