"""JSON-safe conversion shared by result objects, bench IO, and telemetry.

One converter so every serialized artifact — ``--output`` experiment
JSON, telemetry JSONL events, ``ScheduleDecision.to_dict()`` — agrees on
how numpy scalars/arrays, paths, and nested containers become plain
JSON values.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable builtins.

    numpy arrays become (nested) lists, numpy scalars become Python
    scalars, tuples/sets become lists, dict keys are stringified, and
    objects exposing ``to_dict()`` are converted through it.  Raises
    ``TypeError`` for anything else non-serializable so bad payloads
    fail at the producer, not inside ``json.dumps``.
    """
    if obj is None or isinstance(obj, (str, bool, int, float)):
        return obj
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    raise TypeError(f"cannot serialize {type(obj).__name__} to JSON")
