"""Argument validation helpers with consistent error messages.

Validation is deliberately loud: scheduling and GP code silently produces
garbage (singular kernels, infeasible groupings) on malformed input, so
public entry points validate eagerly and raise ``ValueError`` with the
offending name and value.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite scalar."""
    v = float(value)
    if not np.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``lo <= value <= hi`` (or strict if ``inclusive=False``)."""
    v = float(value)
    if not np.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    ok = (lo <= v <= hi) if inclusive else (lo < v < hi)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {lo} {op} {name} {op} {hi}, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_array_1d(name: str, arr, *, dtype=float, min_len: int = 0) -> np.ndarray:
    """Coerce to a 1-D ndarray, validating finiteness and minimum length."""
    a = np.asarray(arr, dtype=dtype)
    if a.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {a.shape}")
    if a.size < min_len:
        raise ValueError(f"{name} must have at least {min_len} elements, got {a.size}")
    if np.issubdtype(a.dtype, np.floating) and not np.all(np.isfinite(a)):
        raise ValueError(f"{name} contains non-finite values")
    return a


def check_array_2d(
    name: str,
    arr,
    *,
    dtype=float,
    n_cols: int | None = None,
) -> np.ndarray:
    """Coerce to a 2-D ndarray, optionally validating the column count."""
    a = np.asarray(arr, dtype=dtype)
    if a.ndim == 1:
        a = a.reshape(1, -1)
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {a.shape}")
    if n_cols is not None and a.shape[1] != n_cols:
        raise ValueError(f"{name} must have {n_cols} columns, got {a.shape[1]}")
    if np.issubdtype(a.dtype, np.floating) and not np.all(np.isfinite(a)):
        raise ValueError(f"{name} contains non-finite values")
    return a
