"""Deterministic random-number plumbing.

Every stochastic entry point in :mod:`repro` accepts ``rng`` as either an
integer seed, an existing :class:`numpy.random.Generator`, or ``None``
(fresh OS entropy).  Converting at the boundary with :func:`as_generator`
keeps experiment scripts reproducible bit-for-bit while letting library
internals assume a real ``Generator``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so callers can share a stream).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or Generator, got {type(rng)!r}")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning
    so that parallel workers (threads, processes, or repeated experiment
    arms) never share a stream.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    gen = as_generator(rng)
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(np.random.SeedSequence(int(s))) for s in seeds]


def derive_seed(rng: RngLike) -> int:
    """Draw a single 63-bit seed from ``rng`` (for labelling / re-seeding)."""
    return int(as_generator(rng).integers(0, 2**63 - 1, dtype=np.int64))
