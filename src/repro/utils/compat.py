"""Deprecation shims for the keyword-only constructor migration.

Scheduler and learner constructors are keyword-only after ``problem``
and share parameter names (``rng``, ``n_iterations``, ``batch_size``).
Old call styles keep working for one release through these helpers,
which emit :class:`DeprecationWarning` so callers can migrate.
"""

from __future__ import annotations

import warnings
from typing import Any, Sequence

__all__ = ["absorb_positional", "resolve_deprecated"]


def absorb_positional(
    owner: str, args: Sequence[Any], names: Sequence[str], kwargs: dict[str, Any]
) -> dict[str, Any]:
    """Map legacy positional ``args`` onto ``names``, warning once.

    ``kwargs`` holds the values the caller already passed by keyword
    (``None`` meaning "not given"); a parameter supplied both ways is a
    ``TypeError`` exactly like a normal duplicate argument.  Returns
    ``kwargs`` with the positional values filled in.
    """
    if not args:
        return kwargs
    if len(args) > len(names):
        raise TypeError(
            f"{owner}() takes at most {len(names)} positional argument(s) "
            f"after 'problem', got {len(args)}"
        )
    shown = ", ".join(repr(n) for n in names[: len(args)])
    warnings.warn(
        f"{owner}: passing {shown} positionally is deprecated; "
        "use keyword argument(s)",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if kwargs.get(name) is not None:
            raise TypeError(f"{owner}() got multiple values for argument {name!r}")
        kwargs[name] = value
    return kwargs


def resolve_deprecated(
    owner: str,
    old_name: str,
    old_value: Any,
    new_name: str,
    new_value: Any,
    *,
    default: Any,
) -> Any:
    """Resolve a renamed keyword: prefer ``new``, accept ``old`` with a warning."""
    if old_value is not None:
        if new_value is not None:
            raise TypeError(
                f"{owner}() got both {new_name!r} and its deprecated "
                f"alias {old_name!r}"
            )
        warnings.warn(
            f"{owner}: keyword {old_name!r} is deprecated; use {new_name!r}",
            DeprecationWarning,
            stacklevel=3,
        )
        return old_value
    return new_value if new_value is not None else default
