"""Shared utilities: RNG handling, validation, small math helpers.

Everything here is dependency-free (numpy only) so every other subpackage
may import it without cycles.
"""

from repro.utils.rng import as_generator, spawn, derive_seed
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_array_1d,
    check_array_2d,
    check_probability,
)
from repro.utils.mathx import (
    gcd_many,
    is_harmonic,
    normalize_minmax,
    safe_cholesky,
    log1mexp,
)
from repro.utils.compat import absorb_positional, resolve_deprecated
from repro.utils.serialization import to_jsonable

__all__ = [
    "as_generator",
    "spawn",
    "derive_seed",
    "check_positive",
    "check_in_range",
    "check_array_1d",
    "check_array_2d",
    "check_probability",
    "gcd_many",
    "is_harmonic",
    "normalize_minmax",
    "safe_cholesky",
    "log1mexp",
    "absorb_positional",
    "resolve_deprecated",
    "to_jsonable",
]
