"""Small numeric helpers used across the library.

These are the few pieces of math shared between otherwise unrelated
subsystems: rational GCDs for periodic-schedule theory, min-max
normalization for outcome vectors, and a jittered Cholesky for GP kernels.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

import numpy as np

#: Denominator limit when converting float periods to exact rationals.
#: Periods in this library are derived from integer frame rates (T = 1/s,
#: s <= 120 fps), so 1e6 is far beyond what is ever needed but cheap.
_FRACTION_LIMIT = 1_000_000


def _to_fraction(x: float) -> Fraction:
    return Fraction(x).limit_denominator(_FRACTION_LIMIT)


def gcd_many(values: Sequence[float] | Iterable[float]) -> float:
    """Greatest common divisor of positive rational values (e.g. periods).

    Stream periods are rationals (inverse integer frame rates), so the GCD
    is computed exactly over :class:`fractions.Fraction` and returned as a
    float.  Raises ``ValueError`` on empty input or non-positive values.

    >>> gcd_many([0.2, 0.1])
    0.1
    >>> gcd_many([1/3, 1/6])  # doctest: +ELLIPSIS
    0.1666...
    """
    vals = list(values)
    if not vals:
        raise ValueError("gcd_many requires at least one value")
    fracs = []
    for v in vals:
        if not np.isfinite(v) or v <= 0:
            raise ValueError(f"gcd_many requires positive finite values, got {v!r}")
        fracs.append(_to_fraction(float(v)))
    num = fracs[0].numerator
    den = fracs[0].denominator
    for f in fracs[1:]:
        # gcd(a/b, c/d) = gcd(a*d, c*b) / (b*d), reduced incrementally.
        num, den = gcd(num * f.denominator, f.numerator * den), den * f.denominator
        g = gcd(num, den)
        num //= g
        den //= g
    return num / den


def is_harmonic(periods: Sequence[float]) -> bool:
    """True iff every period is an integer multiple of the minimum period.

    This is condition (a) of Theorem 3: with T_min = min(T_i), each
    T_i = t * T_min for integer t.  Uses exact rational arithmetic.
    """
    vals = [_to_fraction(float(p)) for p in periods]
    if not vals:
        return True
    t_min = min(vals)
    if t_min <= 0:
        raise ValueError("periods must be positive")
    return all((p / t_min).denominator == 1 for p in vals)


def normalize_minmax(
    values: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Map ``values`` affinely so [lo, hi] -> [0, 1] (per component).

    Degenerate components (hi == lo) map to 0.5 — they carry no
    information, and 0.5 keeps them from dominating L1 distances.
    """
    values = np.asarray(values, dtype=float)
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    span = hi - lo
    degenerate = span <= 0
    safe_span = np.where(degenerate, 1.0, span)
    out = (values - lo) / safe_span
    out = np.where(degenerate, 0.5, out)
    if clip:
        out = np.clip(out, 0.0, 1.0)
    return out


def safe_cholesky(a: np.ndarray, *, max_tries: int = 8, jitter: float = 1e-10) -> np.ndarray:
    """Cholesky factor of a symmetric PSD matrix with escalating jitter.

    Kernel matrices are frequently semi-definite to machine precision;
    adding the smallest diagonal jitter that makes the factorization
    succeed is the standard GP fix.  Raises ``np.linalg.LinAlgError`` after
    ``max_tries`` doublings (jitter grows 10x per retry).
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"safe_cholesky requires a square matrix, got {a.shape}")
    try:
        return np.linalg.cholesky(a)
    except np.linalg.LinAlgError:
        pass
    eye = np.eye(a.shape[0])
    scale = float(np.mean(np.diag(a))) or 1.0
    j = jitter * scale
    for _ in range(max_tries):
        try:
            return np.linalg.cholesky(a + j * eye)
        except np.linalg.LinAlgError:
            j *= 10.0
    raise np.linalg.LinAlgError(
        f"matrix not PSD even with jitter {j:.3e} (diag mean {scale:.3e})"
    )


def log1mexp(x: np.ndarray) -> np.ndarray:
    """Numerically stable log(1 - exp(x)) for x < 0 (Mächler 2012)."""
    x = np.asarray(x, dtype=float)
    if np.any(x >= 0):
        raise ValueError("log1mexp requires x < 0")
    cutoff = -np.log(2.0)
    return np.where(x > cutoff, np.log(-np.expm1(x)), np.log1p(-np.exp(x)))
