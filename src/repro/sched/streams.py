"""Periodic stream model and high-rate stream splitting.

§3 of the paper characterizes each stream i by the tuple
``{T_i, r_i, p_i}`` — inter-arrival period (inverse frame rate),
resolution, and per-frame processing time.  Streams whose processing
time exceeds their period ("high-rate streams", e.g. Video 2 in
Fig. 3(a)) are split by periodic sampling into ``⌈s_i · p_i⌉``
sub-streams so that each sub-stream alone never self-contends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.utils import check_positive


@dataclass(frozen=True)
class PeriodicStream:
    """One periodic analytics stream (τ_i = {T_i, r_i, p_i}).

    Parameters
    ----------
    stream_id:
        Identifier; survives splitting via ``parent_id``.
    fps:
        Frame sampling rate s_i; the period is T_i = 1 / s_i.
    resolution:
        Frame width r_i in pixels.
    processing_time:
        p_i — seconds to process one frame on a (homogeneous) server.
    bits_per_frame:
        Encoded frame size θ_bit(r_i), used by the assignment objective.
    parent_id:
        Original stream if this is a split sub-stream, else ``stream_id``.
    phase:
        Sub-stream index within the parent (0 for unsplit streams).
    """

    stream_id: int
    fps: float
    resolution: float
    processing_time: float
    bits_per_frame: float = 0.0
    parent_id: int | None = None
    phase: int = 0

    def __post_init__(self) -> None:
        check_positive("fps", self.fps)
        check_positive("resolution", self.resolution)
        check_positive("processing_time", self.processing_time)
        check_positive("bits_per_frame", self.bits_per_frame, strict=False)
        if self.parent_id is None:
            object.__setattr__(self, "parent_id", self.stream_id)

    @property
    def period(self) -> float:
        """T_i = 1 / s_i."""
        return 1.0 / self.fps

    @property
    def load(self) -> float:
        """Utilization contribution p_i · s_i."""
        return self.processing_time * self.fps

    @property
    def is_high_rate(self) -> bool:
        """True when p_i > T_i, i.e. the stream self-contends on one server."""
        return self.processing_time > self.period + 1e-12


def split_high_rate_streams(
    streams: list[PeriodicStream],
    *,
    id_start: int | None = None,
) -> list[PeriodicStream]:
    """Split every high-rate stream into ⌈s_i p_i⌉ interleaved sub-streams.

    Each sub-stream keeps the parent's resolution and processing time but
    samples every k-th frame (rate s_i / k), so its own period is at
    least p_i.  Sub-streams get fresh ids starting from ``id_start``
    (default: one past the current maximum) and record their parent.

    The returned list preserves non-split streams unchanged, in order,
    with sub-streams appended where their parent was.
    """
    if id_start is None:
        id_start = (max((s.stream_id for s in streams), default=-1)) + 1
    next_id = id_start
    out: list[PeriodicStream] = []
    for s in streams:
        if not s.is_high_rate:
            out.append(s)
            continue
        k = math.ceil(s.fps * s.processing_time - 1e-12)
        if k < 2:
            out.append(s)
            continue
        sub_fps = s.fps / k
        for phase in range(k):
            out.append(
                replace(
                    s,
                    stream_id=next_id,
                    fps=sub_fps,
                    parent_id=s.stream_id,
                    phase=phase,
                )
            )
            next_id += 1
    return out
