"""Executable statements of §3's constraints and theorems.

* ``Const1`` (Eq. 6): per-server utilization Σ p_i s_i ≤ 1.
* ``Const2`` (Eq. 7): per-server Σ p_i ≤ gcd of the group's periods.
* Theorem 1: Const2 is sufficient for zero delay jitter with staggered
  start times o(τ_k) = Σ_{i<k} p_i.
* Theorem 2: Const2 ⇒ Const1 (tested, not re-proved).
* Theorem 3: harmonic periods (T_i = t · T_min) plus Σ p_i ≤ T_min are
  sufficient for Const2 — the condition Algorithm 1 maintains.

These predicates are what the simulator-backed property tests check:
every schedule passing ``const2_satisfied`` must measure zero queueing
delay in :mod:`repro.sim`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.sched.streams import PeriodicStream
from repro.utils import gcd_many, is_harmonic

#: Absolute slack when comparing sums of float durations.
_EPS = 1e-9


def _groups(
    streams: Sequence[PeriodicStream], assignment: Sequence[int]
) -> dict[int, list[PeriodicStream]]:
    if len(streams) != len(assignment):
        raise ValueError(
            f"{len(streams)} streams but {len(assignment)} assignment entries"
        )
    by_server: dict[int, list[PeriodicStream]] = defaultdict(list)
    for s, q in zip(streams, assignment):
        if q != -1:
            by_server[int(q)].append(s)
    return by_server


def utilization(streams: Sequence[PeriodicStream], assignment: Sequence[int]) -> dict[int, float]:
    """Per-server utilization Σ p_i · s_i."""
    return {
        j: sum(s.load for s in grp) for j, grp in _groups(streams, assignment).items()
    }


def const1_satisfied(
    streams: Sequence[PeriodicStream], assignment: Sequence[int]
) -> bool:
    """Eq. 6: every server's total utilization is at most 1."""
    return all(u <= 1.0 + _EPS for u in utilization(streams, assignment).values())


def const2_satisfied(
    streams: Sequence[PeriodicStream], assignment: Sequence[int]
) -> bool:
    """Eq. 7: on each server, Σ p_i ≤ gcd({T_i})."""
    for grp in _groups(streams, assignment).values():
        total_p = sum(s.processing_time for s in grp)
        g = gcd_many([s.period for s in grp])
        if total_p > g + _EPS:
            return False
    return True


def theorem1_zero_jitter(group: Sequence[PeriodicStream]) -> bool:
    """Theorem 1 premise for one server group: Σ p_i ≤ gcd(T_1..T_K).

    When true, the staggered start times o(τ_k) = Σ_{i<k} p_i yield zero
    delay jitter for every stream in the group.
    """
    if not group:
        return True
    total_p = sum(s.processing_time for s in group)
    return total_p <= gcd_many([s.period for s in group]) + _EPS


def theorem3_conditions(group: Sequence[PeriodicStream]) -> bool:
    """Theorem 3: harmonic periods and Σ p_i ≤ T_min ⇒ Const2.

    This is the (stronger, easily checkable) condition Algorithm 1
    maintains per group.
    """
    if not group:
        return True
    periods = [s.period for s in group]
    if not is_harmonic(periods):
        return False
    total_p = sum(s.processing_time for s in group)
    return total_p <= min(periods) + _EPS


def diagnose_infeasibility(
    streams: Sequence[PeriodicStream], n_servers: int
) -> list[str]:
    """Human-readable reasons a stream set may not be schedulable.

    Checks, in order of severity: per-stream self-contention (needs
    splitting), aggregate utilization exceeding N (no schedule exists
    at all), and harmonic-packing pressure (more period classes than
    servers, which defeats Theorem 3's grouping).  An empty list means
    no structural red flag — Algorithm 1 may still fail on packing, but
    a feasible grouping is plausible.
    """
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")
    reasons: list[str] = []
    for s in streams:
        if s.is_high_rate:
            reasons.append(
                f"stream {s.stream_id}: processing time {s.processing_time:.3f}s "
                f"exceeds its period {s.period:.3f}s — split it first "
                "(split_high_rate_streams)"
            )
    total_load = sum(s.load for s in streams)
    if total_load > n_servers + _EPS:
        reasons.append(
            f"aggregate utilization {total_load:.2f} exceeds server count "
            f"{n_servers} — no assignment can satisfy Const1"
        )
    # period classes: streams whose periods are mutually non-harmonic
    # can never share a server under Theorem 3
    classes: list[list[PeriodicStream]] = []
    for s in sorted(streams, key=lambda t: t.period):
        for cls in classes:
            if is_harmonic([c.period for c in cls] + [s.period]):
                cls.append(s)
                break
        else:
            classes.append([s])
    if len(classes) > n_servers:
        reasons.append(
            f"{len(classes)} mutually non-harmonic period classes but only "
            f"{n_servers} servers — zero-jitter grouping is impossible; "
            "align frame rates to a harmonic ladder"
        )
    return reasons


def stagger_offsets(group: Sequence[PeriodicStream]) -> list[float]:
    """Start times o(τ_k) = Σ_{i<k} p_i from the proof of Theorem 1."""
    offsets: list[float] = []
    acc = 0.0
    for s in group:
        offsets.append(acc)
        acc += s.processing_time
    return offsets
