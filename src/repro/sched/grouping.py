"""Algorithm 1: group-based heuristic zero-jitter grouping.

Implements the paper's Algorithm 1 lines 1–19:

1. sort streams by period ascending;
2. compute each stream's priority ``I_i = Σ_{j<i} 1(T_i mod T_j == 0)``
   (how many earlier, shorter periods divide it — streams that are easy
   to co-schedule get high counts);
3. re-sort ascending by priority (stable, so period order breaks ties);
4. greedily place each stream into the first of N groups where the
   Theorem-3 conditions still hold after insertion: all periods remain
   integer multiples of the group minimum, and total processing time
   stays within that minimum.

Feasible groupings satisfy Const2 (hence Const1 and zero jitter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.sched.streams import PeriodicStream
from repro.sched.theory import theorem3_conditions

#: Slack for float capacity comparisons.
_EPS = 1e-9


class InfeasibleScheduleError(RuntimeError):
    """Raised when no grouping satisfying Const2 exists for N servers."""


@dataclass
class GroupingResult:
    """Outcome of Algorithm 1's grouping phase.

    ``groups[j]`` lists the streams co-scheduled on (logical) group j;
    ``group_of[stream_id]`` inverts the mapping.  Logical groups are
    mapped to physical servers afterwards by the assignment step.
    """

    groups: list[list[PeriodicStream]]
    group_of: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.group_of:
            self.group_of = {
                s.stream_id: j for j, grp in enumerate(self.groups) for s in grp
            }

    @property
    def n_nonempty(self) -> int:
        return sum(1 for g in self.groups if g)

    def validate(self) -> bool:
        """Check the Theorem-3 invariant on every group."""
        return all(theorem3_conditions(g) for g in self.groups)


def divisor_priorities(streams: Sequence[PeriodicStream]) -> list[int]:
    """Priorities I_i over period-sorted streams (Algorithm 1, line 2).

    Uses exact rational arithmetic: T_i mod T_j == 0 iff T_i / T_j is an
    integer.  Input must already be sorted by period ascending.
    """
    periods = [Fraction(s.period).limit_denominator(1_000_000) for s in streams]
    out: list[int] = []
    for i, ti in enumerate(periods):
        count = 0
        for tj in periods[:i]:
            if (ti / tj).denominator == 1:
                count += 1
        out.append(count)
    return out


def _fits(group: list[PeriodicStream], candidate: PeriodicStream) -> bool:
    """Would the group still satisfy Theorem 3 with ``candidate`` added?"""
    return theorem3_conditions([*group, candidate])


def group_streams(
    streams: Sequence[PeriodicStream],
    n_servers: int,
    *,
    strict: bool = True,
) -> GroupingResult:
    """Run Algorithm 1's grouping (lines 1–19).

    Parameters
    ----------
    streams:
        The (already split) periodic stream set T.
    n_servers:
        Number of groups N available.
    strict:
        When True (default), raise :class:`InfeasibleScheduleError` if a
        stream fits in no group — the paper's "No feasible grouping
        scheme".  When False, overflow streams are placed in the group
        with the lowest resulting utilization (best effort; the caller
        must then expect jitter), which is what baseline schedulers that
        ignore Const2 effectively do.
    """
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")

    # Line 1: sort by period ascending (stable on stream_id for determinism).
    by_period = sorted(streams, key=lambda s: (s.period, s.stream_id))
    # Line 2: divisor-count priorities.
    prios = divisor_priorities(by_period)
    # Line 3: ascending priority, stable.
    order = sorted(range(len(by_period)), key=lambda i: prios[i])
    final = [by_period[i] for i in order]

    groups: list[list[PeriodicStream]] = [[] for _ in range(n_servers)]
    for s in final:
        placed = False
        for grp in groups:
            if not grp or _fits(grp, s):
                grp.append(s)
                placed = True
                break
        if not placed:
            if strict:
                raise InfeasibleScheduleError(
                    f"stream {s.stream_id} (T={s.period:.4f}s, p={s.processing_time:.4f}s) "
                    f"fits in none of {n_servers} groups"
                )
            # Best effort: least-loaded group.
            loads = [sum(x.load for x in g) for g in groups]
            groups[loads.index(min(loads))].append(s)

    return GroupingResult(groups=groups)
