"""Heterogeneous-server virtualization (§3, Variable Definition).

The paper assumes homogeneous servers and notes "heterogeneous servers
can be virtualized as multiple homogeneous VMs or containers".  This
module performs that reduction: given physical servers with differing
compute capacity and uplink bandwidth, it produces a set of homogeneous
virtual server slots (each matching a base device profile) plus the
mapping back to physical hosts, so the rest of the stack (Algorithm 1,
the simulator, PaMO) operates unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_positive
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE


@dataclass(frozen=True)
class PhysicalServer:
    """A heterogeneous physical edge server."""

    name: str
    tflops: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        check_positive("tflops", self.tflops)
        check_positive("bandwidth_mbps", self.bandwidth_mbps)


@dataclass(frozen=True)
class VirtualSlot:
    """One homogeneous VM slot carved from a physical server."""

    slot_id: int
    physical: str
    bandwidth_mbps: float


@dataclass
class VirtualCluster:
    """Result of virtualization: slots + reverse mapping."""

    slots: list[VirtualSlot]
    profile: DeviceProfile

    @property
    def bandwidths_mbps(self) -> np.ndarray:
        return np.array([s.bandwidth_mbps for s in self.slots])

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    def physical_of(self, slot_id: int) -> str:
        """Name of the physical server hosting ``slot_id``."""
        return self.slots[slot_id].physical

    def slots_of(self, physical: str) -> list[int]:
        """Slot ids carved from the named physical server."""
        return [s.slot_id for s in self.slots if s.physical == physical]


def virtualize(
    servers: list[PhysicalServer],
    *,
    base_profile: DeviceProfile = JETSON_NX_PROFILE,
    min_slot_fraction: float = 0.5,
) -> VirtualCluster:
    """Carve homogeneous VM slots out of heterogeneous servers.

    Each physical server contributes ``floor(tflops / base.tflops)``
    slots (at least one if it has ``min_slot_fraction`` of a base unit
    — undersized hardware still hosts one best-effort slot), and its
    uplink bandwidth is split evenly across its slots, mirroring how
    per-VM traffic shaping is provisioned in practice.

    Raises ``ValueError`` if no server can host a slot.
    """
    if not servers:
        raise ValueError("need at least one physical server")
    check_positive("min_slot_fraction", min_slot_fraction)
    slots: list[VirtualSlot] = []
    sid = 0
    for srv in servers:
        ratio = srv.tflops / base_profile.effective_tflops
        n = int(ratio)
        if n == 0 and ratio >= min_slot_fraction:
            n = 1
        if n == 0:
            continue
        bw_each = srv.bandwidth_mbps / n
        for _ in range(n):
            slots.append(
                VirtualSlot(slot_id=sid, physical=srv.name, bandwidth_mbps=bw_each)
            )
            sid += 1
    if not slots:
        raise ValueError(
            "no physical server can host a homogeneous slot; "
            f"base profile needs {base_profile.effective_tflops} TFLOPS"
        )
    return VirtualCluster(slots=slots, profile=base_profile)
