"""Periodic scheduling substrate: Algorithm 1 and the §3 theory.

Contains the paper's group-based heuristic zero-jitter scheduler:
high-rate stream splitting (§3 Variable Definition), divisor-count
priority grouping (Algorithm 1), Hungarian group→server assignment
minimizing communication latency, and executable statements of
Const1/Const2 and Theorems 1–3.
"""

from repro.sched.streams import PeriodicStream, split_high_rate_streams
from repro.sched.theory import (
    const1_satisfied,
    const2_satisfied,
    theorem1_zero_jitter,
    theorem3_conditions,
    utilization,
)
from repro.sched.theory import stagger_offsets, diagnose_infeasibility
from repro.sched.grouping import (
    GroupingResult,
    group_streams,
    divisor_priorities,
    InfeasibleScheduleError,
)
from repro.sched.assignment import (
    assign_groups_to_servers,
    resolve_assignment,
    communication_latency,
    solve_group_assignment,
    configure_assignment_cache,
    clear_assignment_cache,
    assignment_cache_size,
)
from repro.sched.solvers import (
    exact_grouping,
    AnnealedScheduler,
    AnnealResult,
)
from repro.sched.virtualization import (
    PhysicalServer,
    VirtualSlot,
    VirtualCluster,
    virtualize,
)

__all__ = [
    "PeriodicStream",
    "split_high_rate_streams",
    "const1_satisfied",
    "const2_satisfied",
    "theorem1_zero_jitter",
    "theorem3_conditions",
    "utilization",
    "stagger_offsets",
    "diagnose_infeasibility",
    "GroupingResult",
    "group_streams",
    "divisor_priorities",
    "InfeasibleScheduleError",
    "assign_groups_to_servers",
    "resolve_assignment",
    "communication_latency",
    "solve_group_assignment",
    "configure_assignment_cache",
    "clear_assignment_cache",
    "assignment_cache_size",
    "exact_grouping",
    "AnnealedScheduler",
    "AnnealResult",
    "PhysicalServer",
    "VirtualSlot",
    "VirtualCluster",
    "virtualize",
]
