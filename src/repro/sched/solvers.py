"""Alternative periodic-schedule solvers (§6, Periodic Scheduling).

The paper's related work frames non-preemptive periodic scheduling as
ILP / CP / SMT problems solved exactly or by metaheuristics, and notes
those solvers "cannot be directly applied ... because they do not
consider minimizing communication latency".  This module provides two
such solvers over the *same* Const2 feasibility structure so Algorithm 1
can be ablated against them:

* :func:`exact_grouping` — exhaustive branch-and-bound over group
  assignments (the ILP-equivalent ground truth for small instances);
  finds a feasible grouping whenever one exists and can additionally
  minimize the communication-latency objective.
* :class:`AnnealedScheduler` — simulated annealing over full assignment
  vectors with a Const2-violation penalty (the metaheuristic family).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sched.grouping import GroupingResult, InfeasibleScheduleError, _fits
from repro.sched.streams import PeriodicStream
from repro.sched.theory import theorem3_conditions
from repro.utils import as_generator, check_array_1d, gcd_many
from repro.utils.rng import RngLike


def _comm_cost(
    groups: list[list[PeriodicStream]], bandwidths: np.ndarray
) -> float:
    """Best-case communication cost: greedy group→server matching.

    Uses the same bits-per-second weighting as the Hungarian step; for
    branch-and-bound bounding purposes a greedy matching (heaviest group
    on fattest remaining link) is sufficient and cheap.
    """
    rates = sorted(
        (sum(s.bits_per_frame * s.fps for s in g) for g in groups), reverse=True
    )
    bw = np.sort(bandwidths)[::-1]
    return float(sum(r / (b * 1e6) for r, b in zip(rates, bw)))


def exact_grouping(
    streams: Sequence[PeriodicStream],
    n_servers: int,
    *,
    bandwidths_mbps: Sequence[float] | None = None,
    max_nodes: int = 200_000,
) -> GroupingResult:
    """Branch-and-bound over all group assignments.

    Explores stream-by-stream placements into at most ``n_servers``
    groups, pruning branches whose partial grouping violates Theorem 3
    and (symmetry-breaking) never opening group j+1 before group j.
    When ``bandwidths_mbps`` is given, minimizes the greedy
    communication cost; otherwise returns the first feasible grouping.

    Raises :class:`InfeasibleScheduleError` when no feasible grouping
    exists, ``RuntimeError`` when the search exceeds ``max_nodes``.
    """
    if n_servers < 1:
        raise ValueError(f"n_servers must be >= 1, got {n_servers}")
    streams = list(streams)
    bw = (
        check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
        if bandwidths_mbps is not None
        else None
    )
    # Place long-period, heavy streams first: fails fast.
    order = sorted(
        range(len(streams)),
        key=lambda i: (-streams[i].processing_time, streams[i].period),
    )
    best: tuple[float, list[list[PeriodicStream]]] | None = None
    nodes = 0

    def dfs(pos: int, groups: list[list[PeriodicStream]]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(f"search budget exceeded ({max_nodes} nodes)")
        if pos == len(streams):
            cost = _comm_cost(groups, bw) if bw is not None else 0.0
            if best is None or cost < best[0]:
                best = (cost, [list(g) for g in groups])
            return
        if best is not None and bw is None:
            return  # feasibility-only: first solution wins
        s = streams[order[pos]]
        opened = len(groups)
        for j in range(opened):
            if _fits(groups[j], s):
                groups[j].append(s)
                dfs(pos + 1, groups)
                groups[j].pop()
        if opened < n_servers:
            groups.append([s])
            dfs(pos + 1, groups)
            groups.pop()

    dfs(0, [])
    if best is None:
        raise InfeasibleScheduleError(
            f"no Const2-feasible grouping of {len(streams)} streams "
            f"on {n_servers} servers exists"
        )
    groups = best[1]
    groups.extend([] for _ in range(n_servers - len(groups)))
    return GroupingResult(groups=groups)


@dataclass
class AnnealResult:
    """Outcome of a simulated-annealing schedule search."""

    assignment: list[int]
    cost: float
    feasible: bool
    n_iterations: int


class AnnealedScheduler:
    """Simulated annealing over assignment vectors (metaheuristic PSP).

    State: q ∈ {0..N−1}^M.  Energy: communication latency plus a large
    penalty per server group violating Theorem 3.  Moves reassign one
    random stream.  Geometric cooling.

    Parameters
    ----------
    penalty:
        Energy added per infeasible group (dominates the comm term).
    t0, cooling, n_iters:
        Initial temperature, geometric factor, iteration budget.
    """

    def __init__(
        self,
        *,
        penalty: float = 10.0,
        t0: float = 1.0,
        cooling: float = 0.995,
        n_iters: int = 3000,
        rng: RngLike = None,
    ) -> None:
        if not (0 < cooling < 1):
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.penalty = float(penalty)
        self.t0 = float(t0)
        self.cooling = float(cooling)
        self.n_iters = int(n_iters)
        self._rng = as_generator(rng)

    def _energy(
        self,
        assignment: np.ndarray,
        streams: list[PeriodicStream],
        bw: np.ndarray,
    ) -> tuple[float, bool]:
        groups: dict[int, list[PeriodicStream]] = {}
        comm = 0.0
        for s, q in zip(streams, assignment):
            groups.setdefault(int(q), []).append(s)
            comm += s.bits_per_frame / (bw[int(q)] * 1e6)
        violations = sum(
            0 if theorem3_conditions(g) else 1 for g in groups.values()
        )
        return comm + self.penalty * violations, violations == 0

    def solve(
        self,
        streams: Sequence[PeriodicStream],
        bandwidths_mbps: Sequence[float],
    ) -> AnnealResult:
        """Anneal an assignment for ``streams`` over the given servers."""
        streams = list(streams)
        bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
        n = bw.size
        m = len(streams)
        state = self._rng.integers(0, n, m)
        energy, _ = self._energy(state, streams, bw)
        best_state = state.copy()
        best_energy = energy
        t = self.t0
        for _ in range(self.n_iters):
            i = int(self._rng.integers(0, m))
            old = state[i]
            state[i] = self._rng.integers(0, n)
            cand, _ = self._energy(state, streams, bw)
            delta = cand - energy
            if delta <= 0 or self._rng.random() < math.exp(-delta / max(t, 1e-12)):
                energy = cand
                if energy < best_energy:
                    best_energy = energy
                    best_state = state.copy()
            else:
                state[i] = old
            t *= self.cooling
        _, feasible = self._energy(best_state, streams, bw)
        return AnnealResult(
            assignment=best_state.tolist(),
            cost=best_energy,
            feasible=feasible,
            n_iterations=self.n_iters,
        )
