"""Group→server assignment (Algorithm 1, line 20).

Maps the logical groups produced by :func:`repro.sched.grouping.group_streams`
onto physical servers so as to minimize total communication latency

    min_q Σ_{G_j} Σ_{i ∈ G_j} θ_bit(r_i) / B_{q_j}

which is a linear assignment problem (each group's cost on server n is
its total bits divided by that server's uplink bandwidth), solved exactly
with the Hungarian algorithm (``scipy.optimize.linear_sum_assignment``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.sched.grouping import GroupingResult
from repro.sched.streams import PeriodicStream
from repro.utils import check_array_1d


def communication_latency(
    streams: Sequence[PeriodicStream], assignment: Sequence[int], bandwidths_mbps: Sequence[float]
) -> float:
    """Total per-frame serialization latency Σ θ_bit(r_i) / B_{q_i} (s)."""
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    total = 0.0
    for s, q in zip(streams, assignment):
        if q == -1:
            continue
        if not (0 <= q < bw.size):
            raise ValueError(f"assignment {q} out of range for {bw.size} servers")
        total += s.bits_per_frame / (bw[q] * 1e6)
    return total


def assign_groups_to_servers(
    grouping: GroupingResult,
    bandwidths_mbps: Sequence[float],
) -> list[int]:
    """Hungarian mapping of groups to servers; returns per-stream q vector.

    The returned list is indexed by *stream order in the grouping* —
    callers should use :meth:`resolve_assignment` for an id-keyed view.
    Cost of putting group j on server n is ``group_bits_per_second_j / B_n``
    scaled so heavy groups land on fat uplinks.  Empty groups cost zero
    everywhere and absorb the surplus servers.
    """
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    n_groups = len(grouping.groups)
    if n_groups > bw.size:
        raise ValueError(f"{n_groups} groups but only {bw.size} servers")

    # Cost matrix (groups x servers). Use bits *per second* (bits/frame × fps)
    # so the objective weighs frequently-sending streams more, matching the
    # average-communication-latency objective over time.
    group_rate = np.array(
        [sum(s.bits_per_frame * s.fps for s in grp) for grp in grouping.groups]
    )
    cost = group_rate[:, None] / (bw[None, :] * 1e6)
    row, col = linear_sum_assignment(cost)
    server_of_group = dict(zip(row.tolist(), col.tolist()))

    assignment: dict[int, int] = {}
    for j, grp in enumerate(grouping.groups):
        for s in grp:
            assignment[s.stream_id] = server_of_group[j]
    # Return q in the order streams appear in the grouping's flat list.
    ordered_ids = [s.stream_id for grp in grouping.groups for s in grp]
    return [assignment[i] for i in ordered_ids]


def reassign_to_surviving(
    streams: Sequence[PeriodicStream],
    assignment: Sequence[int],
    alive: Sequence[bool],
    bandwidths_mbps: Sequence[float],
) -> list[int]:
    """Remap streams off dead servers, keeping survivors' placements.

    Emergency repair used between a server crash and the next full
    replan: streams already on a live server stay put (their zero-jitter
    grouping still holds); each orphaned stream moves to the live server
    with the smallest post-move bit-rate load per unit bandwidth,
    heaviest orphans first.  The result generally violates Algorithm 1's
    harmonic grouping — it is a stopgap, not a schedule — but every
    stream lands on a live server.

    Raises ``ValueError`` if no server is alive.
    """
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    alive = [bool(a) for a in alive]
    if len(alive) != bw.size:
        raise ValueError(f"alive has {len(alive)} entries for {bw.size} servers")
    if not any(alive):
        raise ValueError("no surviving server to reassign onto")
    if len(assignment) != len(streams):
        raise ValueError(
            f"{len(streams)} streams but {len(assignment)} assignment entries"
        )

    new_assignment = list(assignment)
    load = np.zeros(bw.size)  # bits/s already committed per server
    orphans: list[int] = []
    for i, (s, q) in enumerate(zip(streams, assignment)):
        if q == -1:
            continue
        if not (0 <= q < bw.size):
            raise ValueError(f"assignment {q} out of range for {bw.size} servers")
        if alive[q]:
            load[q] += s.bits_per_frame * s.fps
        else:
            orphans.append(i)

    orphans.sort(key=lambda i: -streams[i].bits_per_frame * streams[i].fps)
    live = [n for n in range(bw.size) if alive[n]]
    for i in orphans:
        rate = streams[i].bits_per_frame * streams[i].fps
        best = min(live, key=lambda n: (load[n] + rate) / (bw[n] * 1e6))
        new_assignment[i] = best
        load[best] += rate
    return new_assignment


def resolve_assignment(
    grouping: GroupingResult,
    bandwidths_mbps: Sequence[float],
    streams: Sequence[PeriodicStream],
) -> list[int]:
    """Per-stream server vector aligned with the caller's ``streams`` order."""
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    group_rate = np.array(
        [sum(s.bits_per_frame * s.fps for s in grp) for grp in grouping.groups]
    )
    cost = group_rate[:, None] / (bw[None, :] * 1e6)
    row, col = linear_sum_assignment(cost)
    server_of_group = dict(zip(row.tolist(), col.tolist()))
    return [server_of_group[grouping.group_of[s.stream_id]] for s in streams]
