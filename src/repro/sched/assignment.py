"""Group→server assignment (Algorithm 1, line 20).

Maps the logical groups produced by :func:`repro.sched.grouping.group_streams`
onto physical servers so as to minimize total communication latency

    min_q Σ_{G_j} Σ_{i ∈ G_j} θ_bit(r_i) / B_{q_j}

which is a linear assignment problem (each group's cost on server n is
its total bits divided by that server's uplink bandwidth), solved exactly
with the Hungarian algorithm (``scipy.optimize.linear_sum_assignment``).

The optimization loops evaluate thousands of candidate decisions whose
group bit-rates and server bandwidths repeat, so the Hungarian solve is
memoized on exactly its inputs (``(group rates, bandwidths)``) — see
:func:`solve_group_assignment`.  Hits/misses are counted as
``sched.assign_cache_hits`` / ``sched.assign_cache_misses``;
``configure_assignment_cache(enabled=False)`` is the slow-path switch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.obs import telemetry
from repro.sched.grouping import GroupingResult
from repro.sched.streams import PeriodicStream
from repro.utils import check_array_1d

#: Memoized Hungarian solves keyed on (group_rate bytes, bandwidth bytes).
_ASSIGN_CACHE: OrderedDict[bytes, tuple[int, ...]] = OrderedDict()
_ASSIGN_CACHE_LOCK = threading.Lock()
_assign_cache_maxsize = 4096
_assign_cache_enabled = True


def configure_assignment_cache(
    *, enabled: bool | None = None, maxsize: int | None = None
) -> None:
    """Tune the Hungarian-solve memo; ``enabled=False`` disables it."""
    global _assign_cache_enabled, _assign_cache_maxsize
    if enabled is not None:
        _assign_cache_enabled = bool(enabled)
        if not enabled:
            clear_assignment_cache()
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        _assign_cache_maxsize = int(maxsize)


def clear_assignment_cache() -> None:
    """Drop all memoized Hungarian solves."""
    with _ASSIGN_CACHE_LOCK:
        _ASSIGN_CACHE.clear()


def assignment_cache_size() -> int:
    """Number of memoized Hungarian solves currently held."""
    return len(_ASSIGN_CACHE)


def solve_group_assignment(
    group_rate: np.ndarray, bandwidths_mbps: np.ndarray, *, use_cache: bool = True
) -> tuple[int, ...]:
    """Server index per group minimizing Σ rate_j / B_{q_j} (Hungarian).

    ``group_rate`` is each group's total bit-rate (bits/s); the cost of
    putting group j on server n is ``group_rate_j / B_n`` so heavy
    groups land on fat uplinks.  Empty groups cost zero everywhere and
    absorb the surplus servers.  Results are memoized on the exact
    input arrays (the cost matrix is a deterministic function of them);
    pass ``use_cache=False`` to force a fresh solve.
    """
    rate = np.ascontiguousarray(np.asarray(group_rate, dtype=float))
    bw = np.ascontiguousarray(np.asarray(bandwidths_mbps, dtype=float))
    cached = use_cache and _assign_cache_enabled
    if cached:
        key = rate.tobytes() + b"|" + bw.tobytes()
        with _ASSIGN_CACHE_LOCK:
            hit = _ASSIGN_CACHE.get(key)
            if hit is not None:
                _ASSIGN_CACHE.move_to_end(key)
                telemetry.counter("sched.assign_cache_hits")
                return hit
    cost = rate[:, None] / (bw[None, :] * 1e6)
    row, col = linear_sum_assignment(cost)
    server_of_group = np.full(rate.size, -1, dtype=int)
    server_of_group[row] = col
    result = tuple(int(v) for v in server_of_group)
    if cached:
        telemetry.counter("sched.assign_cache_misses")
        with _ASSIGN_CACHE_LOCK:
            _ASSIGN_CACHE[key] = result
            while len(_ASSIGN_CACHE) > _assign_cache_maxsize:
                _ASSIGN_CACHE.popitem(last=False)
    return result


def communication_latency(
    streams: Sequence[PeriodicStream], assignment: Sequence[int], bandwidths_mbps: Sequence[float]
) -> float:
    """Total per-frame serialization latency Σ θ_bit(r_i) / B_{q_i} (s)."""
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    total = 0.0
    for s, q in zip(streams, assignment):
        if q == -1:
            continue
        if not (0 <= q < bw.size):
            raise ValueError(f"assignment {q} out of range for {bw.size} servers")
        total += s.bits_per_frame / (bw[q] * 1e6)
    return total


def _group_rates(grouping: GroupingResult) -> np.ndarray:
    """Total bit-rate (bits/s) per group: Σ bits_per_frame × fps.

    Bits *per second* (not per frame) so the objective weighs
    frequently-sending streams more, matching the average-
    communication-latency objective over time.
    """
    return np.array(
        [sum(s.bits_per_frame * s.fps for s in grp) for grp in grouping.groups]
    )


def assign_groups_to_servers(
    grouping: GroupingResult,
    bandwidths_mbps: Sequence[float],
    *,
    use_cache: bool = True,
) -> list[int]:
    """Hungarian mapping of groups to servers; returns per-stream q vector.

    The returned list is indexed by *stream order in the grouping* —
    callers should use :meth:`resolve_assignment` for an id-keyed view.
    The underlying solve is memoized (see :func:`solve_group_assignment`).
    """
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    n_groups = len(grouping.groups)
    if n_groups > bw.size:
        raise ValueError(f"{n_groups} groups but only {bw.size} servers")

    server_of_group = solve_group_assignment(
        _group_rates(grouping), bw, use_cache=use_cache
    )
    # Return q in the order streams appear in the grouping's flat list.
    return [server_of_group[j] for j, grp in enumerate(grouping.groups) for _ in grp]


def reassign_to_surviving(
    streams: Sequence[PeriodicStream],
    assignment: Sequence[int],
    alive: Sequence[bool],
    bandwidths_mbps: Sequence[float],
) -> list[int]:
    """Remap streams off dead servers, keeping survivors' placements.

    Emergency repair used between a server crash and the next full
    replan: streams already on a live server stay put (their zero-jitter
    grouping still holds); each orphaned stream moves to the live server
    with the smallest post-move bit-rate load per unit bandwidth,
    heaviest orphans first.  The result generally violates Algorithm 1's
    harmonic grouping — it is a stopgap, not a schedule — but every
    stream lands on a live server.

    Raises ``ValueError`` if no server is alive.
    """
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    alive = [bool(a) for a in alive]
    if len(alive) != bw.size:
        raise ValueError(f"alive has {len(alive)} entries for {bw.size} servers")
    if not any(alive):
        raise ValueError("no surviving server to reassign onto")
    if len(assignment) != len(streams):
        raise ValueError(
            f"{len(streams)} streams but {len(assignment)} assignment entries"
        )

    new_assignment = list(assignment)
    load = np.zeros(bw.size)  # bits/s already committed per server
    orphans: list[int] = []
    for i, (s, q) in enumerate(zip(streams, assignment)):
        if q == -1:
            continue
        if not (0 <= q < bw.size):
            raise ValueError(f"assignment {q} out of range for {bw.size} servers")
        if alive[q]:
            load[q] += s.bits_per_frame * s.fps
        else:
            orphans.append(i)

    orphans.sort(key=lambda i: -streams[i].bits_per_frame * streams[i].fps)
    live = [n for n in range(bw.size) if alive[n]]
    for i in orphans:
        rate = streams[i].bits_per_frame * streams[i].fps
        best = min(live, key=lambda n: (load[n] + rate) / (bw[n] * 1e6))
        new_assignment[i] = best
        load[best] += rate
    return new_assignment


def resolve_assignment(
    grouping: GroupingResult,
    bandwidths_mbps: Sequence[float],
    streams: Sequence[PeriodicStream],
) -> list[int]:
    """Per-stream server vector aligned with the caller's ``streams`` order."""
    bw = check_array_1d("bandwidths_mbps", bandwidths_mbps, min_len=1)
    server_of_group = solve_group_assignment(_group_rates(grouping), bw)
    return [server_of_group[grouping.group_of[s.stream_id]] for s in streams]
