"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``optimize`` — build an EVA problem and run a scheduler on it,
  printing the per-stream decision and outcome; ``--telemetry PATH``
  writes a JSONL event log and ``--profile`` adds cProfile summaries.
  Registered scheduler names are accepted as top-level shorthand
  (``repro pamo --telemetry run.jsonl``);
* ``figure`` — regenerate one of the paper's figures (2, 3, 4, 6, 7,
  8, 9, 10a, 10b) and print its table;
* ``report`` — summarize a telemetry log: span time tree, convergence
  curve, diagnostics tables (``--format text|json|markdown``);
* ``compare`` — diff two telemetry logs on wall time / iterations /
  final benefit; exits non-zero on regression (CI perf gate);
* ``trace`` — export a telemetry log to Chrome ``trace_event`` JSON
  for Perfetto / ``chrome://tracing``;
* ``chaos`` — run a scheduler under a deterministic fault plan
  (server crashes, bandwidth drops, stream churn) and report each
  post-fault epoch's benefit against the fault-free baseline;
* ``bench`` — time the GP/BO hot-path fast/slow pairs on fixed seeds,
  write ``BENCH_<name>.json`` records, and optionally gate against
  recorded baselines (``--check``; the CI bench-smoke job);
* ``serve`` — the event-driven online scheduler service family:
  ``serve loadgen`` writes a seeded churn event log, ``serve run``
  replays one through :class:`repro.serve.SchedulerService` (with
  ``--telemetry`` incl. size rotation, ``--checkpoint``/``--resume``,
  and ``--metrics-port`` exposing live ``/metrics``/``/healthz``/
  ``/varz`` endpoints with ``--slo`` health rules), ``serve top``
  renders a live terminal dashboard off a running ``serve run``, and
  ``serve report`` summarizes a serve trace with rolling-window
  decision-latency percentiles and an optional ``--max-p95`` CI gate;
* ``info`` — version and module inventory.

``optimize`` also understands ``--checkpoint PATH`` /
``--checkpoint-every N`` (periodically pickle a resumable snapshot)
and ``--resume CKPT`` (continue an interrupted run bit-identically).

The parser is assembled from per-subsystem ``_register_*`` functions
(core, bench/figures, obs, resilience, serve), each owning its
``add_parser`` blocks; existing command spellings are stable.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from typing import Sequence

import numpy as np

from repro._version import __version__


def _check_writable(path: str) -> str | None:
    """Try creating/appending ``path``; return an error string on failure."""
    from pathlib import Path

    try:
        p = Path(path)
        existed = p.exists()
        p.parent.mkdir(parents=True, exist_ok=True)
        p.open("a").close()
        # Don't leave an empty probe artifact behind: a run that never
        # writes the file (e.g. converges before its first checkpoint)
        # must not look like it produced a corrupt one.
        if not existed:
            p.unlink()
    except OSError as exc:
        return str(exc)
    return None


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.baselines import available_schedulers
    from repro.outcomes.functions import OBJECTIVES

    print(f"repro {__version__} — PaMO reproduction (ICPP '24)")
    print(f"objectives: {', '.join(OBJECTIVES)}")
    print(f"schedulers: {', '.join(available_schedulers())}")
    print("figures: 2, 3, 4, 6, 7, 8, 9, 10a, 10b")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.baselines import make_scheduler
    from repro.bench.reporting import format_table
    from repro.core import EVAProblem, make_preference
    from repro.obs import telemetry
    from repro.utils import as_generator

    resume_path = getattr(args, "resume", "") or ""
    resume_state = None
    if resume_path:
        from repro.resilience.checkpoint import load_checkpoint

        try:
            ckpt = load_checkpoint(resume_path)
        except (OSError, ValueError, EOFError, pickle.UnpicklingError) as exc:
            print(f"error: cannot resume from {resume_path}: {exc}", file=sys.stderr)
            return 2
        scheduler = ckpt.scheduler
        resume_state = ckpt.bo_state
        problem = scheduler.problem
        bw = [float(b) for b in problem.bandwidths_mbps]
        pref = getattr(scheduler.decision_maker, "preference", None)
        if pref is None:
            pref = make_preference(problem)
        print(
            f"resuming {scheduler.name} from {resume_path} "
            f"(after iteration {ckpt.iteration})"
        )
    else:
        gen = as_generator(args.seed)
        if args.bandwidths:
            bw = [float(b) for b in args.bandwidths.split(",")]
            if len(bw) != args.servers:
                print(
                    f"error: --bandwidths gives {len(bw)} values for "
                    f"{args.servers} servers",
                    file=sys.stderr,
                )
                return 2
        else:
            bw = gen.choice([5.0, 10.0, 15.0, 20.0, 25.0, 30.0], args.servers).tolist()
        problem = EVAProblem(n_streams=args.streams, bandwidths_mbps=bw)

        weights = (
            [float(w) for w in args.weights.split(",")] if args.weights else None
        )
        pref = make_preference(problem, weights=weights)

        extra = {}
        if getattr(args, "checkpoint", ""):
            if err := _check_writable(args.checkpoint):
                print(f"error: cannot write checkpoint: {err}", file=sys.stderr)
                return 2
            extra = {
                "checkpoint_path": args.checkpoint,
                "checkpoint_every": args.checkpoint_every,
            }
        try:
            scheduler = make_scheduler(
                args.method, problem, preference=pref, rng=args.seed, **extra
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except TypeError:
            if extra:
                print(
                    f"error: method {args.method!r} does not support "
                    "checkpointing (--checkpoint)",
                    file=sys.stderr,
                )
                return 2
            raise

    telemetry_path = getattr(args, "telemetry", "") or ""
    profile = bool(getattr(args, "profile", False))
    owns_telemetry = bool(telemetry_path) or profile
    if telemetry_path and (err := _check_writable(telemetry_path)):
        print(f"error: cannot write telemetry log: {err}", file=sys.stderr)
        return 2
    if owns_telemetry:
        telemetry.enable(telemetry_path or None, profile=profile)
    try:
        with telemetry.span("cli.optimize"):
            if resume_state is not None:
                out = scheduler.optimize(resume=resume_state)
            else:
                out = scheduler.optimize()
        if telemetry.enabled:
            telemetry.event(
                "optimize.done",
                method=scheduler.name,
                seed=args.seed,
                outcome=out.to_dict(),
            )
            telemetry.flush()
    finally:
        if owns_telemetry:
            telemetry.emit_summary(method=args.method, seed=args.seed)
            trace_id = telemetry.trace_id
            report = telemetry.report()
            telemetry.disable()

    d = out.decision
    print(f"method: {d.method}   servers: {np.round(bw, 1).tolist()} Mbps")
    print(
        format_table(
            ["stream", "resolution", "fps", "server"],
            [
                [i, int(d.resolutions[i]), d.fps[i], d.assignment[i] if i < len(d.assignment) else "-"]
                for i in range(d.n_streams)
            ],
        )
    )
    names = ("latency_s", "mAP", "Mbps", "TFLOPs", "W")
    print("outcome:", {n: round(float(v), 4) for n, v in zip(names, d.outcome)})
    print(f"true benefit: {float(pref.value(d.outcome)):.4f}")
    if owns_telemetry:
        spans = report.get("spans", {})
        total = spans.get("cli.optimize", {}).get("total_s", 0.0)
        print(
            f"telemetry: trace {trace_id} — "
            f"{len(report.get('counters', {}))} counters, "
            f"{len(spans)} spans, optimize took {total:.3f}s"
        )
        if telemetry_path:
            print(f"telemetry events written to {telemetry_path}")
            print(f"inspect with: repro report {telemetry_path}")
        if profile and report.get("profile"):
            print("top functions (cumulative):")
            for row in report["profile"]["top"][:5]:
                print(f"  {row['cumtime_s']:8.3f}s  {row['function']}")
    return 0


_FIGURES = {
    "2": "fig2",
    "3": "fig3",
    "4": "fig4",
    "6": "fig6",
    "7": "fig7",
    "8": "fig8",
    "9": "fig9",
    "10a": "fig10a",
    "10b": "fig10b",
}


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.bench import (
        fig2_profiling_surfaces,
        fig3a_contention,
        fig3b_pareto,
        fig4_jitter,
        fig6_preference_sweep,
        fig7_scaling,
        fig8_outcome_r2,
        fig9_preference_accuracy,
        fig10a_weight_sensitivity,
        fig10b_threshold_sensitivity,
        format_series,
        format_table,
    )

    from repro.obs import telemetry

    fig = args.id
    if fig not in _FIGURES:
        print(
            f"error: unknown figure {fig!r}; choose from {sorted(_FIGURES)}",
            file=sys.stderr,
        )
        return 2
    quick = args.quick
    saved_data = None
    telemetry_path = getattr(args, "telemetry", "") or ""
    owns_telemetry = bool(telemetry_path)
    if telemetry_path and (err := _check_writable(telemetry_path)):
        print(f"error: cannot write telemetry log: {err}", file=sys.stderr)
        return 2
    if owns_telemetry:
        telemetry.enable(telemetry_path)

    if fig == "2":
        data = fig2_profiling_surfaces(
            resolutions=(400, 1200, 2000) if quick else (300, 600, 900, 1200, 1600, 2000),
            fps_values=(2, 15, 30) if quick else (1, 5, 10, 15, 20, 25, 30),
            n_frames=24 if quick else 45,
        )
        saved_data = data
        clip = [k for k in data if k.startswith("mot")][0]
        rows = [
            [r] + list(np.round(data[clip]["accuracy"][i], 3))
            for i, r in enumerate(data["resolutions"])
        ]
        print(
            format_table(
                ["res\\fps"] + [str(f) for f in data["fps_values"]],
                rows,
                title=f"Fig.2 mAP surface ({clip})",
            )
        )
        from repro.bench import format_heatmap

        for metric in ("accuracy", "network_mbps", "power_watts"):
            print()
            print(
                format_heatmap(
                    data[clip][metric],
                    row_labels=[int(r) for r in data["resolutions"]],
                    col_labels=[str(int(f)) for f in data["fps_values"]],
                    title=f"{metric} (rows: resolution, cols: fps)",
                )
            )
    elif fig == "3":
        a = fig3a_contention()
        print(
            f"Fig.3a: queueing delay frame 1 = {a['video2_delays'][0]:.2f}s, "
            f"last = {a['video2_delays'][-1]:.2f}s"
        )
        b = fig3b_pareto(n_decisions=20 if quick else 60)
        print(f"Fig.3b: Pareto front size = {len(b['pareto_indices'])}")
        saved_data = {"fig3a": a, "fig3b": b}
    elif fig == "4":
        d = fig4_jitter()
        saved_data = d
        print(
            f"Fig.4: naive jitter = {d['bad_assignment_jitter'] * 1e3:.1f} ms, "
            f"Algorithm 1 jitter = {d['algorithm1_jitter'] * 1e3:.4f} ms"
        )
    elif fig == "6":
        recs = fig6_preference_sweep(
            weight_values=(0.2, 3.2) if quick else (0.2, 0.4, 1.6, 3.2),
            objectives=("acc",) if quick else ("ltc", "acc", "net", "com", "eng"),
            n_streams=4 if quick else 8,
            n_servers=3 if quick else 5,
        )
        saved_data = recs
        rows = [
            [f"w_{r['objective']}={r['weight']}"]
            + [round(r["normalized"][m], 3) for m in ("JCAB", "FACT", "PaMO", "PaMO+")]
            for r in recs
        ]
        print(format_table(["setting", "JCAB", "FACT", "PaMO", "PaMO+"], rows, title="Fig.6"))
    elif fig == "7":
        d = fig7_scaling(
            node_counts=(5,) if quick else (5, 6, 7, 8, 9),
            video_counts=(7,) if quick else (7, 8, 9, 10, 11),
        )
        saved_data = d
        for key, label in (("by_nodes", "nodes"), ("by_videos", "videos")):
            series = {
                m: [r["normalized"][m] for r in d[key]]
                for m in ("JCAB", "FACT", "PaMO", "PaMO+")
            }
            print(format_series(label, [r["setting"] for r in d[key]], series))
    elif fig == "8":
        d = fig8_outcome_r2(
            train_sizes=(50, 150) if quick else (200, 300, 400, 500, 600),
            n_reps=1 if quick else 3,
        )
        saved_data = d
        print(format_series("train size", d["train_sizes"], d["r2"], title="Fig.8 R²"))
    elif fig == "9":
        d = fig9_preference_accuracy(
            pair_counts=(3, 18) if quick else (3, 6, 9, 18, 27),
            n_test_pairs=100 if quick else 500,
            n_reps=1 if quick else 3,
        )
        saved_data = d
        print(
            format_series(
                "pairs", d["pair_counts"], {"accuracy": d["accuracy"]}, title="Fig.9"
            )
        )
    elif fig == "10a":
        recs = fig10a_weight_sensitivity(
            weight_values=(0.1, 1.0, 5.0) if quick else (0.05, 0.1, 0.2, 0.5, 0.8, 1.0, 2.0, 5.0),
            configs=((3, 4),) if quick else ((5, 8), (6, 10)),
        )
        saved_data = recs
        rows = [
            [r["config"], r["weight"], round(r["JCAB"], 3), round(r["FACT"], 3),
             round(r["PaMO"], 3), round(r["PaMO+"], 3)]
            for r in recs
        ]
        print(format_table(["config", "w", "JCAB", "FACT", "PaMO", "PaMO+"], rows, title="Fig.10a"))
    elif fig == "10b":
        recs = fig10b_threshold_sensitivity(
            deltas=(0.02, 0.2) if quick else (0.02, 0.04, 0.06, 0.08, 0.1, 0.2),
            configs=((3, 4),) if quick else ((5, 8),),
        )
        saved_data = recs
        rows = [
            [r["config"], r["delta"], round(r["JCAB"], 3), round(r["FACT"], 3),
             round(r["PaMO"], 3), round(r["PaMO+"], 3)]
            for r in recs
        ]
        print(format_table(["config", "delta", "JCAB", "FACT", "PaMO", "PaMO+"], rows, title="Fig.10b"))
    if getattr(args, "output", "") and saved_data is not None:
        from repro.bench import experiment_record, save_results

        path = save_results(experiment_record(saved_data), args.output)
        print(f"results written to {path}")
    if owns_telemetry:
        telemetry.emit_summary(figure=fig)
        trace_id = telemetry.trace_id
        telemetry.disable()
        print(f"telemetry: trace {trace_id}")
        print(f"telemetry events written to {telemetry_path}")
        print(f"inspect with: repro report {telemetry_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        render_markdown,
        render_text,
        summarize_file,
        to_json,
    )

    try:
        summary = summarize_file(args.log)
    except OSError as exc:
        print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    if summary.n_events == 0:
        print(f"error: no telemetry events in {args.log}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(to_json(summary), indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(render_markdown(summary))
    else:
        print(render_text(summary))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.report import compare_files, parse_threshold, render_compare

    try:
        threshold = parse_threshold(args.threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result, base, cand = compare_files(
            args.baseline, args.candidate, threshold=threshold
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if base.n_events == 0 or cand.n_events == 0:
        empty = args.baseline if base.n_events == 0 else args.candidate
        print(f"error: no telemetry events in {empty}", file=sys.stderr)
        return 2
    print(f"baseline:  {args.baseline}  (trace {base.trace_id})")
    print(f"candidate: {args.candidate}  (trace {cand.trace_id})")
    print(render_compare(result))
    return 1 if result.regressed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.hotpath import (
        BENCHMARKS,
        check_result,
        run_benchmark,
        save_bench,
    )
    from repro.bench.io import load_results
    from repro.bench.reporting import format_table

    if args.slack < 1.0:
        print(f"error: --slack must be >= 1.0, got {args.slack:g}", file=sys.stderr)
        return 2
    names = args.names or sorted(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        print(
            f"error: unknown benchmark(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(BENCHMARKS))}",
            file=sys.stderr,
        )
        return 2

    rows = []
    failures: list[str] = []
    for name in names:
        result = run_benchmark(name, profile=args.profile, seed=args.seed)
        path = save_bench(result, args.output_dir)
        rows.append(
            [
                name,
                round(result["fast"]["wall_s"], 4),
                round(result["slow"]["wall_s"], 4),
                f"{result['speedup']:.2f}x",
                str(path),
            ]
        )
        if args.check:
            from pathlib import Path

            base_path = Path(args.check) / f"BENCH_{name}.json"
            if not base_path.exists():
                failures.append(f"{name}: no baseline at {base_path}")
            else:
                failures.extend(
                    check_result(result, load_results(base_path), slack=args.slack)
                )
    print(
        format_table(
            ["benchmark", "fast (s)", "slow (s)", "speedup", "output"],
            rows,
            title=f"hot-path benchmarks ({args.profile}, seed {args.seed})",
        )
    )
    if args.check:
        if failures:
            for f in failures:
                print(f"FAIL {f}", file=sys.stderr)
            return 1
        print(f"all {len(names)} benchmark(s) within {args.slack:g}x of baseline")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.baselines import make_scheduler
    from repro.bench.reporting import format_table
    from repro.core import EVAProblem, make_preference
    from repro.obs import telemetry
    from repro.resilience import ChaosRunner, FaultPlan
    from repro.utils import as_generator

    gen = as_generator(args.seed)
    if args.bandwidths:
        bw = [float(b) for b in args.bandwidths.split(",")]
        if len(bw) != args.servers:
            print(
                f"error: --bandwidths gives {len(bw)} values for "
                f"{args.servers} servers",
                file=sys.stderr,
            )
            return 2
    else:
        bw = gen.choice([5.0, 10.0, 15.0, 20.0, 25.0, 30.0], args.servers).tolist()
    problem = EVAProblem(n_streams=args.streams, bandwidths_mbps=bw)
    weights = (
        [float(w) for w in args.weights.split(",")] if args.weights else None
    )
    pref = make_preference(problem, weights=weights)

    try:
        if args.faults:
            plan = FaultPlan.from_specs(
                [s for s in args.faults.split(",") if s.strip()]
            )
        else:
            plan = FaultPlan.random(
                n_servers=args.servers,
                n_streams=args.streams,
                horizon=args.horizon,
                n_faults=args.n_faults,
                rng=args.seed,
            )
    except ValueError as exc:
        print(f"error: bad fault plan: {exc}", file=sys.stderr)
        return 2

    def factory(prob):
        return make_scheduler(args.method, prob, preference=pref, rng=args.seed)

    telemetry_path = getattr(args, "telemetry", "") or ""
    if telemetry_path and (err := _check_writable(telemetry_path)):
        print(f"error: cannot write telemetry log: {err}", file=sys.stderr)
        return 2
    if telemetry_path:
        telemetry.enable(telemetry_path)
    monitor = None
    if args.max_drop is not None:
        from repro.obs import HealthMonitor, SloRule

        monitor = HealthMonitor(
            [
                SloRule(
                    metric="benefit_drop_ratio",
                    op="<=",
                    threshold=float(args.max_drop),
                    severity="degraded",
                    name="benefit_drop",
                ),
                SloRule(
                    metric="feasible",
                    op=">=",
                    threshold=1.0,
                    severity="unhealthy",
                    name="feasibility",
                ),
            ]
        )
    try:
        try:
            runner = ChaosRunner(
                problem, plan, factory, preference=pref, monitor=monitor
            )
            report = runner.run()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    finally:
        if telemetry_path:
            telemetry.emit_summary(method=args.method, seed=args.seed)
            telemetry.disable()

    print(
        f"method: {args.method}   servers: {np.round(bw, 1).tolist()} Mbps   "
        f"streams: {args.streams}"
    )
    print(f"fault plan ({len(plan)} events):")
    for e in plan:
        extra = f" x{e.value}" if e.value is not None else ""
        print(f"  t={e.time:g}  {e.kind}:{e.target}{extra}")
    print(f"baseline benefit: {report.baseline_benefit:.4f}")
    rows = []
    scale = max(abs(report.baseline_benefit), 1e-12)
    for ep in report.epochs:
        drop = (
            "-"
            if ep.benefit is None
            else f"{max(0.0, (report.baseline_benefit - ep.benefit) / scale):.1%}"
        )
        rows.append(
            [
                ep.index,
                f"{ep.time:g}",
                ",".join(f"{e.kind}:{e.target}" for e in ep.events),
                ep.n_servers,
                ep.n_streams,
                "-" if ep.benefit is None else f"{ep.benefit:.4f}",
                drop,
                "yes" if ep.feasible else "NO",
            ]
        )
    print(
        format_table(
            ["epoch", "t", "events", "servers", "streams", "benefit", "drop", "feasible"],
            rows,
        )
    )
    if report.alerts:
        print(f"alerts ({report.alerts_fired} fired):")
        for a in report.alerts:
            print(
                f"  {a['event']}: {a['rule']}"
                f" ({a['metric']}={a['value']:.4g}"
                f" vs {a['threshold']:.4g}, {a['severity']})"
            )
    elif monitor is not None:
        print("alerts: none fired")
    if args.output:
        import json
        from pathlib import Path

        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
        print(f"chaos report written to {args.output}")
    if telemetry_path:
        print(f"telemetry events written to {telemetry_path}")
    if not report.all_feasible:
        print("FAIL: an epoch produced no feasible schedule", file=sys.stderr)
        return 1
    if args.max_drop is not None:
        drop = report.worst_drop
        if drop is None or drop > args.max_drop:
            print(
                f"FAIL: worst benefit drop "
                f"{'n/a' if drop is None else f'{drop:.1%}'} exceeds "
                f"--max-drop {args.max_drop:.1%}",
                file=sys.stderr,
            )
            return 1
        print(f"worst benefit drop {drop:.1%} within --max-drop {args.max_drop:.1%}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import load_events, write_chrome_trace

    try:
        events = load_events(args.log)
    except OSError as exc:
        print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"error: no telemetry events in {args.log}", file=sys.stderr)
        return 2
    out = args.output or f"{args.log}.trace.json"
    if err := _check_writable(out):
        print(f"error: cannot write {out}: {err}", file=sys.stderr)
        return 2
    written = write_chrome_trace(events, out)
    print(f"wrote Chrome trace of {len(events)} telemetry events to {written}")
    print("open in Perfetto (ui.perfetto.dev) or chrome://tracing")
    return 0


def _parse_bandwidths(args: argparse.Namespace, n_servers: int, gen) -> list[float] | None:
    """Resolve --bandwidths (or seeded defaults); None + stderr on mismatch."""
    if args.bandwidths:
        bw = [float(b) for b in args.bandwidths.split(",")]
        if len(bw) != n_servers:
            print(
                f"error: --bandwidths gives {len(bw)} values for "
                f"{n_servers} servers",
                file=sys.stderr,
            )
            return None
        return bw
    return gen.choice([5.0, 10.0, 15.0, 20.0, 25.0, 30.0], n_servers).tolist()


def _churn_profile(args: argparse.Namespace):
    from repro.serve import ChurnProfile

    return ChurnProfile(
        hours=args.hours,
        arrivals_per_hour=args.arrivals_per_hour,
        departures_per_hour=args.departures_per_hour,
        drifts_per_hour=args.drifts_per_hour,
        flaps_per_hour=args.flaps_per_hour,
        burst_start_s=getattr(args, "burst_start", None),
        burst_duration_s=getattr(args, "burst_duration", 120.0),
        burst_multiplier=getattr(args, "burst_multiplier", 1.0),
        diurnal_amplitude=getattr(args, "diurnal_amplitude", 0.0),
        diurnal_period_s=getattr(args, "diurnal_period", 3600.0),
    )


def _cmd_serve_loadgen(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.serve import generate_load

    try:
        log = generate_load(
            args.streams, args.servers, profile=_churn_profile(args), seed=args.seed
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if err := _check_writable(args.output):
        print(f"error: cannot write {args.output}: {err}", file=sys.stderr)
        return 2
    path = log.save(args.output)
    counts = Counter(e.kind for e in log)
    mix = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    print(
        f"wrote {len(log)} events to {path} "
        f"({args.streams} streams, {args.servers} servers, "
        f"{args.hours:g} h, seed {args.seed})"
    )
    print(f"event mix: {mix or 'none'}")
    print(f"replay with: repro serve run --events {path}")
    return 0


def _serve_hardening(args: argparse.Namespace):
    """Build admission/breaker/remediation (+ brownout SLO rules) from flags.

    Returns ``(admission, breaker, remediation, brownout_rules)`` with
    ``None`` for pieces no flag asked for, so a flagless run keeps the
    exact pre-hardening behavior.  Raises ``ValueError`` on bad specs.
    """
    from repro.serve import AdmissionController, parse_priority_map
    from repro.serve.service import RemediationPolicy

    admission = None
    priority_map: dict[int, int] = {}
    default_priority = 0
    if args.priority_map:
        priority_map, default_priority = parse_priority_map(args.priority_map)
    if (
        args.priority_map
        or args.join_rate is not None
        or args.max_queue_depth is not None
    ):
        admission = AdmissionController(
            priority_map=priority_map,
            default_priority=default_priority,
            join_rate_per_epoch=args.join_rate,
            join_burst=args.join_burst,
            max_queue_depth=args.max_queue_depth,
            protect_priority=args.protect_priority,
        )
    breaker = None
    if args.breaker or args.breaker_deadline is not None:
        from repro.resilience import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=args.breaker_failures,
            cooldown_epochs=args.breaker_cooldown,
            probe_successes=args.breaker_probes,
            deadline_s=args.breaker_deadline,
        )
    remediation = None
    brownout_rules = []
    if args.brownout_slo:
        from repro.obs import SloRule
        from repro.obs.health import severity_rank

        try:
            brownout_rules = [SloRule.parse(s) for s in args.brownout_slo]
        except ValueError as exc:
            raise ValueError(f"bad --brownout-slo rule: {exc}") from exc
        # Remediation is severity-thresholded: brownout triggers at the
        # lowest severity any --brownout-slo rule can fire at.
        floor = min((r.severity for r in brownout_rules), key=severity_rank)
        remediation = RemediationPolicy(brownout_severity=floor)
    return admission, breaker, remediation, brownout_rules


def _rule_spec(rule) -> str:
    """Round-trippable string for an SloRule (keeps a custom name)."""
    spec = rule.spec()
    return spec if rule.name == spec else f"{rule.name}: {spec}"


def _cmd_serve_run(args: argparse.Namespace) -> int:
    from repro.core import EVAProblem
    from repro.obs import telemetry
    from repro.sched.grouping import InfeasibleScheduleError
    from repro.serve import (
        EventLog,
        RegistryFactory,
        SchedulerService,
        approx_preference,
        generate_load,
    )
    from repro.utils import as_generator

    log = None
    if args.events:
        try:
            log = EventLog.load(args.events)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load {args.events}: {exc}", file=sys.stderr)
            return 2
    try:
        admission, breaker, remediation, brownout_rules = _serve_hardening(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wal_spec = None
    if args.resume:
        from repro.resilience.checkpoint import load_checkpoint  # noqa: F401

        try:
            service = SchedulerService.resume(args.resume)
        except (OSError, ValueError, EOFError, pickle.UnpicklingError) as exc:
            print(f"error: cannot resume from {args.resume}: {exc}", file=sys.stderr)
            return 2
        # Hardening flags override the pickled configuration when given.
        if admission is not None:
            service.admission = admission
        if breaker is not None:
            service.breaker = breaker
        if remediation is not None:
            service.remediation = remediation
        print(
            f"resuming serve run from {args.resume} "
            f"(epoch {service.epoch}, {len(service.planner.entries)} streams, "
            f"{len(service.queue)} queued events)"
        )
    else:
        if log is not None:
            n_streams = log.n_streams or args.streams
            n_servers = log.n_servers or args.servers
        else:
            n_streams, n_servers = args.streams, args.servers
        gen = as_generator(args.seed)
        bw = _parse_bandwidths(args, n_servers, gen)
        if bw is None:
            return 2
        problem = EVAProblem(n_streams=n_streams, bandwidths_mbps=bw)
        weights = (
            [float(w) for w in args.weights.split(",")] if args.weights else None
        )
        pref = approx_preference(problem, weights=weights)
        factory = (
            RegistryFactory(args.method, pref, seed=args.seed)
            if args.method
            else None
        )
        try:
            service = SchedulerService(
                problem,
                preference=pref,
                scheduler_factory=factory,
                epoch_s=args.epoch,
                reoptimize_every=args.reoptimize_every,
                admission=admission,
                breaker=breaker,
                remediation=remediation,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.wal:
            from repro.serve import service_spec

            wal_spec = service_spec(
                n_streams=n_streams,
                bandwidths_mbps=bw,
                seed=args.seed,
                method=args.method,
                weights=weights,
                epoch_s=args.epoch,
                reoptimize_every=args.reoptimize_every,
                admission=None if admission is None else admission.snapshot(),
                breaker=None if breaker is None else {
                    "failure_threshold": breaker.failure_threshold,
                    "cooldown_epochs": breaker.cooldown_epochs,
                    "probe_successes": breaker.probe_successes,
                    "deadline_s": breaker.deadline_s,
                },
                remediation=(
                    None if remediation is None else remediation.to_dict()
                ),
            )
        if log is None:
            log = generate_load(
                n_streams, n_servers, profile=_churn_profile(args), seed=args.seed
            )

    if args.checkpoint and (err := _check_writable(args.checkpoint)):
        print(f"error: cannot write checkpoint: {err}", file=sys.stderr)
        return 2
    telemetry_path = getattr(args, "telemetry", "") or ""
    if telemetry_path and (err := _check_writable(telemetry_path)):
        print(f"error: cannot write telemetry log: {err}", file=sys.stderr)
        return 2
    if telemetry_path:
        from repro.obs import JsonlSink

        max_bytes = int(getattr(args, "telemetry_max_mb", 0.0) * 1024 * 1024)
        telemetry.enable(
            JsonlSink(
                telemetry_path,
                max_bytes=max_bytes,
                backup_count=getattr(args, "telemetry_backups", 3),
            )
        )

    metrics_server = None
    slo_specs = getattr(args, "slo", None)
    want_metrics = getattr(args, "metrics_port", None) is not None
    attached_rules = None
    if want_metrics or slo_specs or brownout_rules:
        from repro.obs import HealthMonitor, SloRule, default_rules

        try:
            if slo_specs:
                rules = [SloRule.parse(spec) for spec in slo_specs]
            elif want_metrics:
                rules = default_rules()
            else:
                rules = []  # --brownout-slo alone: just those rules
        except ValueError as exc:
            print(f"error: bad --slo rule: {exc}", file=sys.stderr)
            return 2
        rules = rules + brownout_rules
        attached_rules = rules
        # --slo alone still attaches a monitor: alerts land in telemetry
        # (alert.fired/resolved events) without the HTTP endpoint.
        registry = None
        if want_metrics:
            from repro.obs import MetricsRegistry, MetricsServer

            registry = MetricsRegistry()
        service.attach_observability(
            metrics=registry, monitor=HealthMonitor(rules)
        )
    if want_metrics:
        telemetry.attach_metrics(registry)
        metrics_server = MetricsServer(
            registry,
            health=service.health_status,
            varz=service.varz,
            host=getattr(args, "metrics_host", "127.0.0.1"),
            port=args.metrics_port,
        )
        try:
            port = metrics_server.start()
        except OSError as exc:
            print(
                f"error: cannot bind metrics server on "
                f"{args.metrics_host}:{args.metrics_port}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(
            f"metrics: {metrics_server.url}/metrics · "
            f"{metrics_server.url}/healthz · {metrics_server.url}/varz"
        )
        print(f"watch live with: repro serve top --port {port}")
    wal = None
    if getattr(args, "wal", ""):
        if err := _check_writable(args.wal):
            print(f"error: cannot write WAL: {err}", file=sys.stderr)
            return 2
        from repro.serve import WriteAheadLog

        if args.resume:
            wal = WriteAheadLog.open(args.wal)
        else:
            if attached_rules is not None:
                wal_spec["slo"] = [_rule_spec(r) for r in attached_rules]
            wal = WriteAheadLog.create(args.wal, wal_spec)
        service.attach_wal(wal)
        print(f"write-ahead log: {args.wal}")
    # Graceful shutdown: SIGTERM/SIGINT drain the epoch in flight, write
    # the final checkpoint, sync the WAL, and exit 0.  Install before
    # run() so the whole drain is covered; restore on the way out.
    import signal as _signal

    def _graceful(signum, frame):  # noqa: ARG001 — signal handler shape
        service.request_stop()

    old_handlers = {}
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        try:
            old_handlers[signum] = _signal.signal(signum, _graceful)
        except (OSError, ValueError):  # non-main thread / exotic embedder
            pass
    try:
        try:
            with telemetry.span("cli.serve"):
                if not service.started:
                    service.start()
                if log is not None:
                    service.submit(log)
                service.run(
                    max_epochs=args.max_epochs,
                    checkpoint_path=args.checkpoint or None,
                    checkpoint_every=args.checkpoint_every,
                    pace_s=getattr(args, "pace", 0.0),
                )
        except InfeasibleScheduleError as exc:
            print(f"error: schedule became infeasible: {exc}", file=sys.stderr)
            return 1
    finally:
        for signum, handler in old_handlers.items():
            try:
                _signal.signal(signum, handler)
            except (OSError, ValueError):
                pass
        if wal is not None:
            wal.close()
        if telemetry_path:
            telemetry.emit_summary(command="serve.run", seed=args.seed)
            telemetry.disable()
        if metrics_server is not None:
            telemetry.attach_metrics(None)
            metrics_server.stop()

    s = service.summary()
    method = args.method if getattr(args, "method", "") else "greedy (engine)"
    print(f"serve run: {s['epochs']} epochs, method {method}")
    print(
        f"  streams {s['n_streams']} (end)   alive servers {s['n_alive_servers']}"
    )
    print(
        f"  full solves {s['full_solves']}   cache hits {s['cache_hits']}   "
        f"re-solved {s['solved']}   rejects {s['rejected']}   "
        f"evicted {s['evicted']}"
    )
    if s["shed"] or s["brownout_epochs"] or s["breaker_opens"]:
        print(
            f"  shed {s['shed']}   brownout epochs {s['brownout_epochs']}   "
            f"breaker {s['breaker_state'] or 'off'} "
            f"(opened {s['breaker_opens']}x)"
        )
    print(
        f"  decision latency p50 {s['decision_p50_s'] * 1e3:.3f} ms   "
        f"p95 {s['decision_p95_s'] * 1e3:.3f} ms   "
        f"max {s['decision_max_s'] * 1e3:.3f} ms   "
        f"(window {s['decision_window']} epochs)"
    )
    if s["alerts_fired"] or s["health"] != "ok":
        print(
            f"  health {s['health']}   alerts fired {s['alerts_fired']}"
        )
    if s["benefit_last"] is not None:
        print(
            f"  benefit {s['benefit_first']:+.4f} (warm-up) -> "
            f"{s['benefit_last']:+.4f} (final)"
        )
    if args.checkpoint:
        print(f"  checkpoint written to {args.checkpoint}")
    if telemetry_path:
        print(f"telemetry events written to {telemetry_path}")
        print(
            f"inspect with: repro serve report {telemetry_path} "
            f"(or repro report / repro trace)"
        )
    return 0


def _cmd_serve_recover(args: argparse.Namespace) -> int:
    from repro.obs import telemetry
    from repro.sched.grouping import InfeasibleScheduleError
    from repro.serve import recover_service

    try:
        service, info = recover_service(
            args.wal, checkpoint=args.checkpoint or None
        )
    except (OSError, ValueError, EOFError, pickle.UnpicklingError) as exc:
        print(f"error: cannot recover from {args.wal}: {exc}", file=sys.stderr)
        return 2
    source = (
        f"checkpoint {args.checkpoint} (seq {info.start_seq})"
        if info.from_checkpoint
        else "WAL meta record (fresh rebuild)"
    )
    print(f"recovering from {source}")
    print(
        f"  replaying {info.replayed_events} journaled events "
        f"({info.torn_lines} torn tail lines dropped)"
    )
    telemetry_path = getattr(args, "telemetry", "") or ""
    if telemetry_path:
        if err := _check_writable(telemetry_path):
            print(f"error: cannot write telemetry log: {err}", file=sys.stderr)
            return 2
        from repro.obs import JsonlSink

        telemetry.enable(JsonlSink(telemetry_path))
    try:
        try:
            with telemetry.span("cli.serve.recover"):
                if not service.started:
                    service.start()
                service.run(checkpoint_path=args.save_checkpoint or None)
        except InfeasibleScheduleError as exc:
            print(f"error: schedule became infeasible: {exc}", file=sys.stderr)
            return 1
    finally:
        if telemetry_path:
            telemetry.emit_summary(command="serve.recover", seed=0)
            telemetry.disable()
    s = service.summary()
    print(
        f"recovered run: {s['epochs']} epochs total, "
        f"{s['n_streams']} streams, benefit "
        + (
            f"{s['benefit_last']:+.4f}"
            if s["benefit_last"] is not None
            else "n/a"
        )
    )
    mismatches = info.verify(service)
    verified = len(info.recorded) - len(mismatches)
    if mismatches:
        print(
            f"FAIL: {len(mismatches)} of {len(info.recorded)} journaled "
            f"epochs diverged from the recovered decisions:",
            file=sys.stderr,
        )
        for m in mismatches[:10]:
            print(
                f"  epoch {m['epoch']}: recorded {m['expected']}, "
                f"got {m['actual']}",
                file=sys.stderr,
            )
        return 1
    print(
        f"recovery verified: {verified} journaled epochs bit-identical "
        f"to the original run"
    )
    if telemetry_path:
        print(f"telemetry events written to {telemetry_path}")
    if args.save_checkpoint:
        print(f"  checkpoint written to {args.save_checkpoint}")
    return 0


def _cmd_serve_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    url = args.url or f"http://{args.host}:{args.port}"
    return run_top(
        url,
        interval_s=args.interval,
        iterations=args.iterations,
        color=not args.no_color,
        clear=not args.no_clear,
    )


def _cmd_serve_report(args: argparse.Namespace) -> int:
    import json

    from repro.serve import summarize_serve_run

    try:
        summary = summarize_serve_run(args.log)
    except OSError as exc:
        print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    if summary.epochs == 0 and summary.decision_count == 0:
        print(f"error: no serve events in {args.log}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(summary.render())
    if args.max_p95 is not None:
        if not summary.gate(args.max_p95):
            print(
                f"FAIL: p95 decision latency {summary.decision_p95_s:.4f}s "
                f"exceeds --max-p95 {args.max_p95:g}s "
                f"(over {summary.decision_count} epochs)",
                file=sys.stderr,
            )
            return 1
        print(
            f"p95 decision latency {summary.decision_p95_s:.4f}s within "
            f"--max-p95 {args.max_p95:g}s"
        )
    if getattr(args, "max_drop", None) is not None:
        drop = summary.benefit_drop_ratio
        if not summary.gate_drop(args.max_drop):
            shown = "n/a" if drop is None else f"{drop:.1%}"
            print(
                f"FAIL: benefit drop {shown} exceeds "
                f"--max-drop {args.max_drop:.1%}",
                file=sys.stderr,
            )
            return 1
        print(
            f"benefit drop {drop:.1%} within --max-drop {args.max_drop:.1%}"
        )
    return 0


def _add_problem_args(p: argparse.ArgumentParser) -> None:
    """Shared problem-topology flags (optimize, chaos, serve run)."""
    p.add_argument("--streams", type=int, default=6)
    p.add_argument("--servers", type=int, default=4)
    p.add_argument(
        "--bandwidths", type=str, default="", help="comma list of Mbps per server"
    )
    p.add_argument(
        "--weights", type=str, default="", help="comma list: ltc,acc,net,com,eng"
    )


def _register_core(sub) -> None:
    """Core commands: ``info`` and the batch ``optimize``."""
    p_info = sub.add_parser("info", help="package inventory")
    p_info.set_defaults(func=_cmd_info)

    p_opt = sub.add_parser("optimize", help="schedule streams onto servers")
    _add_problem_args(p_opt)
    p_opt.add_argument(
        "--method",
        type=str,
        default="pamo",
        help="registered scheduler name (see `repro info`)",
    )
    p_opt.add_argument("--seed", type=int, default=0)
    p_opt.add_argument(
        "--telemetry",
        type=str,
        default="",
        metavar="PATH",
        help="write a JSONL telemetry event log (per-BO-iteration records)",
    )
    p_opt.add_argument(
        "--profile",
        action="store_true",
        help="run the scheduler under cProfile and print top functions",
    )
    p_opt.add_argument(
        "--checkpoint",
        type=str,
        default="",
        metavar="PATH",
        help="pickle a resumable checkpoint here every --checkpoint-every iterations",
    )
    p_opt.add_argument(
        "--checkpoint-every",
        type=int,
        default=2,
        metavar="N",
        help="BO iterations between checkpoints (with --checkpoint; default 2)",
    )
    p_opt.add_argument(
        "--resume",
        type=str,
        default="",
        metavar="CKPT",
        help="resume an interrupted run from a checkpoint (ignores problem flags)",
    )
    p_opt.set_defaults(func=_cmd_optimize)


def _register_figures(sub) -> None:
    """Paper-figure regeneration."""
    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("id", type=str, help="2|3|4|6|7|8|9|10a|10b")
    p_fig.add_argument("--quick", action="store_true", help="reduced sizes")
    p_fig.add_argument(
        "--output", type=str, default="", help="write results JSON to this path"
    )
    p_fig.add_argument(
        "--telemetry",
        type=str,
        default="",
        metavar="PATH",
        help="record telemetry (JSONL events here; summary in --output JSON)",
    )
    p_fig.set_defaults(func=_cmd_figure)


def _register_obs(sub) -> None:
    """Observability commands: ``report``, ``compare``, ``trace``."""
    p_rep = sub.add_parser("report", help="summarize a telemetry JSONL log")
    p_rep.add_argument("log", type=str, help="telemetry JSONL file")
    p_rep.add_argument(
        "--format",
        choices=("text", "json", "markdown"),
        default="text",
        help="output format (default: text)",
    )
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser(
        "compare", help="diff two telemetry logs; exit 1 on regression"
    )
    p_cmp.add_argument("baseline", type=str, help="baseline telemetry JSONL")
    p_cmp.add_argument("candidate", type=str, help="candidate telemetry JSONL")
    p_cmp.add_argument(
        "--threshold",
        type=str,
        default="10%",
        help="regression threshold, e.g. 10%% or 0.1 (default: 10%%)",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_tr = sub.add_parser(
        "trace", help="export a telemetry log to Chrome trace_event JSON"
    )
    p_tr.add_argument("log", type=str, help="telemetry JSONL file")
    p_tr.add_argument(
        "-o",
        "--output",
        type=str,
        default="",
        help="output path (default: <log>.trace.json)",
    )
    p_tr.set_defaults(func=_cmd_trace)


def _register_resilience(sub) -> None:
    """Fault-injection commands: ``chaos``."""
    p_chaos = sub.add_parser(
        "chaos", help="run a scheduler under a fault plan; compare to fault-free"
    )
    _add_problem_args(p_chaos)
    p_chaos.add_argument(
        "--method", type=str, default="pamo", help="registered scheduler name"
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--faults",
        type=str,
        default="",
        help=(
            "comma list of fault specs <kind>:<target>@<time>[x<value>], "
            "e.g. 'crash:1@0.5,bw:0@2.0x0.25,recover:1@4.0'; "
            "empty = seeded random plan"
        ),
    )
    p_chaos.add_argument(
        "--n-faults", type=int, default=3, help="events in the random plan"
    )
    p_chaos.add_argument(
        "--horizon", type=float, default=10.0, help="random-plan time horizon (s)"
    )
    p_chaos.add_argument(
        "--max-drop",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail (exit 1) if the worst benefit drop exceeds this fraction",
    )
    p_chaos.add_argument(
        "--output", type=str, default="", help="write the chaos report JSON here"
    )
    p_chaos.add_argument(
        "--telemetry",
        type=str,
        default="",
        metavar="PATH",
        help="write a JSONL telemetry event log (fault.* / chaos.* events)",
    )
    p_chaos.set_defaults(func=_cmd_chaos)


def _register_bench(sub) -> None:
    """Benchmark commands: ``bench``."""
    p_bench = sub.add_parser(
        "bench", help="time GP/BO hot-path fast/slow pairs; emit BENCH_<name>.json"
    )
    p_bench.add_argument(
        "names",
        nargs="*",
        help="benchmark names (default: all; see repro.bench.hotpath)",
    )
    p_bench.add_argument(
        "--profile",
        choices=("smoke", "medium"),
        default="medium",
        help="sizing profile (default: medium — the acceptance config)",
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--output-dir",
        type=str,
        default=".",
        metavar="DIR",
        help="directory for BENCH_<name>.json records (default: .)",
    )
    p_bench.add_argument(
        "--check",
        type=str,
        default="",
        metavar="DIR",
        help="gate against baseline BENCH_<name>.json files in DIR; exit 1 on regression",
    )
    p_bench.add_argument(
        "--slack",
        type=float,
        default=1.1,
        help="allowed speedup shortfall factor for --check (default: 1.1)",
    )
    p_bench.set_defaults(func=_cmd_bench)


def _add_churn_args(p: argparse.ArgumentParser) -> None:
    """Shared load-generation flags (serve loadgen, serve run)."""
    p.add_argument(
        "--hours", type=float, default=1.0, help="simulated duration (default: 1)"
    )
    p.add_argument(
        "--arrivals-per-hour", type=float, default=100.0, metavar="RATE",
        help="stream joins per simulated hour (default: 100)",
    )
    p.add_argument(
        "--departures-per-hour", type=float, default=100.0, metavar="RATE",
        help="stream leaves per simulated hour (default: 100)",
    )
    p.add_argument(
        "--drifts-per-hour", type=float, default=10.0, metavar="RATE",
        help="bandwidth drifts per simulated hour (default: 10)",
    )
    p.add_argument(
        "--flaps-per-hour", type=float, default=2.0, metavar="RATE",
        help="server down/up flaps per simulated hour (default: 2)",
    )
    p.add_argument(
        "--burst-start", type=float, default=None, metavar="SECONDS",
        help="flash crowd: arrival rate multiplies by --burst-multiplier "
        "from this simulated time (default: no burst)",
    )
    p.add_argument(
        "--burst-duration", type=float, default=120.0, metavar="SECONDS",
        help="flash-crowd window length (default: 120)",
    )
    p.add_argument(
        "--burst-multiplier", type=float, default=1.0, metavar="X",
        help="arrival-rate multiplier inside the burst window (default: 1)",
    )
    p.add_argument(
        "--diurnal-amplitude", type=float, default=0.0, metavar="A",
        help="sinusoidal arrival swing amplitude in [0, 1) (default: 0)",
    )
    p.add_argument(
        "--diurnal-period", type=float, default=3600.0, metavar="SECONDS",
        help="diurnal cycle period (default: 3600)",
    )


def _register_serve(sub) -> None:
    """Online serving commands: ``serve {run,loadgen,report}``."""
    p_serve = sub.add_parser(
        "serve", help="event-driven online scheduler service"
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)

    p_run = serve_sub.add_parser(
        "run", help="replay a churn event log through the scheduler service"
    )
    _add_problem_args(p_run)
    _add_churn_args(p_run)
    p_run.add_argument(
        "--events",
        type=str,
        default="",
        metavar="PATH",
        help="event log JSON from `serve loadgen` (else generate from the "
        "churn flags); its topology overrides --streams/--servers",
    )
    p_run.add_argument(
        "--method",
        type=str,
        default="",
        metavar="NAME",
        help="batch scheduler for warm-up/drift full solves (registered "
        "name; default: the engine's greedy admission)",
    )
    p_run.add_argument(
        "--epoch", type=float, default=1.0, metavar="SECONDS",
        help="epoch clock granularity (default: 1.0)",
    )
    p_run.add_argument(
        "--reoptimize-every", type=int, default=0, metavar="N",
        help="force a full solve every N epochs (default: 0 = incremental only)",
    )
    p_run.add_argument(
        "--max-epochs", type=int, default=None, metavar="N",
        help="stop after N event epochs (default: drain the whole log)",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--telemetry",
        type=str,
        default="",
        metavar="PATH",
        help="write a JSONL telemetry event log (serve.* events + spans)",
    )
    p_run.add_argument(
        "--telemetry-max-mb",
        type=float,
        default=0.0,
        metavar="MB",
        help="rotate the telemetry log when a segment reaches this size "
        "(default: 0 = never; readers stitch rotated segments back)",
    )
    p_run.add_argument(
        "--telemetry-backups",
        type=int,
        default=3,
        metavar="N",
        help="rotated segments to keep (with --telemetry-max-mb; default 3)",
    )
    p_run.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live Prometheus/JSON metrics on this port "
        "(/metrics, /healthz, /varz; 0 = ephemeral)",
    )
    p_run.add_argument(
        "--metrics-host",
        type=str,
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for --metrics-port (default: 127.0.0.1)",
    )
    p_run.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="RULE",
        help="SLO rule '[name:] metric op value [for N] [! severity]', "
        "e.g. 'decision_p95_s < 0.25 ! unhealthy' (repeatable; default: "
        "stock latency + benefit-drop rules)",
    )
    p_run.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between epochs so a replayed log runs long enough "
        "to watch live (default: 0 = full speed)",
    )
    p_run.add_argument(
        "--checkpoint",
        type=str,
        default="",
        metavar="PATH",
        help="pickle the service here every --checkpoint-every epochs",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="epochs between checkpoints (with --checkpoint; default 0 = "
        "only at the end of the run)",
    )
    p_run.add_argument(
        "--resume",
        type=str,
        default="",
        metavar="CKPT",
        help="resume a serve run from a checkpoint (ignores problem flags; "
        "--events adds more churn)",
    )
    p_run.add_argument(
        "--wal",
        type=str,
        default="",
        metavar="PATH",
        help="write-ahead event journal; with --checkpoint this makes the "
        "run recoverable after SIGKILL via `repro serve recover`",
    )
    p_run.add_argument(
        "--priority-map",
        type=str,
        default="",
        metavar="SPEC",
        help="per-stream priority classes 'sid=prio,...,default=P' "
        "(higher = more important); enables benefit-aware eviction of "
        "strictly lower classes when capacity runs out",
    )
    p_run.add_argument(
        "--join-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="token-bucket join guard: sustained admissions per epoch "
        "(excess joins are shed; default: unlimited)",
    )
    p_run.add_argument(
        "--join-burst",
        type=float,
        default=None,
        metavar="N",
        help="token-bucket burst capacity (default: 2x --join-rate)",
    )
    p_run.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="shed joins while the event backlog exceeds N "
        "(default: no limit)",
    )
    p_run.add_argument(
        "--protect-priority",
        type=int,
        default=None,
        metavar="P",
        help="joins at or above this class bypass queue-depth/remediation "
        "shedding (default: shed every class)",
    )
    p_run.add_argument(
        "--breaker",
        action="store_true",
        help="enable the full-solve circuit breaker (exception failures "
        "only unless --breaker-deadline is set)",
    )
    p_run.add_argument(
        "--breaker-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="full-solve duration budget; breaches count as breaker "
        "failures (implies --breaker)",
    )
    p_run.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        metavar="N",
        help="consecutive failures that open the breaker (default: 3)",
    )
    p_run.add_argument(
        "--breaker-cooldown",
        type=int,
        default=8,
        metavar="N",
        help="epochs the breaker stays open before probing (default: 8)",
    )
    p_run.add_argument(
        "--breaker-probes",
        type=int,
        default=1,
        metavar="N",
        help="successful half-open probes needed to re-close (default: 1)",
    )
    p_run.add_argument(
        "--brownout-slo",
        action="append",
        default=None,
        metavar="RULE",
        help="SLO rule (same grammar as --slo) whose alert drops the "
        "service into brownout until it resolves (repeatable)",
    )
    p_run.set_defaults(func=_cmd_serve_run)

    p_rec = serve_sub.add_parser(
        "recover",
        help="rebuild a crashed serve run from checkpoint + WAL and "
        "verify bit-identity against the journal",
    )
    p_rec.add_argument(
        "--wal", type=str, required=True, metavar="PATH",
        help="write-ahead journal from the crashed `serve run --wal`",
    )
    p_rec.add_argument(
        "--checkpoint", type=str, default="", metavar="CKPT",
        help="the crashed run's checkpoint (skips already-absorbed "
        "events; default: rebuild from the WAL meta record)",
    )
    p_rec.add_argument(
        "--save-checkpoint", type=str, default="", metavar="PATH",
        help="write the recovered service state here when done",
    )
    p_rec.add_argument(
        "--telemetry", type=str, default="", metavar="PATH",
        help="write the recovered run's JSONL telemetry (for "
        "`repro serve report`)",
    )
    p_rec.set_defaults(func=_cmd_serve_recover)

    p_gen = serve_sub.add_parser(
        "loadgen", help="generate a seeded churn event log"
    )
    p_gen.add_argument("--streams", type=int, default=6)
    p_gen.add_argument("--servers", type=int, default=4)
    _add_churn_args(p_gen)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument(
        "-o",
        "--output",
        type=str,
        default="events.json",
        metavar="PATH",
        help="event log destination (default: events.json)",
    )
    p_gen.set_defaults(func=_cmd_serve_loadgen)

    p_top = serve_sub.add_parser(
        "top", help="live terminal dashboard for a running serve process"
    )
    p_top.add_argument(
        "--url",
        type=str,
        default="",
        metavar="URL",
        help="metrics endpoint base URL (overrides --host/--port)",
    )
    p_top.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="metrics host (default: 127.0.0.1)",
    )
    p_top.add_argument(
        "--port", type=int, default=9109,
        help="metrics port of the serve run (default: 9109)",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default: 1.0)",
    )
    p_top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="draw N frames then exit (default: 0 = until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-color", action="store_true", help="plain output, no ANSI color"
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (log-friendly)",
    )
    p_top.set_defaults(func=_cmd_serve_top)

    p_rep = serve_sub.add_parser(
        "report", help="summarize a serve run's telemetry log"
    )
    p_rep.add_argument("log", type=str, help="telemetry JSONL from `serve run`")
    p_rep.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    p_rep.add_argument(
        "--max-p95",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) if p95 decision latency exceeds this budget",
    )
    p_rep.add_argument(
        "--max-drop",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail (exit 1) if benefit dropped by more than this fraction "
        "of the warm-up benefit over the run (overload gate)",
    )
    p_rep.set_defaults(func=_cmd_serve_report)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for ``python -m repro``.

    Each subsystem contributes its commands through a ``_register_*``
    function; adding a command family means adding one registration
    call here, not editing a monolithic block.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PaMO reproduction: preference-aware EVA scheduling",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)
    _register_core(sub)
    _register_figures(sub)
    _register_obs(sub)
    _register_resilience(sub)
    _register_bench(sub)
    _register_serve(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Registered scheduler names double as top-level commands:
    ``repro pamo --telemetry run.jsonl`` is shorthand for
    ``repro optimize --method pamo --telemetry run.jsonl``.
    """
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and not argv[0].startswith("-"):
        from repro.baselines import available_schedulers

        if argv[0].lower() in available_schedulers():
            argv = ["optimize", "--method", argv[0]] + argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # downstream closed the pipe (e.g. `repro report ... | head`);
        # park stdout on devnull so interpreter shutdown stays quiet
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
