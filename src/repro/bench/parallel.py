"""Parallel experiment execution over seeds/settings.

Figure sweeps repeat independent (setting, seed) arms; this helper
fans them out over processes (each arm is CPU-bound numpy/linalg, so
processes — not threads — buy wall-clock).  Functions and argument
tuples must be picklable (top-level functions, plain data).

The sequential path is kept for ``n_workers=1`` so tests and small runs
avoid process overhead, and failures in any arm propagate with the
original traceback.  In the pool path the first failing arm wins:
outstanding arms are cancelled instead of being run to completion.

Telemetry crosses the process boundary by value: when the parent's
registry is enabled, each worker runs its arm under a fresh registry —
*inheriting the parent's trace ID and linking its root spans under the
parent's current span* — and ships its :meth:`~repro.obs.Telemetry.
report` dict plus buffered event records back with the result.  The
parent folds stats in with :meth:`~repro.obs.Telemetry.merge_report`
and re-emits the worker events verbatim into its own sink, so a merged
JSONL log reconstructs one trace tree across all processes.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Callable, Sequence

from repro.obs import MemorySink, telemetry


def default_workers() -> int:
    """Worker count: REPRO_WORKERS env var, else CPU count − 1 (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


def _run_with_telemetry(
    fn: Callable,
    args: tuple,
    trace_id: str | None,
    parent_span_id: str | None,
):
    """Worker-side wrapper: record the arm's telemetry and ship it back.

    The worker joins the parent's trace (same ``trace_id``; root spans
    parented under the span enclosing the ``run_parallel`` call) and
    buffers its events in memory so the parent can fold them into its
    own sink.
    """
    telemetry.reset()
    sink = MemorySink()
    telemetry.enable(sink, trace_id=trace_id, parent_span_id=parent_span_id)
    try:
        result = fn(*args)
    finally:
        report = telemetry.report()
        records = list(sink.records)
        telemetry.disable()
    return result, report, records


def run_parallel(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    n_workers: int | None = None,
) -> list:
    """``[fn(*args) for args in args_list]``, fanned over processes.

    Results come back in input order.  ``n_workers=1`` runs inline
    (no pool), which is also the fallback when only one arm exists.
    If an arm raises, pending arms are cancelled and the earliest
    failure is re-raised (fail-fast).
    """
    args_list = list(args_list)
    if n_workers is None:
        n_workers = default_workers()
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1 or len(args_list) <= 1:
        # Inline arms record straight into the parent registry.
        return [fn(*args) for args in args_list]

    collect_telemetry = telemetry.enabled
    with ProcessPoolExecutor(max_workers=min(n_workers, len(args_list))) as pool:
        if collect_telemetry:
            trace_id = telemetry.trace_id
            parent_span_id = telemetry.current_span_id()
            futures = [
                pool.submit(_run_with_telemetry, fn, args, trace_id, parent_span_id)
                for args in args_list
            ]
        else:
            futures = [pool.submit(fn, *args) for args in args_list]
        _, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        failed = any(
            f.done() and not f.cancelled() and f.exception() is not None
            for f in futures
        )
        if failed:
            for f in not_done:
                f.cancel()
            # let in-flight arms settle so the earliest-submitted failure
            # (not merely the first to finish) is the one re-raised
            wait(futures)
            raise next(
                f.exception()
                for f in futures
                if not f.cancelled() and f.exception() is not None
            )
        results = [f.result() for f in futures]

    if collect_telemetry:
        plain = []
        for result, report, records in results:
            telemetry.merge_report(report)
            for record in records:
                telemetry.emit_raw(record)
            plain.append(result)
        return plain
    return results
