"""Parallel experiment execution over seeds/settings.

Figure sweeps repeat independent (setting, seed) arms; this helper
fans them out over processes (each arm is CPU-bound numpy/linalg, so
processes — not threads — buy wall-clock).  Functions and argument
tuples must be picklable (top-level functions, plain data).

The sequential path is kept for ``n_workers=1`` so tests and small runs
avoid process overhead, and failures in any arm propagate with the
original traceback.  In the pool path the first failing arm wins:
outstanding arms are cancelled instead of being run to completion.

Telemetry crosses the process boundary by value: when the parent's
registry is enabled, each worker runs its arm under a fresh registry —
*inheriting the parent's trace ID and linking its root spans under the
parent's current span* — and ships its :meth:`~repro.obs.Telemetry.
report` dict plus buffered event records back with the result.  The
parent folds stats in with :meth:`~repro.obs.Telemetry.merge_report`
and re-emits the worker events verbatim into its own sink, so a merged
JSONL log reconstructs one trace tree across all processes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    wait,
)
from typing import Callable, Sequence

from repro.obs import MemorySink, telemetry
from repro.resilience.retry import ArmAbandonedError, RetryPolicy


def default_workers() -> int:
    """Worker count: REPRO_WORKERS env var, else CPU count − 1 (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


def _run_with_telemetry(
    fn: Callable,
    args: tuple,
    trace_id: str | None,
    parent_span_id: str | None,
):
    """Worker-side wrapper: record the arm's telemetry and ship it back.

    The worker joins the parent's trace (same ``trace_id``; root spans
    parented under the span enclosing the ``run_parallel`` call) and
    buffers its events in memory so the parent can fold them into its
    own sink.
    """
    telemetry.reset()
    sink = MemorySink()
    telemetry.enable(sink, trace_id=trace_id, parent_span_id=parent_span_id)
    try:
        result = fn(*args)
    finally:
        report = telemetry.report()
        records = list(sink.records)
        telemetry.disable()
    return result, report, records


def _retry_inline(fn: Callable, args_list: list, policy: RetryPolicy) -> list:
    """Sequential arms with bounded retry (no per-attempt timeout)."""
    results = []
    for idx, args in enumerate(args_list):
        last: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                time.sleep(policy.delay_before(attempt))
                telemetry.counter("retry.attempts")
                telemetry.event(
                    "retry.arm", arm=idx, attempt=attempt, error=repr(last)
                )
            try:
                results.append(fn(*args))
            except Exception as exc:  # noqa: BLE001 — retried, then re-raised
                last = exc
                continue
            if attempt > 1:
                telemetry.counter("retry.succeeded_after_retry")
            break
        else:
            telemetry.counter("retry.abandoned")
            telemetry.event(
                "retry.abandon", arm=idx, attempts=policy.max_attempts,
                error=repr(last),
            )
            raise ArmAbandonedError(idx, policy.max_attempts, last)
    return results


def _retry_pool(
    fn: Callable,
    args_list: list,
    n_workers: int,
    policy: RetryPolicy,
) -> list:
    """Pool arms with bounded retry, backoff, and best-effort timeouts.

    A timed-out attempt's worker cannot be interrupted — its future is
    abandoned (result discarded, slot freed when the worker finishes)
    and the attempt reruns.  Backoff never blocks other arms: retries
    sit in a ready queue until their resubmission time.
    """
    collect = telemetry.enabled
    trace_id = telemetry.trace_id if collect else None
    parent_span_id = telemetry.current_span_id() if collect else None
    n = len(args_list)
    results: list = [None] * n
    stale = 0

    # With a timeout, abandoned-but-still-running workers keep their
    # slot until they finish; keep the full worker budget as headroom
    # so a rerun is not queued behind the very attempt it replaces.
    pool = ProcessPoolExecutor(
        max_workers=n_workers if policy.timeout is not None else min(n_workers, n)
    )

    def submit(idx: int):
        if collect:
            return pool.submit(
                _run_with_telemetry, fn, args_list[idx], trace_id, parent_span_id
            )
        return pool.submit(fn, *args_list[idx])

    def abandon(idx: int, attempts: int, last: BaseException | None):
        telemetry.counter("retry.abandoned")
        telemetry.event(
            "retry.abandon", arm=idx, attempts=attempts, error=repr(last)
        )
        pool.shutdown(wait=False, cancel_futures=True)
        raise ArmAbandonedError(idx, attempts, last)

    pending = {}  # future -> (arm_idx, attempt, start_time)
    ready: list[tuple[float, int, int, BaseException | None]] = []
    try:
        for i in range(n):
            pending[submit(i)] = (i, 1, time.monotonic())
        while pending or ready:
            now = time.monotonic()
            for entry in [e for e in ready if e[0] <= now]:
                ready.remove(entry)
                _, idx, attempt, last = entry
                telemetry.counter("retry.attempts")
                telemetry.event(
                    "retry.arm", arm=idx, attempt=attempt, error=repr(last)
                )
                pending[submit(idx)] = (idx, attempt, time.monotonic())
            if not pending:
                time.sleep(max(0.0, min(e[0] for e in ready) - time.monotonic()))
                continue
            wait_timeout = (
                0.05 if (ready or policy.timeout is not None) else None
            )
            done, _ = wait(
                list(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for f in done:
                idx, attempt, _started = pending.pop(f)
                exc = f.exception()
                if exc is None:
                    results[idx] = f.result()
                    if attempt > 1:
                        telemetry.counter("retry.succeeded_after_retry")
                elif attempt >= policy.max_attempts:
                    abandon(idx, attempt, exc)
                else:
                    ready.append(
                        (now + policy.delay_before(attempt + 1), idx,
                         attempt + 1, exc)
                    )
            if policy.timeout is not None:
                for f, (idx, attempt, started) in list(pending.items()):
                    if now - started <= policy.timeout:
                        continue
                    pending.pop(f)
                    f.cancel()  # no-op if running; the result is discarded
                    stale += 1
                    telemetry.counter("retry.timeouts")
                    telemetry.event(
                        "retry.timeout", arm=idx, attempt=attempt,
                        timeout_s=policy.timeout,
                    )
                    if attempt >= policy.max_attempts:
                        abandon(idx, attempt, None)
                    ready.append(
                        (now + policy.delay_before(attempt + 1), idx,
                         attempt + 1, None)
                    )
    finally:
        # Timed-out workers may still be running; don't block on them.
        pool.shutdown(wait=stale == 0, cancel_futures=True)

    if collect:
        plain = []
        for result, report, records in results:
            telemetry.merge_report(report)
            for record in records:
                telemetry.emit_raw(record)
            plain.append(result)
        return plain
    return results


def run_parallel(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    n_workers: int | None = None,
    retry: RetryPolicy | None = None,
) -> list:
    """``[fn(*args) for args in args_list]``, fanned over processes.

    Results come back in input order.  ``n_workers=1`` runs inline
    (no pool), which is also the fallback when only one arm exists.
    If an arm raises, pending arms are cancelled and the earliest
    failure is re-raised (fail-fast).

    With a :class:`~repro.resilience.retry.RetryPolicy`, a failed (or,
    in the pool path, timed-out) arm reruns with exponential backoff
    up to ``retry.max_attempts`` total attempts before the run fails
    with :class:`~repro.resilience.retry.ArmAbandonedError`; retries
    are visible as ``retry.*`` counters and events.
    """
    args_list = list(args_list)
    if n_workers is None:
        n_workers = default_workers()
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1 or len(args_list) <= 1:
        # Inline arms record straight into the parent registry.
        if retry is not None:
            return _retry_inline(fn, args_list, retry)
        return [fn(*args) for args in args_list]
    if retry is not None:
        return _retry_pool(fn, args_list, n_workers, retry)

    collect_telemetry = telemetry.enabled
    with ProcessPoolExecutor(max_workers=min(n_workers, len(args_list))) as pool:
        if collect_telemetry:
            trace_id = telemetry.trace_id
            parent_span_id = telemetry.current_span_id()
            futures = [
                pool.submit(_run_with_telemetry, fn, args, trace_id, parent_span_id)
                for args in args_list
            ]
        else:
            futures = [pool.submit(fn, *args) for args in args_list]
        _, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        failed = any(
            f.done() and not f.cancelled() and f.exception() is not None
            for f in futures
        )
        if failed:
            for f in not_done:
                f.cancel()
            # let in-flight arms settle so the earliest-submitted failure
            # (not merely the first to finish) is the one re-raised
            wait(futures)
            raise next(
                f.exception()
                for f in futures
                if not f.cancelled() and f.exception() is not None
            )
        results = [f.result() for f in futures]

    if collect_telemetry:
        plain = []
        for result, report, records in results:
            telemetry.merge_report(report)
            for record in records:
                telemetry.emit_raw(record)
            plain.append(result)
        return plain
    return results
