"""Parallel experiment execution over seeds/settings.

Figure sweeps repeat independent (setting, seed) arms; this helper
fans them out over processes (each arm is CPU-bound numpy/linalg, so
processes — not threads — buy wall-clock).  Functions and argument
tuples must be picklable (top-level functions, plain data).

The sequential path is kept for ``n_workers=1`` so tests and small runs
avoid process overhead, and failures in any arm propagate with the
original traceback.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence


def default_workers() -> int:
    """Worker count: REPRO_WORKERS env var, else CPU count − 1 (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


def run_parallel(
    fn: Callable,
    args_list: Sequence[tuple],
    *,
    n_workers: int | None = None,
) -> list:
    """``[fn(*args) for args in args_list]``, fanned over processes.

    Results come back in input order.  ``n_workers=1`` runs inline
    (no pool), which is also the fallback when only one arm exists.
    """
    args_list = list(args_list)
    if n_workers is None:
        n_workers = default_workers()
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1 or len(args_list) <= 1:
        return [fn(*args) for args in args_list]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(args_list))) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [f.result() for f in futures]
