"""Experiment harness: one entry point per paper figure.

``repro.bench.experiments`` regenerates every evaluation artifact of
§5 (Figures 2–10) as structured data; ``repro.bench.reporting``
renders the same rows/series the paper plots as ASCII tables.  The
pytest-benchmark files under ``benchmarks/`` call these entry points.
"""

from repro.bench.harness import MethodResult, run_method, make_problem
from repro.bench.experiments import (
    fig2_profiling_surfaces,
    fig3a_contention,
    fig3b_pareto,
    fig4_jitter,
    fig6_preference_sweep,
    fig7_scaling,
    fig8_outcome_r2,
    fig9_preference_accuracy,
    fig10a_weight_sensitivity,
    fig10b_threshold_sensitivity,
)
from repro.bench.reporting import (
    experiment_record,
    format_heatmap,
    format_series,
    format_table,
)
from repro.bench.parallel import run_parallel, default_workers
from repro.bench.io import save_results, load_results
from repro.bench.hotpath import (
    BENCHMARKS,
    check_result,
    run_benchmark,
    run_benchmarks,
    save_bench,
)

__all__ = [
    "MethodResult",
    "run_method",
    "make_problem",
    "fig2_profiling_surfaces",
    "fig3a_contention",
    "fig3b_pareto",
    "fig4_jitter",
    "fig6_preference_sweep",
    "fig7_scaling",
    "fig8_outcome_r2",
    "fig9_preference_accuracy",
    "fig10a_weight_sensitivity",
    "fig10b_threshold_sensitivity",
    "experiment_record",
    "format_table",
    "format_series",
    "run_parallel",
    "default_workers",
    "format_heatmap",
    "save_results",
    "load_results",
    "BENCHMARKS",
    "check_result",
    "run_benchmark",
    "run_benchmarks",
    "save_bench",
]
