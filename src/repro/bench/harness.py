"""Shared experiment plumbing: problems, method dispatch, seeding.

Every experiment builds problems and runs methods through these
helpers so seeds, bandwidth draws (§5.2's {5..30} Mbps set), and PaMO
budget knobs stay consistent across figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines import make_scheduler
from repro.core import EVAProblem, make_preference
from repro.obs import telemetry
from repro.pref.decision_maker import DecisionMaker, LinearL1Preference
from repro.utils import as_generator
from repro.utils.rng import RngLike

#: §5.2: "We randomly select bandwidth values for servers from
#: (5, 10, 15, 20, 25, 30) Mbps to simulate diverse real-world scenarios."
BANDWIDTH_CHOICES = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)

#: Reduced-size PaMO budgets so full figure sweeps run in CI time.
#: 3 seed pairs + 15 EUBO queries = 18 comparisons — the count at which
#: Fig. 9 shows the preference model crossing 90% pairwise accuracy.
FAST_PAMO_KWARGS = dict(
    n_profile=40,
    n_outcome_space=24,
    n_init_comparisons=3,
    n_pref_queries=15,
    batch_size=3,
    n_iterations=6,
    n_pool=16,
    n_mc_samples=24,
)


@dataclass
class MethodResult:
    """One (method, setting, seed) evaluation record."""

    method: str
    true_benefit: float
    outcome: np.ndarray
    normalized: float = float("nan")
    extras: dict = field(default_factory=dict)


def make_problem(
    n_streams: int,
    n_servers: int,
    *,
    rng: RngLike = 0,
    fixed_bandwidth: float | None = None,
) -> EVAProblem:
    """Problem instance with §5.2 bandwidth draws (or a fixed value)."""
    gen = as_generator(rng)
    if fixed_bandwidth is not None:
        bw = np.full(n_servers, float(fixed_bandwidth))
    else:
        bw = gen.choice(BANDWIDTH_CHOICES, size=n_servers)
    return EVAProblem(n_streams=n_streams, bandwidths_mbps=bw)


def run_method(
    name: str,
    problem: EVAProblem,
    preference: LinearL1Preference,
    *,
    seed: int = 0,
    pamo_kwargs: dict | None = None,
    jcab_weights: tuple[float, float] = (1.0, 1.0),
    fact_weights: tuple[float, float] = (1.0, 1.0),
    dm_noise: float = 0.0,
    measured: bool = True,
    horizon: float = 4.0,
) -> MethodResult:
    """Run one scheduler and score its decision with the TRUE preference.

    ``name`` ∈ {'JCAB', 'FACT', 'PaMO', 'PaMO+'} (plus 'PaMO_qEI' /
    'PaMO_qUCB' / 'PaMO_qSR' acquisition variants).  Baseline weight
    pairs follow the paper's "the weights of the corresponding metrics
    ... are adjusted accordingly".

    With ``measured=True`` (default) the final decision of every method
    is re-run on the discrete-event testbed: PaMO's Algorithm-1
    schedule runs split + staggered (zero jitter by construction),
    while JCAB/FACT run their own assignments as-is — so any queueing
    delay their Const2-violating placements cause shows up in the
    latency objective, exactly as on the paper's real testbed.

    Construction goes through :func:`repro.baselines.make_scheduler`;
    with telemetry enabled, the arm's own counter/span deltas land in
    ``extras['telemetry']`` so parallel sweeps can merge them.
    """
    kw = dict(FAST_PAMO_KWARGS)
    if pamo_kwargs:
        extra = dict(pamo_kwargs)
        if "max_iters" in extra and "n_iterations" not in extra:
            extra["n_iterations"] = extra.pop("max_iters")
        kw.update(extra)

    key = name.lower()
    if key == "jcab":
        method_kw: dict = dict(w_acc=jcab_weights[0], w_eng=jcab_weights[1])
    elif key == "fact":
        method_kw = dict(w_ltc=fact_weights[0], w_acc=fact_weights[1])
    elif key.startswith("pamo"):
        method_kw = dict(preference=preference, dm_noise=dm_noise, **kw)
    else:
        # weighted / random / any future registry entry: no PaMO budgets
        method_kw = dict(preference=preference)

    before = telemetry.snapshot() if telemetry.enabled else None
    with telemetry.span(f"bench.run_method.{name}"):
        out = make_scheduler(key, problem, rng=seed, **method_kw).optimize()

    d = out.decision
    outcome = d.outcome
    if measured:
        if name in ("JCAB", "FACT"):
            outcome = problem.evaluate_decision(
                d.resolutions, d.fps, d.assignment, measured=True, horizon=horizon
            )
        else:
            outcome = problem.evaluate_measured(d.resolutions, d.fps, horizon=horizon)
    extras = {
        "n_iterations": out.n_iterations,
        "n_dm_queries": out.n_dm_queries,
        "resolutions": d.resolutions,
        "fps": d.fps,
    }
    if before is not None:
        extras["telemetry"] = telemetry.report(since=before)
    return MethodResult(
        method=name,
        true_benefit=float(preference.value(outcome)),
        outcome=outcome,
        extras=extras,
    )


def normalize_against_plus(
    results: dict[str, MethodResult], preference: LinearL1Preference
) -> dict[str, MethodResult]:
    """Apply footnote-2 normalization using PaMO+ as max, −½Σw as min."""
    from repro.core.benefit import normalized_benefit

    if "PaMO+" not in results:
        raise ValueError("normalization requires a PaMO+ run")
    u_max = max(r.true_benefit for r in results.values())
    # By definition PaMO+ should be the max; if another method edged it
    # out on this seed, use the observed max so everything stays <= 1.
    u_min = preference.worst_value
    for r in results.values():
        r.normalized = float(normalized_benefit(r.true_benefit, u_max, u_min))
    return results
