"""One entry point per paper figure (§5, Figures 2–10).

Each function returns plain dict/array data shaped like the paper's
plot series, so benchmarks and examples can both print and check them.
All functions accept size knobs; defaults are scaled to finish in CI
time while preserving the paper's qualitative shapes (the full-size
parameters are noted per function).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines import make_scheduler, pareto_front
from repro.baselines.search import orient_minimize
from repro.bench.harness import (
    FAST_PAMO_KWARGS,
    MethodResult,
    make_problem,
    normalize_against_plus,
    run_method,
)
from repro.core import EVAProblem, make_preference
from repro.core.benefit import benefit_ratio, normalized_benefit
from repro.outcomes import OutcomeSurrogateBank, profile_grid
from repro.outcomes.functions import OBJECTIVES
from repro.outcomes.profiler import profile_configuration, samples_to_arrays
from repro.pref import DecisionMaker, PreferenceLearner
from repro.pref.metrics import pairwise_accuracy, sample_test_pairs
from repro.sched import PeriodicStream, group_streams, resolve_assignment, stagger_offsets
from repro.sim import EdgeCluster, StreamSpec
from repro.utils import as_generator, spawn
from repro.utils.rng import RngLike
from repro.video import default_library

# ---------------------------------------------------------------------------
# Figure 2 — outcome surfaces of two clips
# ---------------------------------------------------------------------------


def fig2_profiling_surfaces(
    *,
    resolutions: Sequence[float] = (300, 600, 900, 1200, 1600, 2000),
    fps_values: Sequence[float] = (1, 5, 10, 15, 20, 25, 30),
    clip_names: Sequence[str] = ("mot16-02-like", "mot16-05-like"),
    n_frames: int = 45,
    rng: RngLike = 0,
) -> dict:
    """Measured (resolution × fps) surfaces per clip (100 Mbps link).

    Returns {clip: {metric: 2-D array (len(res), len(fps))}} for the
    five metrics of Fig. 2.  Paper: full MOT16 clips, denser grids.
    """
    lib = default_library(n_frames=n_frames, rng=rng)
    gens = spawn(rng, len(clip_names))
    out: dict = {"resolutions": list(resolutions), "fps_values": list(fps_values)}
    metrics = ("accuracy", "latency", "network_mbps", "computation_tflops", "power_watts")
    for name, g in zip(clip_names, gens):
        samples = profile_grid(
            lib[name], resolutions, fps_values, bandwidth_mbps=100.0, rng=g
        )
        surfaces = {m: np.empty((len(resolutions), len(fps_values))) for m in metrics}
        k = 0
        for i in range(len(resolutions)):
            for j in range(len(fps_values)):
                s = samples[k]
                k += 1
                for m in metrics:
                    surfaces[m][i, j] = getattr(s, m)
        out[name] = surfaces
    return out


# ---------------------------------------------------------------------------
# Figure 3 — contention latency accumulation + Pareto solutions
# ---------------------------------------------------------------------------


def fig3a_contention(*, horizon: float = 3.0) -> dict:
    """Fig. 3(a): two streams on one overloaded server.

    Video 1 at 5 fps, Video 2 at 10 fps, each frame taking 0.1 s — the
    exact setup of the figure (Video 2's own period equals its
    processing time, so any sharing overloads the node).  Returns the
    per-frame queueing delays showing accumulation.
    """
    specs = [
        StreamSpec(0, fps=5.0, processing_time=0.1, bits_per_frame=1e-3),
        StreamSpec(1, fps=10.0, processing_time=0.1, bits_per_frame=1e-3),
    ]
    rep = EdgeCluster([1e6]).run(specs, [0, 0], horizon)
    return {
        "video1_delays": rep.streams[0].queueing_delays,
        "video2_delays": rep.streams[1].queueing_delays,
        "video1_latencies": rep.streams[0].latencies,
        "video2_latencies": rep.streams[1].latencies,
        "max_jitter": rep.max_jitter,
    }


def fig3b_pareto(*, n_decisions: int = 40, rng: RngLike = 0) -> dict:
    """Fig. 3(b): Pareto-optimal outcome vectors of random decisions.

    Returns the normalized outcome matrix, the Pareto indices, and
    three mutually non-dominating representatives (like the figure's
    Solutions 1–3).
    """
    problem = make_problem(4, 3, rng=rng, fixed_bandwidth=20.0)
    gen = as_generator(rng)
    ys = np.stack(
        [problem.evaluate(*problem.sample_decision(gen)) for _ in range(n_decisions)]
    )
    oriented = orient_minimize(ys)
    front = pareto_front(oriented)
    lo = ys.min(axis=0)
    hi = ys.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normalized = (ys - lo) / span
    picks = front[:: max(1, len(front) // 3)][:3]
    return {
        "outcomes": ys,
        "normalized": normalized,
        "pareto_indices": front,
        "representatives": picks,
    }


# ---------------------------------------------------------------------------
# Figure 4 — delay jitter: bad co-scheduling vs Algorithm 1
# ---------------------------------------------------------------------------


def fig4_jitter(*, horizon: float = 12.0) -> dict:
    """Fig. 4: jitter from poor grouping vs zero jitter from Algorithm 1.

    Three streams with periods (0.3 s, 0.5 s, 0.6 s).  Naive packing
    puts the non-harmonic pair (1, 2) together (jitter); Algorithm 1
    groups the harmonic pair (1, 3) and isolates stream 2 (zero jitter).
    """
    streams = [
        PeriodicStream(0, fps=1 / 0.3, resolution=960, processing_time=0.12, bits_per_frame=1.0),
        PeriodicStream(1, fps=2.0, resolution=960, processing_time=0.12, bits_per_frame=1.0),
        PeriodicStream(2, fps=1 / 0.6, resolution=960, processing_time=0.12, bits_per_frame=1.0),
    ]

    def run(assignment, stagger_groups: bool) -> float:
        offsets = {}
        if stagger_groups:
            groups: dict[int, list[PeriodicStream]] = {}
            for st, q in zip(streams, assignment):
                groups.setdefault(q, []).append(st)
            for grp in groups.values():
                for st, off in zip(grp, stagger_offsets(grp)):
                    offsets[st.stream_id] = off
        specs = [
            StreamSpec(
                st.stream_id,
                fps=st.fps,
                processing_time=st.processing_time,
                bits_per_frame=1e-3,
                offset=offsets.get(st.stream_id, 0.0),
            )
            for st in streams
        ]
        rep = EdgeCluster([1e6, 1e6]).run(specs, assignment, horizon)
        return rep.max_jitter

    # Naive: first-fit by load puts streams 0 & 1 together (periods 0.3 / 0.5).
    bad_jitter = run([0, 0, 1], stagger_groups=False)
    # Algorithm 1 grouping on the same 2 servers.
    grouping = group_streams(streams, 2)
    assignment = resolve_assignment(grouping, [1e6, 1e6], streams)
    good_jitter = run(assignment, stagger_groups=True)
    return {
        "bad_assignment_jitter": bad_jitter,
        "algorithm1_jitter": good_jitter,
        "algorithm1_assignment": assignment,
    }


# ---------------------------------------------------------------------------
# Figure 6 — benefit across preference functions
# ---------------------------------------------------------------------------


def fig6_preference_sweep(
    *,
    weight_values: Sequence[float] = (0.2, 0.4, 1.6, 3.2),
    objectives: Sequence[str] = OBJECTIVES,
    n_streams: int = 8,
    n_servers: int = 5,
    seeds: Sequence[int] = (0,),
    methods: Sequence[str] = ("JCAB", "FACT", "PaMO", "PaMO+"),
    pamo_kwargs: dict | None = None,
) -> list[dict]:
    """Fig. 6: normalized benefit + per-objective ratio per weighting.

    For each objective o and weight w, set w_o = w (others 1), rebuild
    the true preference, and run all methods.  Paper: 3 repetitions;
    ``seeds`` controls that here.
    """
    records = []
    for obj_idx, obj in enumerate(objectives):
        for w in weight_values:
            weights = np.ones(len(OBJECTIVES))
            weights[obj_idx] = w
            per_seed: dict[str, list[MethodResult]] = {m: [] for m in methods}
            for seed in seeds:
                problem = make_problem(n_streams, n_servers, rng=seed)
                pref = make_preference(problem, weights=weights)
                results = {
                    m: run_method(
                        m,
                        problem,
                        pref,
                        seed=seed,
                        pamo_kwargs=pamo_kwargs,
                        jcab_weights=(weights[1], weights[4]),
                        fact_weights=(weights[0], weights[1]),
                    )
                    for m in methods
                }
                normalize_against_plus(results, pref)
                for m in methods:
                    per_seed[m].append(results[m])
            rec = {
                "objective": obj,
                "weight": w,
                "normalized": {
                    m: float(np.mean([r.normalized for r in per_seed[m]]))
                    for m in methods
                },
                "true_benefit": {
                    m: float(np.mean([r.true_benefit for r in per_seed[m]]))
                    for m in methods
                },
            }
            # Benefit-ratio shades (last seed's PaMO outcome, as in the plot).
            problem = make_problem(n_streams, n_servers, rng=seeds[-1])
            pref = make_preference(problem, weights=weights)
            rec["benefit_ratio"] = {
                m: benefit_ratio(pref, per_seed[m][-1].outcome).tolist()
                for m in methods
            }
            records.append(rec)
    return records


# ---------------------------------------------------------------------------
# Figure 7 — scaling with server / video count
# ---------------------------------------------------------------------------


def fig7_scaling(
    *,
    node_counts: Sequence[int] = (5, 6, 7, 8, 9),
    video_counts: Sequence[int] = (7, 8, 9, 10, 11),
    fixed_videos: int = 10,
    fixed_nodes: int = 5,
    seeds: Sequence[int] = (0,),
    methods: Sequence[str] = ("JCAB", "FACT", "PaMO", "PaMO+"),
    pamo_kwargs: dict | None = None,
) -> dict:
    """Fig. 7: normalized benefit vs #servers and vs #videos (w = 1)."""

    def sweep(settings, fixed, vary_nodes: bool):
        rows = []
        for val in settings:
            n_vid = fixed if vary_nodes else val
            n_srv = val if vary_nodes else fixed
            accum = {m: [] for m in methods}
            for seed in seeds:
                problem = make_problem(n_vid, n_srv, rng=seed)
                pref = make_preference(problem)
                results = {
                    m: run_method(m, problem, pref, seed=seed, pamo_kwargs=pamo_kwargs)
                    for m in methods
                }
                normalize_against_plus(results, pref)
                for m in methods:
                    accum[m].append(results[m].normalized)
            rows.append(
                {
                    "setting": val,
                    "normalized": {m: float(np.mean(accum[m])) for m in methods},
                }
            )
        return rows

    return {
        "by_nodes": sweep(node_counts, fixed_videos, vary_nodes=True),
        "by_videos": sweep(video_counts, fixed_nodes, vary_nodes=False),
    }


# ---------------------------------------------------------------------------
# Figure 8 — outcome-model R² vs training-set size
# ---------------------------------------------------------------------------


def fig8_outcome_r2(
    *,
    train_sizes: Sequence[int] = (200, 300, 400, 500, 600),
    n_test: int = 20,
    n_reps: int = 3,
    n_frames: int = 36,
    measurement_noise: float = 0.3,
    rng: RngLike = 0,
) -> dict:
    """Fig. 8: per-objective R² of the GP bank vs training-set size.

    Training samples come from the *real* profiling pipeline (the
    detector runs; mAP is measured), plus relative measurement noise on
    the resource readings (a physical testbed's timers/power meters are
    noisy under thermal/contention variation).  R² is computed against
    noise-free test measurements, so it grows toward 1 as the GP
    averages the noise away — the paper's Fig. 8 shape.  Paper: 10
    repetitions; default here is 3.
    """
    lib = default_library(n_frames=n_frames, rng=rng)
    clip = lib["mot16-09-like"]
    gen = as_generator(rng)
    out = {"train_sizes": list(train_sizes), "r2": {m: [] for m in OBJECTIVES}}
    res_range = (300.0, 2000.0)
    fps_range = (1.0, 30.0)

    def sample_points(n, g):
        r = g.uniform(*res_range, n)
        s = g.uniform(*fps_range, n)
        return np.column_stack([r, s])

    def measure(pts, g, noise):
        samples = [
            profile_configuration(clip, r, s, measurement_noise=noise, rng=g)
            for r, s in pts
        ]
        return samples_to_arrays(samples)

    for size in train_sizes:
        per_rep = {m: [] for m in OBJECTIVES}
        for _ in range(n_reps):
            g = as_generator(int(gen.integers(0, 2**62)))
            x_tr, y_tr = measure(sample_points(size, g), g, measurement_noise)
            x_te, y_te = measure(sample_points(n_test, g), g, 0.0)
            bank = OutcomeSurrogateBank(
                resolution_bounds=res_range, fps_bounds=fps_range
            ).fit(x_tr, y_tr, rng=g)
            r2 = bank.r2_per_objective(x_te, y_te)
            for m in OBJECTIVES:
                per_rep[m].append(r2[m])
        for m in OBJECTIVES:
            out["r2"][m].append(float(np.mean(per_rep[m])))
    return out


# ---------------------------------------------------------------------------
# Figure 9 — preference-model accuracy vs #comparison pairs
# ---------------------------------------------------------------------------


def fig9_preference_accuracy(
    *,
    pair_counts: Sequence[int] = (3, 6, 9, 18, 27),
    n_test_pairs: int = 500,
    n_reps: int = 3,
    n_outcome_space: int = 40,
    rng: RngLike = 0,
    eubo: bool = True,
) -> dict:
    """Fig. 9: pairwise prediction accuracy vs training comparisons.

    ``eubo=False`` ablates the EUBO pair selection with random pairs.
    Paper: 10 repetitions over 500-sample test sets.
    """
    gen = as_generator(rng)
    out = {"pair_counts": list(pair_counts), "accuracy": [], "accuracy_std": []}
    for v in pair_counts:
        accs = []
        for _ in range(n_reps):
            seed = int(gen.integers(0, 2**62))
            g = as_generator(seed)
            problem = make_problem(6, 4, rng=g)
            pref = make_preference(
                problem, weights=g.uniform(0.5, 2.0, len(OBJECTIVES))
            )
            ys = np.stack(
                [
                    problem.evaluate(*problem.sample_decision(g))
                    for _ in range(n_outcome_space)
                ]
            )
            dm = DecisionMaker(pref, rng=g)
            learner = PreferenceLearner(ys, decision_maker=dm, rng=g)
            n_init = min(3, v)
            learner.initialize(n_init)
            if eubo:
                learner.run(v - n_init)
            else:
                for _ in range(v - n_init):
                    i, j = g.choice(len(ys), 2, replace=False)
                    learner._ask(int(i), int(j))
                learner.model.fit(learner._data)
            pairs = sample_test_pairs(ys, n_test_pairs, rng=g)
            accs.append(pairwise_accuracy(learner.utility, pref.value, pairs))
        out["accuracy"].append(float(np.mean(accs)))
        out["accuracy_std"].append(float(np.std(accs)))
    return out


# ---------------------------------------------------------------------------
# Figure 10 — sensitivity: baseline weights & termination threshold
# ---------------------------------------------------------------------------


def fig10a_weight_sensitivity(
    *,
    weight_values: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 0.8, 1.0, 2.0, 5.0),
    configs: Sequence[tuple[int, int]] = ((5, 8), (6, 10)),  # (servers, videos)
    seeds: Sequence[int] = (0,),
    pamo_kwargs: dict | None = None,
) -> list[dict]:
    """Fig. 10(a): JCAB/FACT benefit vs their internal weight knob.

    One weight sweeps while the other stays 1; PaMO and PaMO+ are
    weight-independent (run once per config) and provide the ceiling
    the baselines never reach.
    """
    records = []
    for n_srv, n_vid in configs:
        tag = f"n{n_srv}v{n_vid}"
        for seed in seeds:
            problem = make_problem(n_vid, n_srv, rng=seed)
            pref = make_preference(problem)
            plus = run_method("PaMO+", problem, pref, seed=seed, pamo_kwargs=pamo_kwargs)
            pamo = run_method("PaMO", problem, pref, seed=seed, pamo_kwargs=pamo_kwargs)
            u_max = max(plus.true_benefit, pamo.true_benefit)
            u_min = pref.worst_value
            for w in weight_values:
                jcab = make_scheduler(
                    "jcab", problem, rng=seed, w_acc=1.0, w_eng=w
                ).optimize()
                fact = make_scheduler(
                    "fact", problem, w_ltc=w, w_acc=1.0
                ).optimize()
                records.append(
                    {
                        "config": tag,
                        "weight": w,
                        "seed": seed,
                        "JCAB": float(
                            normalized_benefit(
                                pref.value(jcab.decision.outcome), u_max, u_min
                            )
                        ),
                        "FACT": float(
                            normalized_benefit(
                                pref.value(fact.decision.outcome), u_max, u_min
                            )
                        ),
                        "PaMO": float(
                            normalized_benefit(pamo.true_benefit, u_max, u_min)
                        ),
                        "PaMO+": float(
                            normalized_benefit(plus.true_benefit, u_max, u_min)
                        ),
                    }
                )
    return records


def fig10b_threshold_sensitivity(
    *,
    deltas: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.1, 0.2),
    configs: Sequence[tuple[int, int]] = ((5, 8), (6, 10)),
    seeds: Sequence[int] = (0,),
    pamo_kwargs: dict | None = None,
) -> list[dict]:
    """Fig. 10(b): benefit vs termination threshold δ for all methods."""
    records = []
    kw = dict(FAST_PAMO_KWARGS)
    if pamo_kwargs:
        extra = dict(pamo_kwargs)
        if "max_iters" in extra and "n_iterations" not in extra:
            extra["n_iterations"] = extra.pop("max_iters")
        kw.update(extra)
    for n_srv, n_vid in configs:
        tag = f"n{n_srv}v{n_vid}"
        for seed in seeds:
            problem = make_problem(n_vid, n_srv, rng=seed)
            pref = make_preference(problem)
            u_min = pref.worst_value
            # u_max from a reference PaMO+ run at the tightest threshold
            ref = make_scheduler(
                "pamo+", problem, preference=pref, rng=seed,
                **{**kw, "delta": min(deltas)},
            ).optimize()
            u_max = pref.value(ref.decision.outcome)
            for delta in deltas:
                row = {"config": tag, "delta": delta, "seed": seed}
                pamo = make_scheduler(
                    "pamo", problem, preference=pref, rng=seed,
                    **{**kw, "delta": delta},
                ).optimize()
                row["PaMO"] = float(
                    normalized_benefit(
                        pref.value(pamo.decision.outcome), u_max, u_min
                    )
                )
                plus = make_scheduler(
                    "pamo+", problem, preference=pref, rng=seed,
                    **{**kw, "delta": delta},
                ).optimize()
                row["PaMO+"] = float(
                    normalized_benefit(
                        pref.value(plus.decision.outcome), u_max, u_min
                    )
                )
                jcab = make_scheduler(
                    "jcab", problem, rng=seed, tol=delta
                ).optimize()
                row["JCAB"] = float(
                    normalized_benefit(
                        pref.value(jcab.decision.outcome), u_max, u_min
                    )
                )
                fact = make_scheduler("fact", problem, tol=delta).optimize()
                row["FACT"] = float(
                    normalized_benefit(
                        pref.value(fact.decision.outcome), u_max, u_min
                    )
                )
                records.append(row)
    return records
