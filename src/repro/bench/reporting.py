"""ASCII rendering and packaging of experiment results.

Tables/series/heatmaps render the paper's rows; ``experiment_record``
packages a figure's data for ``--output`` JSON, embedding the
process-wide telemetry summary when recording is on.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.obs import telemetry


def experiment_record(data: Any) -> Any:
    """Package experiment ``data`` for persistence.

    When the telemetry registry is enabled, the accumulated
    :meth:`~repro.obs.Telemetry.report` summary is embedded under a
    ``"_telemetry"`` key — alongside the figure's own keys for dicts
    (so existing top-level access keeps working), or in a
    ``{"data": ..., "_telemetry": ...}`` wrapper for lists.  With
    telemetry disabled, ``data`` is returned unchanged.
    """
    if not telemetry.enabled:
        return data
    report = telemetry.report()
    if isinstance(data, dict):
        record = dict(data)
        record["_telemetry"] = report
        return record
    return {"data": data, "_telemetry": report}


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Monospace table with auto-sized columns."""

    def render(cell) -> str:
        if isinstance(cell, float) or isinstance(cell, np.floating):
            return float_fmt.format(float(cell))
        return str(cell)

    grid = [[render(c) for c in row] for row in rows]
    cols = [list(col) for col in zip(*([list(headers)] + grid))] if grid else [
        [h] for h in headers
    ]
    widths = [max(len(c) for c in col) for col in cols]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in grid:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
) -> str:
    """Render named series against a shared x-axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


#: shade ramp for ASCII heatmaps, light to dark
_SHADES = " ░▒▓█"


def format_heatmap(
    matrix,
    *,
    row_labels: Sequence | None = None,
    col_labels: Sequence | None = None,
    title: str | None = None,
) -> str:
    """Unicode-block heatmap of a 2-D array (min→light, max→dark).

    The terminal rendition of the paper's Fig. 2 surfaces: each cell is
    one shade character, rows labelled on the left.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {m.shape}")
    lo = np.nanmin(m)
    hi = np.nanmax(m)
    span = hi - lo if hi > lo else 1.0
    levels = np.clip(((m - lo) / span) * (len(_SHADES) - 1), 0, len(_SHADES) - 1)
    levels = levels.astype(int)

    rl = [str(r) for r in (row_labels if row_labels is not None else range(m.shape[0]))]
    if len(rl) != m.shape[0]:
        raise ValueError(f"need {m.shape[0]} row labels, got {len(rl)}")
    width = max(len(r) for r in rl)
    lines = []
    if title:
        lines.append(f"{title}  (min={lo:.3g}, max={hi:.3g})")
    if col_labels is not None:
        cl = [str(c) for c in col_labels]
        if len(cl) != m.shape[1]:
            raise ValueError(f"need {m.shape[1]} col labels, got {len(cl)}")
        lines.append(" " * (width + 1) + " ".join(c[:1] for c in cl))
    for label, row in zip(rl, levels):
        cells = " ".join(_SHADES[v] for v in row)
        lines.append(f"{label.rjust(width)} {cells}")
    return "\n".join(lines)
