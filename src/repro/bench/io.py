"""Result persistence: experiment records to/from JSON.

Experiment entry points return nested dicts/lists containing numpy
types; this module serializes them losslessly enough for re-plotting
(ndarrays become nested lists tagged with their dtype) so CLI runs can
be saved with ``--output`` and analyzed offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np


def _encode(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "to_dict"):
        # ScheduleDecision / OptimizationOutcome and friends serialize
        # themselves to JSON-safe dicts.
        return _encode(obj.to_dict())
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.asarray(obj["__ndarray__"], dtype=obj.get("dtype", "float64"))
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


def save_results(results: Any, path) -> Path:
    """Serialize an experiment result structure to JSON at ``path``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(_encode(results), indent=2))
    return p


def load_results(path) -> Any:
    """Load a structure previously written by :func:`save_results`."""
    p = Path(path)
    return _decode(json.loads(p.read_text()))
