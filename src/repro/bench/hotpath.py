"""Hot-path micro-benchmarks: fast-vs-slow timing for the GP/BO kernels.

Every optimisation added to the GP/BO hot path keeps its original
implementation behind a ``fast=False`` escape hatch (or a cache
``enabled`` switch).  This module times each pair on fixed seeds and
emits ``BENCH_<name>.json`` records so speedups are measured, not
asserted:

* ``bo_hot_path`` — the headline loop: an :class:`OutcomeSurrogateBank`
  conditioned on M new per-stream observations per BO iteration with a
  qNEI batch selection each round (incremental Cholesky + vectorized
  scoring vs from-scratch refits + per-candidate loop);
* ``gp_update`` — block-Cholesky append vs full refit on a single GP;
* ``acquisition_batch`` — vectorized greedy qNEI scoring vs the
  candidate-at-a-time reference loop;
* ``eubo_pairs`` — vectorized Clark-formula pair scoring vs the scalar
  closed form per pair;
* ``assignment_cache`` — memoized vs fresh Hungarian group→server
  solves.

Each record carries wall time and iterations/s for both paths, the
speedup, and the relevant ``repro.obs`` cache/vectorization counters
from the fast run.  ``repro bench`` is the CLI front-end;
``check_result`` gates a run against a recorded baseline with slack
(the CI ``bench-smoke`` job).
"""

from __future__ import annotations

import copy
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.obs import telemetry

#: Counter names reported per benchmark (missing counters report 0).
_COUNTERS = (
    "gp.chol_cache_hits",
    "gp.chol_cache_misses",
    "gp.rank1_updates",
    "gp.rank1_fallbacks",
    "acq.vectorized_batches",
    "acq.eubo_vectorized_pairs",
    "sched.assign_cache_hits",
    "sched.assign_cache_misses",
)

#: Per-benchmark sizing knobs.  ``medium`` is the acceptance
#: configuration (M=16 streams, 50 BO iterations); ``smoke`` is small
#: enough for CI and the unit tests.
PROFILES: dict[str, dict[str, dict[str, int]]] = {
    "smoke": {
        "bo_hot_path": {"m": 4, "iters": 6, "n_init": 24, "pool": 4, "n_samples": 16},
        "gp_update": {"n_init": 60, "rounds": 4, "block": 8},
        "acquisition_batch": {"pool": 64, "n_samples": 32, "batch": 4, "repeats": 5},
        "eubo_pairs": {"items": 24, "pairs": 80, "repeats": 4},
        "assignment_cache": {"streams": 8, "servers": 4, "variants": 5, "repeats": 100},
    },
    "medium": {
        "bo_hot_path": {"m": 16, "iters": 50, "n_init": 100, "pool": 6, "n_samples": 16},
        "gp_update": {"n_init": 300, "rounds": 10, "block": 20},
        "acquisition_batch": {"pool": 256, "n_samples": 128, "batch": 8, "repeats": 20},
        "eubo_pairs": {"items": 80, "pairs": 500, "repeats": 10},
        "assignment_cache": {"streams": 12, "servers": 6, "variants": 20, "repeats": 2000},
    },
}


def _reset_caches() -> None:
    from repro.gp import cache as gp_cache
    from repro.sched.assignment import clear_assignment_cache

    gp_cache.clear()
    clear_assignment_cache()


def _read_counters() -> dict[str, float]:
    counters = telemetry.snapshot().get("counters", {})
    return {k: float(counters.get(k, 0)) for k in _COUNTERS}


def _timed(fn: Callable[[], None], iterations: int) -> dict[str, float]:
    start = time.perf_counter()
    fn()
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "iters_per_s": iterations / wall if wall > 0 else float("inf"),
    }


def _record(
    name: str,
    config: dict,
    seed: int,
    run: Callable[[bool], None],
    iterations: int,
) -> dict:
    """Time ``run(fast)`` for fast=True/False with counters from the fast run."""
    owns_telemetry = not telemetry.enabled
    if owns_telemetry:
        telemetry.enable()
    try:
        _reset_caches()
        run(True)  # warm-up (JIT-free Python, but first-call allocs/imports)
        _reset_caches()
        before = _read_counters()
        fast = _timed(lambda: run(True), iterations)
        after = _read_counters()
        _reset_caches()
        slow = _timed(lambda: run(False), iterations)
    finally:
        _reset_caches()
        if owns_telemetry:
            telemetry.disable()
    return {
        "name": name,
        "config": config,
        "seed": seed,
        "iterations": iterations,
        "fast": fast,
        "slow": slow,
        "speedup": slow["wall_s"] / fast["wall_s"] if fast["wall_s"] > 0 else float("inf"),
        "counters": {k: after[k] - before[k] for k in _COUNTERS},
    }


# ---------------------------------------------------------------------------
# synthetic data helpers


def _synthetic_outcomes(x: np.ndarray) -> np.ndarray:
    """Deterministic smooth (n, 5) outcome surface over raw (r, s) configs."""
    r = x[:, 0] / 2000.0
    s = x[:, 1] / 30.0
    return np.stack(
        [
            0.05 + 0.2 * r * r + 0.1 * s,          # ltc
            0.5 + 0.4 * np.tanh(3.0 * r) * s,      # acc
            2.0 * r * s,                            # net
            1.0 + r + 0.5 * s,                      # com
            0.5 + 0.8 * r * s,                      # eng
        ],
        axis=1,
    )


def _raw_configs(gen: np.random.Generator, n: int) -> np.ndarray:
    r = gen.uniform(200.0, 2000.0, size=n)
    s = gen.uniform(1.0, 30.0, size=n)
    return np.stack([r, s], axis=1)


def _fitted_bank(gen: np.random.Generator, n_init: int):
    from repro.outcomes.surrogate import OutcomeSurrogateBank

    x = _raw_configs(gen, n_init)
    y = _synthetic_outcomes(x) + 0.01 * gen.standard_normal((n_init, 5))
    bank = OutcomeSurrogateBank()
    bank.fit(x, y, optimize=True, rng=gen)
    return bank


# ---------------------------------------------------------------------------
# benchmarks


def bench_bo_hot_path(cfg: dict[str, int], seed: int) -> dict:
    """Surrogate-conditioning + qNEI loop: the BO per-iteration hot path.

    Each iteration scores a pool of candidate decisions (M streams
    each) with qNEI over joint posterior samples of the scalarized
    benefit, then conditions the bank on the M per-stream observations
    of the winning decision — exactly the Algorithm 2 inner loop with
    the preference model replaced by fixed weights (common to both
    paths, so the timing isolates the tentpole optimisations).
    """
    from repro.bo.acquisition import QNEI

    m, iters, pool_size = cfg["m"], cfg["iters"], cfg["pool"]
    weights = np.array([-1.0, 1.0, -0.2, -0.2, -0.2])  # maximize acc, penalize costs

    setup_gen = np.random.default_rng(seed)
    base_bank = _fitted_bank(setup_gen, cfg["n_init"])

    def run(fast: bool) -> None:
        gen = np.random.default_rng(seed + 1)
        bank = copy.deepcopy(base_bank)
        acq = QNEI(n_samples=cfg["n_samples"], fast=fast)

        def sampler(x_flat: np.ndarray, n_samples: int, rng: np.random.Generator):
            per_stream = bank.sample_per_stream(x_flat, n_samples, rng=rng)
            benefit = per_stream @ weights  # (S, P*M)
            return benefit.reshape(n_samples, -1, m).mean(axis=2)  # (S, P)

        for _ in range(iters):
            decisions = _raw_configs(gen, pool_size * m).reshape(pool_size, m, 2)
            idx = acq.select_batch(
                lambda x, s, r: sampler(decisions.reshape(-1, 2), s, r),
                decisions.reshape(pool_size, -1),
                1,
                rng=gen,
            )
            chosen = decisions[int(idx[0])]
            y_new = _synthetic_outcomes(chosen) + 0.01 * gen.standard_normal((m, 5))
            bank.update(chosen, y_new, fast=fast)

    return _record("bo_hot_path", cfg, seed, run, iters)


def bench_gp_update(cfg: dict[str, int], seed: int) -> dict:
    """Incremental block-Cholesky append vs from-scratch refit."""
    from repro.gp.kernels import Matern52Kernel
    from repro.gp.regression import GPRegressor

    n_init, rounds, block = cfg["n_init"], cfg["rounds"], cfg["block"]
    gen = np.random.default_rng(seed)
    x0 = gen.uniform(0.0, 1.0, size=(n_init, 2))
    y0 = np.sin(3.0 * x0[:, 0]) + x0[:, 1] ** 2 + 0.01 * gen.standard_normal(n_init)
    base = GPRegressor(Matern52Kernel(np.full(2, 0.3)), noise=1e-3)
    base.fit(x0, y0, optimize=True, rng=gen)
    extra_x = gen.uniform(0.0, 1.0, size=(rounds, block, 2))
    extra_y = (
        np.sin(3.0 * extra_x[..., 0])
        + extra_x[..., 1] ** 2
        + 0.01 * gen.standard_normal((rounds, block))
    )

    def run(fast: bool) -> None:
        gp = copy.deepcopy(base)
        for k in range(rounds):
            gp.update(extra_x[k], extra_y[k], fast=fast)

    return _record("gp_update", cfg, seed, run, rounds)


def bench_acquisition_batch(cfg: dict[str, int], seed: int) -> dict:
    """Vectorized greedy qNEI scoring vs the per-candidate loop."""
    from repro.bo.acquisition import QNEI

    pool_size, n_samples = cfg["pool"], cfg["n_samples"]
    batch, repeats = cfg["batch"], cfg["repeats"]
    gen = np.random.default_rng(seed)
    pool = gen.uniform(0.0, 1.0, size=(pool_size, 2))
    observed_x = gen.uniform(0.0, 1.0, size=(10, 2))

    def sampler(x: np.ndarray, s: int, rng: np.random.Generator) -> np.ndarray:
        mean = np.sin(4.0 * x[:, 0]) * np.cos(2.0 * x[:, 1])
        return mean[None, :] + 0.3 * rng.standard_normal((s, x.shape[0]))

    def run(fast: bool) -> None:
        acq = QNEI(n_samples=n_samples, fast=fast)
        for k in range(repeats):
            acq.select_batch(
                sampler, pool, batch, observed_x=observed_x, rng=seed + k
            )

    return _record("acquisition_batch", cfg, seed, run, repeats)


def bench_eubo_pairs(cfg: dict[str, int], seed: int) -> dict:
    """Vectorized EUBO pair scoring vs the scalar Clark formula per pair."""
    from repro.bo.eubo import eubo_for_pairs
    from repro.gp.preference import ComparisonData, PreferenceGP

    n_items, n_pairs, repeats = cfg["items"], cfg["pairs"], cfg["repeats"]
    gen = np.random.default_rng(seed)
    items = gen.uniform(0.0, 1.0, size=(n_items, 3))
    utility = items @ np.array([1.0, -0.5, 0.25])
    data = ComparisonData(items=items)
    for _ in range(3 * n_items):
        i, j = gen.choice(n_items, 2, replace=False)
        winner, loser = (i, j) if utility[i] >= utility[j] else (j, i)
        data.add_comparison(int(winner), int(loser))
    model = PreferenceGP().fit(data)
    pairs = []
    for _ in range(n_pairs):
        i, j = gen.choice(n_items, 2, replace=False)
        pairs.append((int(i), int(j)))

    def run(fast: bool) -> None:
        for _ in range(repeats):
            eubo_for_pairs(model, items, pairs, fast=fast)

    return _record("eubo_pairs", cfg, seed, run, repeats)


def bench_assignment_cache(cfg: dict[str, int], seed: int) -> dict:
    """Memoized vs fresh Hungarian group→server solves."""
    from repro.sched.assignment import solve_group_assignment

    n_groups = cfg["streams"]
    variants, repeats = cfg["variants"], cfg["repeats"]
    gen = np.random.default_rng(seed)
    rates = [gen.uniform(1e5, 1e7, size=n_groups) for _ in range(variants)]
    bw = gen.uniform(5.0, 30.0, size=cfg["servers"])

    def run(fast: bool) -> None:
        for k in range(repeats):
            solve_group_assignment(rates[k % variants], bw, use_cache=fast)

    return _record("assignment_cache", cfg, seed, run, repeats)


BENCHMARKS: dict[str, Callable[[dict, int], dict]] = {
    "bo_hot_path": bench_bo_hot_path,
    "gp_update": bench_gp_update,
    "acquisition_batch": bench_acquisition_batch,
    "eubo_pairs": bench_eubo_pairs,
    "assignment_cache": bench_assignment_cache,
}


def run_benchmark(name: str, *, profile: str = "medium", seed: int = 0) -> dict:
    """Run one named benchmark; returns its ``BENCH_<name>.json`` record."""
    if name not in BENCHMARKS:
        raise ValueError(f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}")
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    result = BENCHMARKS[name](dict(PROFILES[profile][name]), seed)
    result["profile"] = profile
    return result


def run_benchmarks(
    names: Sequence[str] | None = None, *, profile: str = "medium", seed: int = 0
) -> list[dict]:
    """Run the named benchmarks (default: all) in declaration order."""
    return [
        run_benchmark(n, profile=profile, seed=seed)
        for n in (names or list(BENCHMARKS))
    ]


def save_bench(result: dict, out_dir=".") -> Path:
    """Write a benchmark record to ``<out_dir>/BENCH_<name>.json``."""
    from repro.bench.io import save_results

    return save_results(result, Path(out_dir) / f"BENCH_{result['name']}.json")


def check_result(result: dict, baseline: dict, *, slack: float = 1.1) -> list[str]:
    """Regression check against a recorded baseline; returns failure strings.

    The primary criterion is wall time: the fast path must not be
    slower than ``slack`` × the baseline's recorded fast wall time.
    Because baselines may have been recorded on different hardware, a
    wall-time miss is forgiven when the *speedup* (fast vs slow, same
    machine, same run — machine-independent) still holds up to
    ``slack``.  A run failing **both** criteria is a real regression.
    """
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1.0, got {slack}")
    wall_ok = result["fast"]["wall_s"] <= slack * baseline["fast"]["wall_s"]
    speedup_ok = result["speedup"] * slack >= baseline["speedup"]
    if wall_ok or speedup_ok:
        return []
    return [
        f"{result['name']}: fast wall {result['fast']['wall_s']:.4f}s > "
        f"{slack:g}x baseline {baseline['fast']['wall_s']:.4f}s AND speedup "
        f"{result['speedup']:.2f}x below baseline {baseline['speedup']:.2f}x / {slack:g}"
    ]
