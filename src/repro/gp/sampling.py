"""Multivariate-normal sampling helpers for Monte-Carlo acquisitions."""

from __future__ import annotations

import numpy as np

from repro.utils import as_generator, check_array_1d, check_array_2d, safe_cholesky
from repro.utils.rng import RngLike


def sample_mvn(
    mean: np.ndarray, cov: np.ndarray, n_samples: int, *, rng: RngLike = None
) -> np.ndarray:
    """Draw joint samples from N(mean, cov); returns (n_samples, m).

    Uses a jittered Cholesky so near-singular posterior covariances
    (common after conditioning on dense data) sample cleanly.
    """
    mean = check_array_1d("mean", mean)
    cov = check_array_2d("cov", cov, n_cols=mean.size)
    if cov.shape[0] != mean.size:
        raise ValueError(f"cov shape {cov.shape} incompatible with mean {mean.shape}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    gen = as_generator(rng)
    ell = safe_cholesky(cov)
    z = gen.standard_normal((n_samples, mean.size))
    return mean[None, :] + z @ ell.T


def sample_posterior(
    model, x, n_samples: int, *, rng: RngLike = None
) -> np.ndarray:
    """Joint posterior samples from any model exposing predict(return_cov)."""
    mean, cov = model.predict(x, return_cov=True)
    return sample_mvn(mean, cov, n_samples, rng=rng)
