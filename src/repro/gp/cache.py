"""Shared kernel-matrix / Cholesky cache for the GP hot path.

Every GP in the pipeline — the five outcome surrogates and the
pairwise-preference GP — pays the same two costs per (re)fit: building
the train-set kernel matrix K (O(n² d)) and factorizing K + σ²I
(O(n³)).  Both depend only on (kernel hyperparameters, noise term,
training inputs), so repeated fits with unchanged inputs — e.g. the
preference learner refitting after each comparison on an unchanged
item set, or a regressor re-conditioning with frozen hyperparameters —
can reuse the previous factorization.

This module provides a small process-wide LRU keyed on exactly that
triple.  Entries are treated as immutable: callers must never write
into a cached array (``cho_solve`` / ``solve_triangular`` reads are
fine).  Hits and misses are counted through :mod:`repro.obs.telemetry`
as ``gp.chol_cache_hits`` / ``gp.chol_cache_misses``.

The cache is an optimization only — disable it (``configure(
enabled=False)``) and every computation runs from scratch, which is
the ``fast=False`` reference behavior the equivalence tests in
``tests/properties`` compare against.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

from repro.obs import telemetry

__all__ = [
    "CholeskyCache",
    "chol_cache",
    "cache_key",
    "configure",
    "clear",
    "stats",
]


def _digest(arr: np.ndarray) -> bytes:
    """Stable fingerprint of an array's contents (shape-aware)."""
    a = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.digest()


def cache_key(kernel, noise: float, x: np.ndarray, *, tag: str = "") -> tuple:
    """Cache key for the factorization of ``kernel(x) + noise·I``.

    The key covers everything the factorization depends on: the kernel
    family, its full log-parameter vector, the diagonal inflation, and
    a fingerprint of the training inputs (the "train-set version").
    ``tag`` lets callers with extra state (e.g. different jitter
    policies) partition their entries.
    """
    return (
        tag,
        type(kernel).__name__,
        _digest(np.asarray(kernel.get_log_params(), dtype=float)),
        float(noise),
        _digest(np.asarray(x, dtype=float)),
    )


class CholeskyCache:
    """Thread-safe LRU of kernel/Cholesky artifacts.

    Values are whatever the compute callback returns — typically the
    Cholesky factor alone, or a ``(K, L)`` tuple when the kernel matrix
    itself is worth keeping.  Treat cached arrays as read-only.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        With the cache disabled, ``compute()`` runs unconditionally and
        nothing is stored (the exact from-scratch behavior).
        """
        if not self.enabled:
            return compute()
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                telemetry.counter("gp.chol_cache_hits")
                return self._store[key]
        value = compute()
        self.put(key, value)
        self.misses += 1
        telemetry.counter("gp.chol_cache_misses")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset hit/miss counts."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int | float]:
        """Snapshot: hits, misses, size, and hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._store),
                "hit_rate": self.hits / total if total else 0.0,
            }


#: The process-wide cache shared by the outcome surrogates and the
#: preference GP.  Sized for a handful of models' worth of entries.
chol_cache = CholeskyCache(maxsize=64)


def configure(*, enabled: bool | None = None, maxsize: int | None = None) -> None:
    """Tune the shared cache; ``enabled=False`` is the slow-path switch."""
    if enabled is not None:
        chol_cache.enabled = bool(enabled)
        if not enabled:
            chol_cache.clear()
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        chol_cache.maxsize = int(maxsize)


def clear() -> None:
    """Drop all entries in the shared cache."""
    chol_cache.clear()


def stats() -> dict[str, int | float]:
    """Hit/miss statistics of the shared cache."""
    return chol_cache.stats()
