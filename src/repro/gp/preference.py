"""Pairwise-preference Gaussian process with Laplace approximation.

Implements §4.2 of the paper, following Chu & Ghahramani (2005): a latent
utility ``g ~ GP(0, K)`` over outcome vectors, observed only through
pairwise comparisons with the probit likelihood

    p(y⁽¹⁾ ≻ y⁽²⁾ | g) = Φ((g(y⁽¹⁾) − g(y⁽²⁾)) / (√2 λ))      (Eq. 9)

The posterior over g at the compared items is approximated by Laplace:
a damped Newton ascent finds the MAP ĝ, and the local curvature
``(K⁻¹ + AᵀWA)⁻¹`` provides the Gaussian covariance.  Predictions at
new outcome vectors use the standard Laplace-GP formulas, with the
singular-Hessian-safe identity ``(K + H⁻¹)⁻¹ = H(I + KH)⁻¹``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import cho_solve
from scipy.stats import norm

from repro.gp.cache import cache_key, chol_cache
from repro.gp.kernels import Kernel, RBFKernel
from repro.utils import check_array_2d, check_positive, safe_cholesky


@dataclass
class ComparisonData:
    """Items (outcome vectors) plus comparison pairs over them.

    ``pairs[v] = (w, l)`` records that item ``w`` was preferred to item
    ``l`` in the v-th query (𝒫_V in the paper).
    """

    items: np.ndarray  # (n, d)
    pairs: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.items = check_array_2d("items", self.items)
        for w, l in self.pairs:
            self._check_pair(w, l)

    def _check_pair(self, winner: int, loser: int) -> None:
        n = self.items.shape[0]
        if not (0 <= winner < n and 0 <= loser < n):
            raise ValueError(f"pair ({winner}, {loser}) out of range for {n} items")
        if winner == loser:
            raise ValueError(f"pair compares item {winner} with itself")

    @property
    def n_items(self) -> int:
        return self.items.shape[0]

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def add_items(self, new_items) -> np.ndarray:
        """Append items; returns their indices."""
        new_items = check_array_2d("new_items", new_items, n_cols=self.items.shape[1])
        start = self.n_items
        self.items = np.vstack([self.items, new_items])
        return np.arange(start, self.n_items)

    def add_comparison(self, winner: int, loser: int) -> None:
        """Record that item ``winner`` was preferred to ``loser``."""
        self._check_pair(winner, loser)
        self.pairs.append((int(winner), int(loser)))

    def pair_matrix(self) -> np.ndarray:
        """Signed incidence matrix A (V, n): +1 winner, −1 loser."""
        a = np.zeros((self.n_pairs, self.n_items))
        for v, (w, l) in enumerate(self.pairs):
            a[v, w] = 1.0
            a[v, l] = -1.0
        return a


class PreferenceGP:
    """Probit pairwise GP (the preference surrogate ĝ of the paper).

    Parameters
    ----------
    kernel:
        Kernel over outcome space; default RBF with median-heuristic
        lengthscales (set at fit time).
    noise_scale:
        λ in Eq. 9 — comparison noise; smaller = more decisive
        decision maker.
    max_newton_iter, tol:
        Damped-Newton stopping controls for the MAP search.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        noise_scale: float = 0.1,
        max_newton_iter: int = 100,
        tol: float = 1e-8,
    ) -> None:
        self.kernel = kernel
        self.noise_scale = check_positive("noise_scale", noise_scale)
        self.max_newton_iter = int(max_newton_iter)
        self.tol = float(tol)
        #: Whether the last Newton MAP search stopped at its own
        #: criterion (step below tol / no ascent left) rather than the
        #: iteration cap.  ``False`` means the MAP is approximate.
        self.converged: bool = False
        self._data: ComparisonData | None = None
        self._train_items: np.ndarray | None = None
        self._g_map: np.ndarray | None = None
        self._b: np.ndarray | None = None  # K⁻¹ ĝ at the optimum
        self._h: np.ndarray | None = None  # AᵀWA at the MAP
        self._k_chol: np.ndarray | None = None
        self._k: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._g_map is not None

    def _default_kernel(self, items: np.ndarray) -> Kernel:
        """RBF with median-distance lengthscales (per-dimension)."""
        d = items.shape[1]
        ell = np.empty(d)
        for j in range(d):
            diffs = np.abs(items[:, None, j] - items[None, :, j])
            med = np.median(diffs[diffs > 0]) if np.any(diffs > 0) else 1.0
            ell[j] = med if med > 0 else 1.0
        return RBFKernel(ell, outputscale=1.0)

    def _loglik_terms(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(log Φ(z), u = φ/Φ, w = u² + z·u) computed stably."""
        logcdf = norm.logcdf(z)
        u = np.exp(norm.logpdf(z) - logcdf)
        w = u * (u + z)
        return logcdf, u, np.clip(w, 1e-12, None)

    def fit(self, data: ComparisonData) -> "PreferenceGP":
        """Laplace MAP fit over ``data``'s items and comparisons."""
        if data.n_pairs == 0:
            raise ValueError("need at least one comparison to fit")
        self._data = data
        # Snapshot the item matrix: ``data`` is shared and mutable (the
        # learner keeps appending BO-observed outcomes), and a model
        # kept past a rejected refit must stay consistent with the
        # items it was actually conditioned on.
        items = np.array(data.items, dtype=float, copy=True)
        self._train_items = items
        if self.kernel is None or self.kernel.n_dims != items.shape[1]:
            self.kernel = self._default_kernel(items)
        n = data.n_items

        def _compute() -> tuple[np.ndarray, np.ndarray]:
            kk = self.kernel(items) + 1e-8 * np.eye(n)
            return kk, safe_cholesky(kk)

        # The learner refits after every comparison while the item set
        # usually stays put — K and its factor depend only on
        # (kernel, items), so the shared cache turns those refits from
        # O(n³) into O(1) lookups.
        k, k_chol = chol_cache.get_or_compute(
            cache_key(self.kernel, 1e-8, items, tag="pref"), _compute
        )
        a = data.pair_matrix()
        s = np.sqrt(2.0) * self.noise_scale
        g = np.zeros(n)

        def psi(gv: np.ndarray) -> float:
            z = (a @ gv) / s
            logcdf, _, _ = self._loglik_terms(z)
            quad = gv @ cho_solve((k_chol, True), gv)
            return float(np.sum(logcdf) - 0.5 * quad)

        cur = psi(g)
        self.converged = False
        for _ in range(self.max_newton_iter):
            z = (a @ g) / s
            _, u, w = self._loglik_terms(z)
            b = a.T @ (u / s)  # ∇ log-lik
            h = (a.T * (w / s**2)) @ a  # −Hessian of log-lik
            # Newton direction: (K⁻¹ + H)⁻¹ (b − K⁻¹g) = (I + KH)⁻¹(Kb − g)
            rhs = k @ b - g
            direction = np.linalg.solve(np.eye(n) + k @ h, rhs)
            # Backtracking line search on Ψ.
            step = 1.0
            improved = False
            for _ in range(30):
                cand = g + step * direction
                val = psi(cand)
                if val > cur:
                    g, cur = cand, val
                    improved = True
                    break
                step *= 0.5
            if not improved or float(np.linalg.norm(step * direction)) < self.tol:
                self.converged = True
                break

        z = (a @ g) / s
        _, u, w = self._loglik_terms(z)
        self._g_map = g
        self._b = a.T @ (u / s)
        self._h = (a.T * (w / s**2)) @ a
        self._k = k
        self._k_chol = k_chol
        return self

    # ------------------------------------------------------------------
    def utilities(self) -> np.ndarray:
        """MAP latent utility ĝ at the training items."""
        if self._g_map is None:
            raise RuntimeError("model is not fitted")
        return self._g_map.copy()

    def predict(self, y_new, *, return_cov: bool = False):
        """Posterior mean (and variance/covariance) of g at ``y_new``.

        Mean uses μ* = K*ᵀ K⁻¹ ĝ = K*ᵀ b̂ (exact at the MAP);
        covariance uses K** − K*ᵀ H (I + KH)⁻¹ K*.
        """
        if self._g_map is None or self._train_items is None:
            raise RuntimeError("model is not fitted")
        assert self.kernel is not None and self._k is not None
        y_new = check_array_2d("y_new", y_new, n_cols=self._train_items.shape[1])
        k_star = self.kernel(self._train_items, y_new)  # (n, m)
        mean = k_star.T @ self._b
        m_mat = self._h @ np.linalg.solve(
            np.eye(self._k.shape[0]) + self._k @ self._h, k_star
        )
        if return_cov:
            cov = self.kernel(y_new) - k_star.T @ m_mat
            # symmetrize against roundoff
            cov = 0.5 * (cov + cov.T)
            return mean, cov
        var = np.clip(
            self.kernel.diag(y_new) - np.sum(k_star * m_mat, axis=0), 1e-12, None
        )
        return mean, var

    def predict_pair_probability(self, y1, y2, *, fast: bool = True) -> np.ndarray:
        """P(y1 ≻ y2) under the posterior, marginalizing latent noise.

        For jointly Gaussian (g1, g2), the probit integral has the closed
        form Φ(μ_Δ / √(2λ² + σ_Δ²)).

        The fast path (default) evaluates all pairs through one joint
        GP predict over the stacked points; ``fast=False`` is the
        pair-at-a-time reference loop (numerically identical — the
        same kernel evaluations, just batched).
        """
        y1 = check_array_2d("y1", y1)
        y2 = check_array_2d("y2", y2)
        if y1.shape != y2.shape:
            raise ValueError(f"y1 {y1.shape} and y2 {y2.shape} must match")
        n = y1.shape[0]
        if not fast:
            probs = np.empty(n)
            for i in range(n):
                mean, cov = self.predict(np.vstack([y1[i], y2[i]]), return_cov=True)
                mu_d = mean[0] - mean[1]
                var_d = max(cov[0, 0] + cov[1, 1] - 2 * cov[0, 1], 0.0)
                probs[i] = norm.cdf(mu_d / np.sqrt(2 * self.noise_scale**2 + var_d))
            return probs
        mean, cov = self.predict(np.vstack([y1, y2]), return_cov=True)
        idx = np.arange(n)
        mu_d = mean[idx] - mean[n + idx]
        var_d = np.clip(
            cov[idx, idx] + cov[n + idx, n + idx] - 2.0 * cov[idx, n + idx],
            0.0,
            None,
        )
        return norm.cdf(mu_d / np.sqrt(2 * self.noise_scale**2 + var_d))

    def sample_posterior(self, y_new, n_samples: int = 1, *, rng=None) -> np.ndarray:
        """Joint posterior samples of g at ``y_new``; (n_samples, m)."""
        from repro.gp.sampling import sample_mvn

        mean, cov = self.predict(y_new, return_cov=True)
        return sample_mvn(mean, cov, n_samples, rng=rng)


def cross_validate_preference(
    data: ComparisonData,
    *,
    lengthscales=(0.5, 1.0, 1.5, 3.0),
    noise_scales=(0.05, 0.1, 0.2),
    n_folds: int = 4,
    rng=None,
) -> tuple[float, float, float]:
    """Select (lengthscale, noise_scale) by held-out pair log-likelihood.

    K-fold cross-validation over the *comparisons* (items are shared):
    for each hyperparameter pair, fit on the training folds and score
    the held-out comparisons with log p(winner ≻ loser) under the
    posterior.  Returns ``(best_lengthscale, best_noise_scale,
    best_mean_loglik)``.  Needs at least ``n_folds`` comparisons.
    """
    from repro.gp.kernels import RBFKernel
    from repro.utils import as_generator

    if data.n_pairs < n_folds:
        raise ValueError(
            f"need at least {n_folds} comparisons for {n_folds}-fold CV, "
            f"got {data.n_pairs}"
        )
    gen = as_generator(rng)
    order = gen.permutation(data.n_pairs)
    folds = np.array_split(order, n_folds)
    d = data.items.shape[1]

    best = (-np.inf, None, None)
    for ell in lengthscales:
        for lam in noise_scales:
            logliks = []
            for fold in folds:
                test_idx = set(int(i) for i in fold)
                train_pairs = [
                    p for i, p in enumerate(data.pairs) if i not in test_idx
                ]
                test_pairs = [data.pairs[int(i)] for i in fold]
                if not train_pairs or not test_pairs:
                    continue
                model = PreferenceGP(
                    kernel=RBFKernel(np.full(d, float(ell))),
                    noise_scale=float(lam),
                )
                model.fit(ComparisonData(items=data.items, pairs=list(train_pairs)))
                w = np.array([data.items[a] for a, _ in test_pairs])
                l = np.array([data.items[b] for _, b in test_pairs])
                p = np.clip(model.predict_pair_probability(w, l), 1e-9, 1.0)
                logliks.append(float(np.mean(np.log(p))))
            score = float(np.mean(logliks)) if logliks else -np.inf
            if score > best[0]:
                best = (score, float(ell), float(lam))
    assert best[1] is not None
    return best[1], best[2], best[0]
