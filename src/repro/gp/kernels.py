"""Covariance kernels with ARD lengthscales and analytic gradients.

All kernels expose their hyperparameters as a flat vector of *log*
parameters ``[log outputscale, log ell_1 .. log ell_d]`` so optimizers
work in an unconstrained space, plus ``gradients`` returning
``dK / d(log θ_j)`` for the marginal-likelihood gradient

    dL/dθ_j = ½ tr((α αᵀ − K⁻¹) · dK/dθ_j).

Everything is vectorized: squared distances come from the usual
``‖a‖² + ‖b‖² − 2a·b`` expansion, and per-dimension gradient terms are
broadcast, never looped over samples.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils import check_array_2d, check_positive


def _scaled_diffsq(x1: np.ndarray, x2: np.ndarray, ell: np.ndarray) -> np.ndarray:
    """Per-dimension squared differences scaled by lengthscales.

    Returns shape ``(n1, n2, d)`` of ((x1_i − x2_j)/ell)² per dimension.
    """
    diff = x1[:, None, :] - x2[None, :, :]
    return (diff / ell) ** 2


class Kernel(abc.ABC):
    """Stationary ARD kernel with log-parameter vector interface."""

    def __init__(self, lengthscales, outputscale: float = 1.0) -> None:
        self.lengthscales = np.atleast_1d(np.asarray(lengthscales, dtype=float))
        if np.any(self.lengthscales <= 0):
            raise ValueError(f"lengthscales must be > 0, got {self.lengthscales}")
        self.outputscale = check_positive("outputscale", outputscale)

    @property
    def n_dims(self) -> int:
        return self.lengthscales.size

    # -- log-parameter vector --------------------------------------------
    def get_log_params(self) -> np.ndarray:
        """Flat vector [log outputscale, log ell_1, …] for optimizers."""
        return np.concatenate([[np.log(self.outputscale)], np.log(self.lengthscales)])

    def set_log_params(self, theta: np.ndarray) -> None:
        """Install a log-parameter vector (inverse of get_log_params)."""
        theta = np.asarray(theta, dtype=float)
        if theta.size != 1 + self.n_dims:
            raise ValueError(
                f"expected {1 + self.n_dims} log-params, got {theta.size}"
            )
        self.outputscale = float(np.exp(theta[0]))
        self.lengthscales = np.exp(theta[1:]).copy()

    @property
    def n_params(self) -> int:
        return 1 + self.n_dims

    # -- evaluation --------------------------------------------------------
    def __call__(self, x1, x2=None) -> np.ndarray:
        x1 = check_array_2d("x1", x1, n_cols=self.n_dims)
        x2 = x1 if x2 is None else check_array_2d("x2", x2, n_cols=self.n_dims)
        return self._k(x1, x2)

    def diag(self, x) -> np.ndarray:
        """Diagonal of k(x, x) — the outputscale for stationary kernels."""
        x = check_array_2d("x", x, n_cols=self.n_dims)
        return np.full(x.shape[0], self.outputscale)

    @abc.abstractmethod
    def _k(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Covariance matrix (n1, n2)."""

    @abc.abstractmethod
    def gradients(self, x: np.ndarray) -> list[np.ndarray]:
        """[dK/d(log outputscale), dK/d(log ell_1), ...] at K(x, x)."""


class RBFKernel(Kernel):
    """Squared-exponential: k = σ² exp(−½ Σ_d (Δ_d/ℓ_d)²)."""

    def _k(self, x1, x2):
        d2 = _scaled_diffsq(x1, x2, self.lengthscales).sum(axis=-1)
        return self.outputscale * np.exp(-0.5 * d2)

    def gradients(self, x):
        x = check_array_2d("x", x, n_cols=self.n_dims)
        per_dim = _scaled_diffsq(x, x, self.lengthscales)  # (n, n, d)
        k = self.outputscale * np.exp(-0.5 * per_dim.sum(axis=-1))
        grads = [k]  # d/d log σ² = K
        # d/d log ℓ_d = K · (Δ_d/ℓ_d)²
        for d in range(self.n_dims):
            grads.append(k * per_dim[..., d])
        return grads


class Matern52Kernel(Kernel):
    """Matérn-5/2: k = σ² (1 + √5 r + 5r²/3) exp(−√5 r)."""

    _SQRT5 = np.sqrt(5.0)

    def _r(self, x1, x2):
        d2 = _scaled_diffsq(x1, x2, self.lengthscales).sum(axis=-1)
        return np.sqrt(np.clip(d2, 0.0, None))

    def _k(self, x1, x2):
        r = self._r(x1, x2)
        sr = self._SQRT5 * r
        return self.outputscale * (1.0 + sr + sr**2 / 3.0) * np.exp(-sr)

    def gradients(self, x):
        x = check_array_2d("x", x, n_cols=self.n_dims)
        per_dim = _scaled_diffsq(x, x, self.lengthscales)
        r = np.sqrt(np.clip(per_dim.sum(axis=-1), 0.0, None))
        sr = self._SQRT5 * r
        k = self.outputscale * (1.0 + sr + sr**2 / 3.0) * np.exp(-sr)
        grads = [k]
        # dk/d(log ℓ_d) = σ² (5/3)(1 + √5 r) exp(−√5 r) · (Δ_d/ℓ_d)²
        common = self.outputscale * (5.0 / 3.0) * (1.0 + sr) * np.exp(-sr)
        for d in range(self.n_dims):
            grads.append(common * per_dim[..., d])
        return grads


class Matern32Kernel(Kernel):
    """Matérn-3/2: k = σ² (1 + √3 r) exp(−√3 r)."""

    _SQRT3 = np.sqrt(3.0)

    def _k(self, x1, x2):
        d2 = _scaled_diffsq(x1, x2, self.lengthscales).sum(axis=-1)
        r = np.sqrt(np.clip(d2, 0.0, None))
        sr = self._SQRT3 * r
        return self.outputscale * (1.0 + sr) * np.exp(-sr)

    def gradients(self, x):
        x = check_array_2d("x", x, n_cols=self.n_dims)
        per_dim = _scaled_diffsq(x, x, self.lengthscales)
        r = np.sqrt(np.clip(per_dim.sum(axis=-1), 0.0, None))
        sr = self._SQRT3 * r
        k = self.outputscale * (1.0 + sr) * np.exp(-sr)
        grads = [k]
        # dk/d(log ℓ_d) = σ² · 3 · exp(−√3 r) · (Δ_d/ℓ_d)²  (limit-safe at r=0)
        common = self.outputscale * 3.0 * np.exp(-sr)
        for d in range(self.n_dims):
            grads.append(common * per_dim[..., d])
        return grads
