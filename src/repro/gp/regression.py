"""Exact Gaussian-process regression with marginal-likelihood fitting.

The outcome models of Algorithm 2 (line 4, "Fit the outcome functions
f by GP models") are standard exact GPs.  This implementation provides:

* y standardization (zero mean / unit variance internally);
* ARD kernel hyperparameters + observation noise, fitted by maximizing
  the log marginal likelihood with analytic gradients and multi-restart
  L-BFGS-B (``scipy.optimize.minimize``);
* predictive mean / variance / full covariance, and joint posterior
  sampling for the Monte-Carlo acquisition functions.

All heavy math is Cholesky-based: one ``safe_cholesky`` per fit
evaluation, triangular solves for α and the predictive terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_solve, solve_triangular
from scipy.optimize import minimize

from repro.gp.cache import cache_key, chol_cache
from repro.gp.kernels import Kernel, Matern52Kernel
from repro.obs import telemetry
from repro.utils import as_generator, check_array_1d, check_array_2d, safe_cholesky
from repro.utils.rng import RngLike

#: Bounds (in log space) keeping hyperparameters sane during fitting.
_LOG_BOUNDS = (-6.0, 6.0)
_LOG_NOISE_BOUNDS = (-12.0, 2.0)


@dataclass
class _FitState:
    """Cached Cholesky pieces for predictions."""

    chol: np.ndarray  # L with L Lᵀ = K + σ_n² I
    alpha: np.ndarray  # (K + σ_n² I)⁻¹ y


class GPRegressor:
    """Exact GP regression model.

    Parameters
    ----------
    kernel:
        Covariance kernel; default Matérn-5/2 with unit ARD lengthscales
        (dimension inferred at :meth:`fit` if not supplied).
    noise:
        Initial observation-noise variance (fitted unless
        ``optimize=False`` at fit time).
    normalize_y:
        Standardize targets internally (recommended).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        noise: float = 1e-2,
        normalize_y: bool = True,
    ) -> None:
        self.kernel = kernel
        self.noise = float(noise)
        if self.noise <= 0:
            raise ValueError(f"noise must be > 0, got {noise}")
        self.normalize_y = normalize_y
        self._x: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._state: _FitState | None = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._state is not None

    @property
    def n_train(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def _require_fitted(self) -> _FitState:
        if self._state is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._state

    # ------------------------------------------------------------------
    def _neg_mll_and_grad(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Negative log marginal likelihood and gradient in log-params.

        theta = [kernel log-params..., log noise].
        """
        assert self.kernel is not None and self._x is not None and self._y is not None
        self.kernel.set_log_params(theta[:-1])
        noise = float(np.exp(theta[-1]))
        n = self._x.shape[0]
        k = self.kernel(self._x) + noise * np.eye(n)
        try:
            ell = safe_cholesky(k)
        except np.linalg.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = cho_solve((ell, True), self._y)
        mll = (
            -0.5 * float(self._y @ alpha)
            - float(np.sum(np.log(np.diag(ell))))
            - 0.5 * n * np.log(2 * np.pi)
        )
        # gradient: ½ tr((ααᵀ − K⁻¹) dK/dθ)
        k_inv = cho_solve((ell, True), np.eye(n))
        inner = np.outer(alpha, alpha) - k_inv
        grads = self.kernel.gradients(self._x)
        grad = np.empty_like(theta)
        for j, dk in enumerate(grads):
            grad[j] = 0.5 * float(np.sum(inner * dk))
        # noise: dK/d(log σ_n²) = σ_n² I
        grad[-1] = 0.5 * noise * float(np.trace(inner))
        return -mll, -grad

    def fit(
        self,
        x,
        y,
        *,
        optimize: bool = True,
        n_restarts: int = 2,
        rng: RngLike = 0,
    ) -> "GPRegressor":
        """Condition on data, optionally optimizing hyperparameters.

        Parameters
        ----------
        x, y:
            Training inputs ``(n, d)`` and targets ``(n,)``.
        optimize:
            Maximize the marginal likelihood (multi-restart L-BFGS-B).
        n_restarts:
            Extra random restarts beyond the current parameter values.
        """
        x = check_array_2d("x", x)
        y = check_array_1d("y", y, min_len=1)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if self.kernel is None:
            self.kernel = Matern52Kernel(np.ones(x.shape[1]))
        if x.shape[1] != self.kernel.n_dims:
            raise ValueError(
                f"x has {x.shape[1]} dims but kernel expects {self.kernel.n_dims}"
            )
        self._x = x
        self._y_raw = y
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y)) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std

        if optimize and x.shape[0] >= 3:
            self._optimize_hyperparams(n_restarts=n_restarts, rng=rng)

        self._refresh_state()
        return self

    def _optimize_hyperparams(self, *, n_restarts: int, rng: RngLike) -> None:
        assert self.kernel is not None
        gen = as_generator(rng)
        n_kp = self.kernel.n_params
        bounds = [_LOG_BOUNDS] * n_kp + [_LOG_NOISE_BOUNDS]

        starts = [np.concatenate([self.kernel.get_log_params(), [np.log(self.noise)]])]
        for _ in range(max(0, n_restarts)):
            starts.append(
                np.concatenate(
                    [
                        gen.uniform(-1.5, 1.5, n_kp),
                        [gen.uniform(-6.0, -1.0)],
                    ]
                )
            )

        best_val = np.inf
        best_theta = starts[0]
        for s in starts:
            res = minimize(
                self._neg_mll_and_grad,
                s,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 200},
            )
            if res.fun < best_val:
                best_val = float(res.fun)
                best_theta = res.x
        self.kernel.set_log_params(best_theta[:-1])
        self.noise = float(np.exp(best_theta[-1]))

    def _compute_chol(self) -> np.ndarray:
        """Factorize K + σ_n²I with the jitter-retry ladder."""
        assert self.kernel is not None and self._x is not None
        n = self._x.shape[0]
        k = self.kernel(self._x) + self.noise * np.eye(n)
        # ``safe_cholesky`` already escalates its own jitter; optimizer-
        # chosen hyperparameters (near-zero noise, extreme lengthscales)
        # can still defeat it, so retry with successively larger
        # explicit diagonal inflation before giving up — the predictions
        # get slightly smoother rather than the whole run dying.
        scale = float(np.mean(np.diag(k))) or 1.0
        extra = 0.0
        last_exc: np.linalg.LinAlgError | None = None
        for _ in range(4):
            try:
                return safe_cholesky(k + extra * np.eye(n) if extra else k)
            except np.linalg.LinAlgError as exc:
                last_exc = exc
                telemetry.counter("gp.cholesky_jitter_retries")
                extra = extra * 100.0 if extra else 1e-2 * scale
        assert last_exc is not None
        raise last_exc

    def _chol_key(self) -> tuple:
        assert self.kernel is not None and self._x is not None
        return cache_key(self.kernel, self.noise, self._x, tag="reg")

    def _refresh_state(self) -> None:
        assert self.kernel is not None and self._x is not None and self._y is not None
        # The factorization depends only on (hyperparams, noise, X) —
        # α is y-dependent but O(n²), so it is recomputed per call.
        ell = chol_cache.get_or_compute(self._chol_key(), self._compute_chol)
        alpha = cho_solve((ell, True), self._y)
        self._state = _FitState(chol=ell, alpha=alpha)

    # ------------------------------------------------------------------
    def predict(
        self, x_new, *, return_cov: bool = False, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (or full covariance) at ``x_new``.

        Returns ``(mean, var)`` with shapes ``(m,)``/``(m,)``, or
        ``(mean, cov)`` with cov ``(m, m)`` when ``return_cov=True``.
        ``include_noise`` adds the observation noise to the variance
        (predictive distribution of a *measurement* rather than of f).
        """
        st = self._require_fitted()
        assert self.kernel is not None and self._x is not None
        x_new = check_array_2d("x_new", x_new, n_cols=self.kernel.n_dims)
        k_star = self.kernel(self._x, x_new)  # (n, m)
        mean = k_star.T @ st.alpha
        v = solve_triangular(st.chol, k_star, lower=True)  # (n, m)
        if return_cov:
            cov = self.kernel(x_new) - v.T @ v
            if include_noise:
                cov = cov + self.noise * np.eye(x_new.shape[0])
            out: np.ndarray = cov
        else:
            var = np.clip(self.kernel.diag(x_new) - np.sum(v**2, axis=0), 1e-12, None)
            if include_noise:
                var = var + self.noise
            out = var
        scale = self._y_std
        mean = mean * scale + self._y_mean
        out = out * scale**2
        return mean, out

    def sample_posterior(
        self, x_new, n_samples: int = 1, *, rng: RngLike = None
    ) -> np.ndarray:
        """Joint posterior samples of f at ``x_new``; shape (n_samples, m)."""
        from repro.gp.sampling import sample_mvn

        mean, cov = self.predict(x_new, return_cov=True)
        return sample_mvn(mean, cov, n_samples, rng=rng)

    def log_marginal_likelihood(self) -> float:
        """MLL at the current hyperparameters (standardized-y scale)."""
        self._require_fitted()
        assert self.kernel is not None
        theta = np.concatenate([self.kernel.get_log_params(), [np.log(self.noise)]])
        neg, _ = self._neg_mll_and_grad(theta)
        return -neg

    def hyperparameters(self) -> dict[str, object]:
        """JSON-safe snapshot of the fitted model's hyperparameters.

        Keys: ``kernel``, ``lengthscales``, ``outputscale``, ``noise``,
        ``n_train``, and — when fitted — ``log_marginal_likelihood``.
        This is what :mod:`repro.obs.diagnostics` emits per outcome GP.
        """
        out: dict[str, object] = {"noise": float(self.noise)}
        if self.kernel is not None:
            out["kernel"] = type(self.kernel).__name__
            out["lengthscales"] = [
                float(v) for v in np.atleast_1d(self.kernel.lengthscales)
            ]
            out["outputscale"] = float(self.kernel.outputscale)
        if self._x is not None:
            out["n_train"] = int(self._x.shape[0])
        if self.is_fitted:
            out["log_marginal_likelihood"] = float(self.log_marginal_likelihood())
        return out

    def log_predictive_density(self, x_test, y_test) -> float:
        """Mean log p(y_test | x_test, data) under the predictive marginals.

        The proper scoring rule for probabilistic regression — unlike
        R² it punishes over/under-confident variance, not just mean
        error.  Uses the noisy predictive (observation) distribution.
        """
        self._require_fitted()
        x_test = check_array_2d("x_test", x_test)
        y_test = check_array_1d("y_test", y_test, min_len=1)
        if x_test.shape[0] != y_test.shape[0]:
            raise ValueError(
                f"x_test has {x_test.shape[0]} rows but y_test has {y_test.shape[0]}"
            )
        mean, var = self.predict(x_test, include_noise=True)
        ll = -0.5 * (np.log(2 * np.pi * var) + (y_test - mean) ** 2 / var)
        return float(np.mean(ll))

    def update(self, x_new, y_new, *, fast: bool = True) -> "GPRegressor":
        """Condition on appended observations in place (no re-optimize).

        The fast path (default) extends the existing Cholesky factor by
        a block row — O(n²m) for m appended points instead of the
        O((n+m)³) from-scratch refactorization — then recomputes the
        y-standardization and α over the full data (O(n²)), so the
        resulting posterior matches ``fit(optimize=False)`` on the
        concatenated data to floating-point roundoff.  ``fast=False``
        is the reference escape hatch: a plain full refit.

        The fast path falls back to the full refit (counted as
        ``gp.rank1_fallbacks``) when the Schur complement is not
        positive definite — which only happens when the original factor
        needed extra jitter or the appended points (numerically)
        duplicate training inputs.
        """
        st = self._require_fitted()
        assert self.kernel is not None and self._x is not None
        assert self._y_raw is not None
        x_new = check_array_2d("x_new", x_new, n_cols=self.kernel.n_dims)
        y_new = check_array_1d("y_new", y_new, min_len=1)
        if x_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"x_new has {x_new.shape[0]} rows but y_new has {y_new.shape[0]}"
            )
        x_all = np.vstack([self._x, x_new])
        y_all = np.concatenate([self._y_raw, y_new])
        if not fast:
            return self.fit(x_all, y_all, optimize=False)

        n, m = self._x.shape[0], x_new.shape[0]
        k_cross = self.kernel(self._x, x_new)  # (n, m)
        k_new = self.kernel(x_new) + self.noise * np.eye(m)
        l12 = solve_triangular(st.chol, k_cross, lower=True)  # (n, m)
        schur = k_new - l12.T @ l12
        try:
            l22 = np.linalg.cholesky(schur)
        except np.linalg.LinAlgError:
            telemetry.counter("gp.rank1_fallbacks")
            return self.fit(x_all, y_all, optimize=False)
        ell = np.zeros((n + m, n + m))
        ell[:n, :n] = st.chol
        ell[n:, :n] = l12.T
        ell[n:, n:] = l22
        telemetry.counter("gp.rank1_updates")

        self._x = x_all
        self._y_raw = y_all
        if self.normalize_y:
            self._y_mean = float(np.mean(y_all))
            self._y_std = float(np.std(y_all)) or 1.0
        self._y = (y_all - self._y_mean) / self._y_std
        alpha = cho_solve((ell, True), self._y)
        self._state = _FitState(chol=ell, alpha=alpha)
        # Seed the shared cache so a later from-scratch fit on the same
        # (hyperparams, data) reuses this factor instead of refactoring.
        chol_cache.put(self._chol_key(), ell)
        return self

    def condition_on(self, x_extra, y_extra, *, fast: bool = True) -> "GPRegressor":
        """Return a refit copy including extra observations (no re-optimize)."""
        if self._x is None or self._y_raw is None:
            raise RuntimeError("model is not fitted; call fit() first")
        x_extra = check_array_2d("x_extra", x_extra)
        y_extra = check_array_1d("y_extra", y_extra)
        new = GPRegressor(self.kernel, noise=self.noise, normalize_y=self.normalize_y)
        new._x = self._x
        new._y_raw = self._y_raw
        new._y_mean, new._y_std = self._y_mean, self._y_std
        new._y = self._y
        new._state = self._state
        return new.update(x_extra, y_extra, fast=fast)
