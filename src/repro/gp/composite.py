"""Composite kernels: sums and products with gradient propagation.

Outcome surfaces sometimes decompose (e.g. a smooth resolution trend
plus small fps ripples); composite kernels let the bank express that
while keeping the analytic-gradient MLL fitting path intact.  The
composite's log-parameter vector concatenates its children's vectors.
"""

from __future__ import annotations

import numpy as np

from repro.gp.kernels import Kernel
from repro.utils import check_array_2d


class _BinaryKernel(Kernel):
    """Shared plumbing for two-child composites."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        if left.n_dims != right.n_dims:
            raise ValueError(
                f"children disagree on dims: {left.n_dims} vs {right.n_dims}"
            )
        self.left = left
        self.right = right
        # Kernel.__init__ intentionally not called: parameters live in
        # the children; the composite only forwards.

    @property
    def n_dims(self) -> int:
        return self.left.n_dims

    @property
    def lengthscales(self) -> np.ndarray:  # informational
        return np.concatenate([self.left.lengthscales, self.right.lengthscales])

    @lengthscales.setter
    def lengthscales(self, value) -> None:  # pragma: no cover - unused
        raise AttributeError("set children lengthscales directly")

    @property
    def n_params(self) -> int:
        return self.left.n_params + self.right.n_params

    def get_log_params(self) -> np.ndarray:
        return np.concatenate(
            [self.left.get_log_params(), self.right.get_log_params()]
        )

    def set_log_params(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.size != self.n_params:
            raise ValueError(f"expected {self.n_params} log-params, got {theta.size}")
        nl = self.left.n_params
        self.left.set_log_params(theta[:nl])
        self.right.set_log_params(theta[nl:])


class SumKernel(_BinaryKernel):
    """k(x, x') = k_left(x, x') + k_right(x, x')."""

    def _k(self, x1, x2):
        return self.left._k(x1, x2) + self.right._k(x1, x2)

    def diag(self, x):
        """Diagonal of k(x, x): sum of children's diagonals."""
        return self.left.diag(x) + self.right.diag(x)

    def gradients(self, x):
        return self.left.gradients(x) + self.right.gradients(x)


class ProductKernel(_BinaryKernel):
    """k(x, x') = k_left(x, x') · k_right(x, x')."""

    def _k(self, x1, x2):
        return self.left._k(x1, x2) * self.right._k(x1, x2)

    def diag(self, x):
        """Diagonal of k(x, x): product of children's diagonals."""
        return self.left.diag(x) * self.right.diag(x)

    def gradients(self, x):
        x = check_array_2d("x", x, n_cols=self.n_dims)
        kl = self.left._k(x, x)
        kr = self.right._k(x, x)
        grads = [g * kr for g in self.left.gradients(x)]
        grads += [kl * g for g in self.right.gradients(x)]
        return grads
