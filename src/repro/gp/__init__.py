"""Gaussian-process substrate (replaces BoTorch/GPyTorch).

Provides exactly the models the paper builds on:

* :class:`~repro.gp.regression.GPRegressor` — exact GP regression with
  ARD kernels and marginal-likelihood hyperparameter fitting (the
  outcome models f_1..f_5 of Algorithm 2);
* :class:`~repro.gp.preference.PreferenceGP` — pairwise-comparison
  probit GP with Laplace approximation (the preference model g of §4.2,
  after Chu & Ghahramani 2005);
* kernels with analytic marginal-likelihood gradients so fitting stays
  fast without autodiff.
"""

from repro.gp import cache
from repro.gp.cache import CholeskyCache, chol_cache
from repro.gp.kernels import Kernel, RBFKernel, Matern52Kernel, Matern32Kernel
from repro.gp.composite import SumKernel, ProductKernel
from repro.gp.regression import GPRegressor
from repro.gp.preference import PreferenceGP, ComparisonData, cross_validate_preference
from repro.gp.sampling import sample_mvn, sample_posterior

__all__ = [
    "CholeskyCache",
    "cache",
    "chol_cache",
    "Kernel",
    "RBFKernel",
    "Matern52Kernel",
    "Matern32Kernel",
    "SumKernel",
    "ProductKernel",
    "GPRegressor",
    "PreferenceGP",
    "ComparisonData",
    "cross_validate_preference",
    "sample_mvn",
    "sample_posterior",
]
