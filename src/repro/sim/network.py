"""Uplink model: per-server serialization link.

The paper's cameras share a WiFi router but each edge server has its own
uplink bandwidth B_q (§3, Eq. 5; §5.2 draws them from {5..30} Mbps).  The
link is a FIFO serializer: a frame of ``bits`` occupies the link for
``bits / bandwidth`` seconds, and concurrent frames to the same server
queue behind each other.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import EventQueue
from repro.utils import check_positive


class UplinkLink:
    """FIFO serializing link toward one edge server."""

    def __init__(self, server_id: int, bandwidth_mbps: float, queue: EventQueue) -> None:
        check_positive("bandwidth_mbps", bandwidth_mbps)
        self.server_id = int(server_id)
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.nominal_mbps = float(bandwidth_mbps)
        self._queue = queue
        self._free_at = 0.0
        self.bits_sent = 0.0

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    def transfer_time(self, bits: float) -> float:
        """Pure serialization delay for ``bits`` (no queueing)."""
        check_positive("bits", bits)
        return bits / self.bandwidth_bps

    def set_bandwidth(self, bandwidth_mbps: float) -> None:
        """Fault injection: change the link rate for *future* sends.

        Frames already accepted keep their scheduled arrival; only new
        :meth:`send` calls see the updated rate.  Use
        :meth:`restore_bandwidth` to return to the construction-time
        nominal value.
        """
        check_positive("bandwidth_mbps", bandwidth_mbps)
        self.bandwidth_mbps = float(bandwidth_mbps)

    def restore_bandwidth(self) -> None:
        """Reset the link to its nominal (construction-time) bandwidth."""
        self.bandwidth_mbps = self.nominal_mbps

    def send(self, bits: float, on_delivered: Callable[[float], None]) -> float:
        """Enqueue ``bits`` now; invoke ``on_delivered(arrival_time)``.

        Returns the scheduled arrival time.  Transmission begins when the
        link frees up (FIFO), so bursts to the same server serialize.
        """
        start = max(self._queue.now, self._free_at)
        arrival = start + self.transfer_time(bits)
        self._free_at = arrival
        self.bits_sent += bits
        self._queue.schedule(arrival, lambda t=arrival: on_delivered(t))
        return arrival

    def mean_throughput(self, horizon: float) -> float:
        """Average delivered Mbps over ``[0, horizon]``."""
        check_positive("horizon", horizon)
        return self.bits_sent / horizon / 1e6
