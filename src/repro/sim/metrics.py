"""Measurement containers produced by a simulation run.

``SimulationReport`` is the simulator's entire public surface to the
scheduler: per-stream latency/jitter statistics and per-server resource
usage, plus the aggregate outcome quantities that §3's outcome functions
model (mean e2e latency, total bandwidth, total computation, total
power).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class StreamMetrics:
    """Per-stream frame timing statistics."""

    stream_id: int
    latencies: np.ndarray  # e2e seconds per completed frame
    queueing_delays: np.ndarray  # seconds spent waiting at the server
    frames_emitted: int
    frames_completed: int

    def __post_init__(self) -> None:
        self.latencies = np.asarray(self.latencies, dtype=float)
        self.queueing_delays = np.asarray(self.queueing_delays, dtype=float)

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies.size else float("nan")

    @property
    def p99_latency(self) -> float:
        return float(np.percentile(self.latencies, 99)) if self.latencies.size else float("nan")

    @property
    def max_jitter(self) -> float:
        """Worst queueing delay; exactly zero for a zero-jitter schedule."""
        return float(np.max(self.queueing_delays)) if self.queueing_delays.size else 0.0

    @property
    def jitter_std(self) -> float:
        return float(np.std(self.latencies)) if self.latencies.size else 0.0


@dataclass
class ServerMetrics:
    """Per-server resource accounting over the horizon."""

    server_id: int
    utilization: float  # busy fraction in [0, ~1]
    energy_joules: float
    frames_processed: int
    uplink_mbps: float  # mean delivered uplink throughput


@dataclass
class SimulationReport:
    """Everything observed in one run."""

    horizon: float
    streams: dict[int, StreamMetrics]
    servers: dict[int, ServerMetrics]
    total_flops: float  # TFLOPs executed over the horizon

    @property
    def mean_latency(self) -> float:
        """Mean of per-stream mean latencies (Eq. 5's aggregate)."""
        vals = [m.mean_latency for m in self.streams.values() if m.latencies.size]
        return float(np.mean(vals)) if vals else float("nan")

    @property
    def max_jitter(self) -> float:
        """Worst queueing delay across all streams."""
        vals = [m.max_jitter for m in self.streams.values()]
        return float(np.max(vals)) if vals else 0.0

    @property
    def total_bandwidth_mbps(self) -> float:
        return float(sum(s.uplink_mbps for s in self.servers.values()))

    @property
    def total_power_watts(self) -> float:
        return float(sum(s.energy_joules for s in self.servers.values())) / self.horizon

    @property
    def computation_tflops(self) -> float:
        """Aggregate compute rate (TFLOP/s) over the horizon."""
        return self.total_flops / self.horizon

    @property
    def completion_ratio(self) -> float:
        emitted = sum(m.frames_emitted for m in self.streams.values())
        done = sum(m.frames_completed for m in self.streams.values())
        return done / emitted if emitted else 1.0
