"""Cluster wiring: periodic streams feeding links feeding servers.

:class:`EdgeCluster` instantiates the event queue, one
:class:`~repro.sim.server.EdgeServer` + :class:`~repro.sim.network.UplinkLink`
per node, and a periodic frame source per stream.  Running the cluster
yields a :class:`~repro.sim.metrics.SimulationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.obs import telemetry
from repro.sim.events import EventQueue
from repro.sim.metrics import ServerMetrics, SimulationReport, StreamMetrics
from repro.sim.network import UplinkLink
from repro.sim.server import EdgeServer, QueuedFrame
from repro.utils import check_positive
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE


@dataclass(frozen=True)
class StreamSpec:
    """Runtime description of one periodic stream.

    Parameters
    ----------
    stream_id:
        Unique identifier.
    fps:
        Frame sampling rate s_i (frames per second).
    processing_time:
        p_i — inference seconds per frame on any (homogeneous) server.
    bits_per_frame:
        Encoded frame size, for uplink serialization and bandwidth.
    flops_per_frame:
        Compute cost per frame in TFLOPs (for the computation outcome).
    offset:
        Phase offset o(τ_i) of the first frame (Theorem 1's start times).
    """

    stream_id: int
    fps: float
    processing_time: float
    bits_per_frame: float
    flops_per_frame: float = 0.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        check_positive("fps", self.fps)
        check_positive("processing_time", self.processing_time)
        check_positive("bits_per_frame", self.bits_per_frame)
        check_positive("flops_per_frame", self.flops_per_frame, strict=False)
        check_positive("offset", self.offset, strict=False)

    @property
    def period(self) -> float:
        """Inter-arrival period T_i = 1 / s_i."""
        return 1.0 / self.fps


class EdgeCluster:
    """N homogeneous edge servers with individual uplinks."""

    def __init__(
        self,
        bandwidths_mbps: Sequence[float],
        *,
        profile: DeviceProfile = JETSON_NX_PROFILE,
    ) -> None:
        if len(bandwidths_mbps) == 0:
            raise ValueError("cluster needs at least one server")
        self.queue = EventQueue()
        self.profile = profile
        self.servers = [
            EdgeServer(j, self.queue, profile=profile) for j in range(len(bandwidths_mbps))
        ]
        self.links = [
            UplinkLink(j, float(b), self.queue) for j, b in enumerate(bandwidths_mbps)
        ]

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def _install_fault_plan(
        self, fault_plan, active: dict[int, bool], horizon: float
    ) -> None:
        """Schedule a :class:`~repro.resilience.faults.FaultPlan` replay.

        Events run at negative priority so a fault taking effect at
        time t applies before any frame emitted at t.  Each application
        emits a ``fault.inject`` telemetry event and bumps the
        ``fault.injected`` counter.
        """

        def apply(event) -> None:
            kind = event.kind
            target = int(event.target)
            if kind in ("server_crash", "server_recover", "bandwidth_drop",
                        "bandwidth_restore"):
                if not (0 <= target < self.n_servers):
                    raise ValueError(
                        f"fault target {target} out of range for "
                        f"{self.n_servers} servers"
                    )
            elif target not in active:
                raise ValueError(f"fault targets unknown stream {target}")
            dropped = 0
            if kind == "server_crash":
                dropped = self.servers[target].crash()
            elif kind == "server_recover":
                self.servers[target].recover()
            elif kind == "bandwidth_drop":
                self.links[target].set_bandwidth(
                    self.links[target].nominal_mbps * float(event.value)
                )
            elif kind == "bandwidth_restore":
                self.links[target].restore_bandwidth()
            elif kind == "stream_leave":
                active[target] = False
            elif kind == "stream_join":
                active[target] = True
            telemetry.counter("fault.injected")
            telemetry.event(
                "fault.inject",
                kind=kind,
                target=target,
                value=event.value,
                time=self.queue.now,
                frames_dropped=dropped,
            )

        for event in fault_plan:
            if event.time <= horizon:
                self.queue.schedule(
                    event.time, lambda e=event: apply(e), priority=-5
                )

    def run(
        self,
        streams: Sequence[StreamSpec],
        assignment: Sequence[int],
        horizon: float,
        *,
        fault_plan=None,
    ) -> SimulationReport:
        """Simulate ``streams`` mapped by ``assignment`` for ``horizon`` s.

        ``assignment[i]`` is the 0-based server index for ``streams[i]``;
        ``-1`` drops the stream (it emits nothing).  Frames still in
        flight at the horizon are not counted as completed.

        ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan`
        or any iterable of fault events) replays deterministic faults
        into the run: server crashes drop queued/in-flight frames,
        bandwidth drops stretch uplink serialization, and stream
        leave/join events gate frame emission.
        """
        check_positive("horizon", horizon)
        if len(assignment) != len(streams):
            raise ValueError(
                f"{len(streams)} streams but {len(assignment)} assignment entries"
            )
        for q in assignment:
            if q != -1 and not (0 <= q < self.n_servers):
                raise ValueError(f"assignment {q} out of range for {self.n_servers} servers")

        emitted = {s.stream_id: 0 for s in streams}
        completed: dict[int, list[QueuedFrame]] = {s.stream_id: [] for s in streams}
        active = {s.stream_id: True for s in streams}
        total_flops = 0.0

        def make_emitter(spec: StreamSpec, server: EdgeServer, link: UplinkLink):
            def emit() -> None:
                nonlocal total_flops
                emit_time = self.queue.now
                # An inactive (left) stream keeps its emission chain
                # ticking silently so a later join resumes in phase.
                if active[spec.stream_id]:
                    emitted[spec.stream_id] += 1
                    frame_id = emitted[spec.stream_id]

                    def on_delivered(arrival: float) -> None:
                        nonlocal total_flops
                        total_flops += spec.flops_per_frame
                        server.submit(
                            QueuedFrame(
                                stream_id=spec.stream_id,
                                frame_id=frame_id,
                                emit_time=emit_time,
                                arrival_time=arrival,
                                processing_time=spec.processing_time,
                                on_done=lambda fr, t: completed[spec.stream_id].append(fr),
                            )
                        )

                    link.send(spec.bits_per_frame, on_delivered)
                nxt = emit_time + spec.period
                if nxt <= horizon:
                    self.queue.schedule(nxt, emit)

            return emit

        for spec, q in zip(streams, assignment):
            if q == -1:
                continue
            start = spec.offset
            if start <= horizon:
                self.queue.schedule(start, make_emitter(spec, self.servers[q], self.links[q]))

        if fault_plan is not None:
            self._install_fault_plan(fault_plan, active, horizon)

        with telemetry.span("sim.run"):
            self.queue.run(until=horizon)
        telemetry.counter("sim.frames_emitted", sum(emitted.values()))
        telemetry.counter(
            "sim.frames_completed", sum(len(v) for v in completed.values())
        )
        telemetry.counter(
            "sim.frames_dropped", sum(srv.frames_dropped for srv in self.servers)
        )
        telemetry.counter("sim.runs")

        stream_metrics = {}
        for spec in streams:
            frames = completed[spec.stream_id]
            lat = np.array([f.finish_time - f.emit_time for f in frames])
            qd = np.array([f.queueing_delay for f in frames])
            stream_metrics[spec.stream_id] = StreamMetrics(
                stream_id=spec.stream_id,
                latencies=lat,
                queueing_delays=qd,
                frames_emitted=emitted[spec.stream_id],
                frames_completed=len(frames),
            )

        server_metrics = {
            srv.server_id: ServerMetrics(
                server_id=srv.server_id,
                utilization=srv.utilization(horizon),
                energy_joules=srv.energy_consumed(horizon),
                frames_processed=srv.frames_processed,
                uplink_mbps=link.mean_throughput(horizon),
            )
            for srv, link in zip(self.servers, self.links)
        }

        return SimulationReport(
            horizon=horizon,
            streams=stream_metrics,
            servers=server_metrics,
            total_flops=total_flops,
        )
