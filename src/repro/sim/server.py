"""Edge-server model: a FIFO inference queue over one accelerator.

A server processes one frame at a time (the Triton instance in the paper
runs a single TensorRT execution context per device).  Frames that arrive
while the accelerator is busy wait in FIFO order — that waiting time is
exactly the *delay jitter* of the paper's Figure 4.  The server also
integrates busy time into energy via the device profile.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.events import EventQueue
from repro.utils import check_positive
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE


@dataclass
class QueuedFrame:
    """A frame waiting for (or undergoing) inference."""

    stream_id: int
    frame_id: int
    emit_time: float  # when the camera captured it
    arrival_time: float  # when it finished uplink transmission
    processing_time: float  # inference seconds required
    on_done: Optional[Callable[["QueuedFrame", float], None]] = None
    start_time: float = float("nan")
    finish_time: float = float("nan")

    @property
    def queueing_delay(self) -> float:
        """Seconds spent waiting behind other frames (the jitter term)."""
        return self.start_time - self.arrival_time


class EdgeServer:
    """FIFO single-executor inference server with energy accounting."""

    def __init__(
        self,
        server_id: int,
        queue: EventQueue,
        *,
        profile: DeviceProfile = JETSON_NX_PROFILE,
    ) -> None:
        self.server_id = int(server_id)
        self._queue = queue
        self.profile = profile
        self._pending: deque[QueuedFrame] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.frames_processed = 0
        self.frames_dropped = 0
        self.completed: list[QueuedFrame] = []
        self._speed_factor = 1.0
        self._crashed = False
        self._crash_epoch = 0

    @property
    def backlog(self) -> int:
        """Number of frames waiting (excluding the one being processed)."""
        return len(self._pending)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> int:
        """Fail the server: drop queued and in-flight frames.

        The pending queue empties (each frame counted in
        :attr:`frames_dropped`), the frame currently on the accelerator
        is discarded when its completion event fires, and frames
        submitted while crashed are dropped on arrival.  Returns the
        number of frames dropped immediately.
        """
        dropped = len(self._pending) + (1 if self._busy else 0)
        self.frames_dropped += dropped
        self._pending.clear()
        self._crashed = True
        self._crash_epoch += 1
        self._busy = False
        return dropped

    def recover(self) -> None:
        """Bring a crashed server back; it resumes from an empty queue."""
        self._crashed = False
        if self._pending and not self._busy:
            self._start_next()

    def submit(self, frame: QueuedFrame) -> None:
        """Accept a frame at the current simulation time."""
        check_positive("processing_time", frame.processing_time)
        if self._crashed:
            self.frames_dropped += 1
            return
        self._pending.append(frame)
        if not self._busy:
            self._start_next()

    @property
    def speed_factor(self) -> float:
        """Current throughput multiplier (1.0 = nominal)."""
        return self._speed_factor

    def set_speed_factor(self, factor: float) -> None:
        """Failure/degradation injection: scale future processing speed.

        ``factor < 1`` models thermal throttling or co-tenant
        interference; ``factor > 1`` a faster replacement node.  Applies
        to frames *starting* after the call (the current frame's finish
        event is already scheduled).
        """
        check_positive("factor", factor)
        self._speed_factor = float(factor)

    def schedule_slowdown(self, at_time: float, factor: float) -> None:
        """Arrange a speed change at a future simulation time."""
        self._queue.schedule(at_time, lambda: self.set_speed_factor(factor))

    def _start_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        frame = self._pending.popleft()
        self._busy = True
        frame.start_time = self._queue.now
        effective = frame.processing_time / self._speed_factor
        finish = self._queue.now + effective
        epoch = self._crash_epoch

        def _complete(
            fr: QueuedFrame = frame, t: float = finish, dt: float = effective
        ) -> None:
            if self._crashed or epoch != self._crash_epoch:
                # the server died while this frame was on the accelerator;
                # crash() already counted it as dropped
                return
            fr.finish_time = t
            self.busy_time += dt
            self.frames_processed += 1
            self.completed.append(fr)
            if fr.on_done is not None:
                fr.on_done(fr, t)
            self._start_next()

        self._queue.schedule(finish, _complete, priority=-1)

    def energy_consumed(self, horizon: float) -> float:
        """Joules over ``[0, horizon]``: idle draw plus busy-time surplus."""
        check_positive("horizon", horizon)
        return self.profile.idle_power * horizon + self.profile.compute_power * self.busy_time

    def utilization(self, horizon: float) -> float:
        """Busy fraction of the horizon."""
        check_positive("horizon", horizon)
        return self.busy_time / horizon
