"""Discrete-event edge testbed substrate.

Replaces the Jetson/Triton/WiFi testbed of §5.1.  Periodic video streams
emit frames; each frame is serialized over its camera's uplink to the
assigned edge server, queued FIFO, and processed for the stream's
per-frame processing time.  The engine records per-frame end-to-end
latency, queueing delay (jitter), server utilization, and energy — the
exact observables the paper's scheduler consumes, including the
contention pathologies of Figures 3(a) and 4 that the zero-jitter
constraint removes.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.server import EdgeServer
from repro.sim.network import UplinkLink
from repro.sim.cluster import EdgeCluster, StreamSpec
from repro.sim.metrics import StreamMetrics, ServerMetrics, SimulationReport
from repro.sim.runner import simulate_schedule
from repro.sim.trace import (
    BandwidthTrace,
    TracedUplinkLink,
    FrameEvent,
    FrameTraceRecorder,
)

__all__ = [
    "Event",
    "EventQueue",
    "EdgeServer",
    "UplinkLink",
    "EdgeCluster",
    "StreamSpec",
    "StreamMetrics",
    "ServerMetrics",
    "SimulationReport",
    "simulate_schedule",
    "BandwidthTrace",
    "TracedUplinkLink",
    "FrameEvent",
    "FrameTraceRecorder",
]
