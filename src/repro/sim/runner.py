"""High-level entry point: simulate a configuration + scheduling decision.

Bridges the scheduler's decision variables — per-stream resolution ``r_i``
(pixels), frame sampling rate ``s_i`` (fps), and server assignment ``q_i``
— to the event-level simulation, using the device profile for processing
time/FLOPs and the encoder model for frame bits.

Offsets within each server group are staggered by cumulative processing
time, exactly the start times ``o(τ_k) = Σ_{i<k} p_i`` used in the proof
of Theorem 1, so a schedule satisfying Const2 runs with (near-)zero
measured jitter; only uplink serialization can add a small residual.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs import telemetry
from repro.sim.cluster import EdgeCluster, StreamSpec
from repro.sim.metrics import SimulationReport
from repro.utils import check_positive
from repro.video.encoder import EncoderModel
from repro.video.profiles import DeviceProfile, JETSON_NX_PROFILE


def build_stream_specs(
    resolutions: Sequence[float],
    fps: Sequence[float],
    assignment: Sequence[int],
    *,
    profile: DeviceProfile = JETSON_NX_PROFILE,
    encoder: EncoderModel | None = None,
    textures: Sequence[float] | None = None,
    stagger: bool = True,
) -> list[StreamSpec]:
    """Derive :class:`StreamSpec` objects from decision variables."""
    enc = encoder or EncoderModel()
    m = len(resolutions)
    if not (len(fps) == len(assignment) == m):
        raise ValueError(
            f"resolutions ({m}), fps ({len(fps)}), assignment ({len(assignment)}) "
            "must have equal length"
        )
    tex = list(textures) if textures is not None else [1.0] * m
    if len(tex) != m:
        raise ValueError(f"textures must have length {m}, got {len(tex)}")

    offsets = np.zeros(m)
    if stagger:
        cumulative: dict[int, float] = {}
        for i, q in enumerate(assignment):
            if q == -1:
                continue
            offsets[i] = cumulative.get(q, 0.0)
            cumulative[q] = offsets[i] + profile.processing_time(resolutions[i])

    return [
        StreamSpec(
            stream_id=i,
            fps=float(fps[i]),
            processing_time=profile.processing_time(resolutions[i]),
            bits_per_frame=enc.bits_per_frame(resolutions[i], texture=tex[i]),
            flops_per_frame=profile.flops_per_frame(resolutions[i]),
            offset=float(offsets[i]),
        )
        for i in range(m)
    ]


def simulate_schedule(
    resolutions: Sequence[float],
    fps: Sequence[float],
    assignment: Sequence[int],
    bandwidths_mbps: Sequence[float],
    *,
    horizon: float = 10.0,
    profile: DeviceProfile = JETSON_NX_PROFILE,
    encoder: EncoderModel | None = None,
    textures: Sequence[float] | None = None,
    stagger: bool = True,
) -> SimulationReport:
    """Run one decision through the discrete-event testbed.

    Parameters
    ----------
    resolutions, fps, assignment:
        Decision variables per stream (``assignment[i] == -1`` drops i).
    bandwidths_mbps:
        Uplink bandwidth per server (length = number of servers).
    horizon:
        Simulated wall-clock seconds.
    stagger:
        Apply Theorem-1 start-time staggering within each server group.
    """
    check_positive("horizon", horizon)
    with telemetry.span("sim.schedule"):
        specs = build_stream_specs(
            resolutions,
            fps,
            assignment,
            profile=profile,
            encoder=encoder,
            textures=textures,
            stagger=stagger,
        )
        cluster = EdgeCluster(bandwidths_mbps, profile=profile)
        return cluster.run(specs, assignment, horizon)
