"""Minimal heap-based discrete-event engine.

Events are ``(time, priority, seq, payload)`` tuples in a binary heap.
The explicit ``seq`` tie-breaker makes simultaneous events deterministic
(FIFO in insertion order), which the jitter theorems rely on: a frame
arriving exactly when the previous one completes must not be counted as
delayed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled occurrence; ordering is (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic event heap with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[], None], *, priority: int = 0) -> Event:
        """Enqueue ``action`` at absolute ``time`` (must not be in the past)."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        ev = Event(time=float(time), priority=priority, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: float, action: Callable[[], None], *, priority: int = 0) -> Event:
        """Enqueue ``action`` after relative ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, action, priority=priority)

    def step(self) -> bool:
        """Pop and run the next event.  Returns False when the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.action()
            return True
        return False

    def run(self, until: Optional[float] = None, *, max_events: int = 10_000_000) -> int:
        """Run events until the horizon (inclusive) or exhaustion.

        Returns the number of events executed.  ``max_events`` guards
        against runaway self-rescheduling loops.
        """
        executed = 0
        while self._heap and executed < max_events:
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and nxt.time > until:
                break
            self.step()
            executed += 1
        if executed >= max_events:
            raise RuntimeError(f"event budget exhausted ({max_events} events)")
        if until is not None and until > self._now:
            self._now = until
        return executed
