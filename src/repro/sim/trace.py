"""Trace recording and time-varying bandwidth (§5.2's trace emulation).

Two facilities:

* :class:`BandwidthTrace` + :class:`TracedUplinkLink` — a piecewise-
  constant uplink-bandwidth timeline (the WiFi variation a real testbed
  exhibits; §5.2 uses "trace data to emulate more than four servers").
  The link looks up the bandwidth in effect when each transmission
  starts.
* :class:`FrameTraceRecorder` — per-frame event log (emit, arrival,
  start, finish) exported as arrays for offline analysis or replay.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.events import EventQueue
from repro.sim.network import UplinkLink
from repro.sim.server import QueuedFrame
from repro.utils import check_array_1d, check_positive


class BandwidthTrace:
    """Piecewise-constant bandwidth timeline.

    ``times[i]`` is when ``values[i]`` takes effect; ``times[0]`` must
    be 0 so the trace covers the whole run.  Lookup is O(log n).
    """

    def __init__(self, times, values_mbps) -> None:
        self.times = check_array_1d("times", times, min_len=1)
        self.values = check_array_1d("values_mbps", values_mbps, min_len=1)
        if self.times.size != self.values.size:
            raise ValueError(
                f"{self.times.size} times but {self.values.size} values"
            )
        if self.times[0] != 0.0:
            raise ValueError("trace must start at t=0")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(self.values <= 0):
            raise ValueError("bandwidth values must be positive")

    def at(self, t: float) -> float:
        """Bandwidth (Mbps) in effect at time ``t``."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        idx = bisect.bisect_right(self.times.tolist(), t) - 1
        return float(self.values[idx])

    @classmethod
    def constant(cls, mbps: float) -> "BandwidthTrace":
        check_positive("mbps", mbps)
        return cls([0.0], [mbps])

    @classmethod
    def random_walk(
        cls,
        horizon: float,
        *,
        step: float = 1.0,
        lo: float = 5.0,
        hi: float = 30.0,
        start: float | None = None,
        rng=None,
    ) -> "BandwidthTrace":
        """Synthetic WiFi-like trace: bounded random walk, 1 step/s."""
        from repro.utils import as_generator

        check_positive("horizon", horizon)
        gen = as_generator(rng)
        times = np.arange(0.0, horizon + step, step)
        vals = np.empty_like(times)
        vals[0] = start if start is not None else gen.uniform(lo, hi)
        for i in range(1, times.size):
            vals[i] = np.clip(
                vals[i - 1] + gen.normal(0, (hi - lo) * 0.08), lo, hi
            )
        return cls(times, vals)


class TracedUplinkLink(UplinkLink):
    """Uplink whose bandwidth follows a :class:`BandwidthTrace`.

    The serialization time of a frame uses the bandwidth in effect at
    transmission start (adequate for sub-second frames against
    second-scale traces).
    """

    def __init__(self, server_id: int, trace: BandwidthTrace, queue: EventQueue) -> None:
        super().__init__(server_id, trace.at(0.0), queue)
        self.trace = trace

    def send(self, bits: float, on_delivered: Callable[[float], None]) -> float:
        start = max(self._queue.now, self._free_at)
        self.bandwidth_mbps = self.trace.at(start)
        return super().send(bits, on_delivered)


@dataclass
class FrameEvent:
    """One frame's full lifecycle."""

    stream_id: int
    frame_id: int
    emit_time: float
    arrival_time: float
    start_time: float
    finish_time: float

    @property
    def e2e_latency(self) -> float:
        return self.finish_time - self.emit_time

    @property
    def queueing_delay(self) -> float:
        return self.start_time - self.arrival_time


@dataclass
class FrameTraceRecorder:
    """Collects per-frame events; attach via server ``on_done`` hooks."""

    events: list[FrameEvent] = field(default_factory=list)

    def record(self, frame: QueuedFrame) -> None:
        """Append a completed frame's lifecycle to the trace."""
        self.events.append(
            FrameEvent(
                stream_id=frame.stream_id,
                frame_id=frame.frame_id,
                emit_time=frame.emit_time,
                arrival_time=frame.arrival_time,
                start_time=frame.start_time,
                finish_time=frame.finish_time,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar export: one array per field, row per frame."""
        if not self.events:
            return {
                k: np.zeros(0)
                for k in (
                    "stream_id", "frame_id", "emit_time", "arrival_time",
                    "start_time", "finish_time",
                )
            }
        return {
            "stream_id": np.array([e.stream_id for e in self.events]),
            "frame_id": np.array([e.frame_id for e in self.events]),
            "emit_time": np.array([e.emit_time for e in self.events]),
            "arrival_time": np.array([e.arrival_time for e in self.events]),
            "start_time": np.array([e.start_time for e in self.events]),
            "finish_time": np.array([e.finish_time for e in self.events]),
        }

    def summary(self) -> dict[str, float]:
        """Aggregate latency/jitter statistics over the whole trace."""
        if not self.events:
            return {"n_frames": 0.0}
        lat = np.array([e.e2e_latency for e in self.events])
        qd = np.array([e.queueing_delay for e in self.events])
        return {
            "n_frames": float(len(self.events)),
            "mean_latency": float(lat.mean()),
            "p99_latency": float(np.percentile(lat, 99)),
            "max_queueing_delay": float(qd.max()),
            "mean_queueing_delay": float(qd.mean()),
        }
