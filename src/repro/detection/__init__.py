"""Object-detection analytics substrate.

Replaces the paper's YOLOv8-on-Triton stack with a simulated detector whose
error modes depend on the video configuration, plus a *real* mAP
implementation (greedy IoU matching + 101-point interpolated AP, the COCO
convention) so accuracy numbers are produced by an actual evaluation
pipeline rather than a hard-coded curve.
"""

from repro.detection.boxes import Box, iou_matrix, box_area, clip_boxes
from repro.detection.detector import DetectorModel, SimulatedDetector, Detection
from repro.detection.evaluate import (
    match_detections,
    average_precision,
    precision_recall_curve,
    mean_average_precision,
    mean_average_precision_range,
)

__all__ = [
    "Box",
    "iou_matrix",
    "box_area",
    "clip_boxes",
    "DetectorModel",
    "SimulatedDetector",
    "Detection",
    "match_detections",
    "average_precision",
    "precision_recall_curve",
    "mean_average_precision",
    "mean_average_precision_range",
]
