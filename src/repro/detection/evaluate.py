"""Detection evaluation: greedy matching, PR curves, AP, and mAP.

Implements the COCO-style 101-point interpolated average precision from
scratch.  Given per-frame ground-truth boxes and scored detections, frames
are pooled, detections sorted by confidence, matched greedily to the
highest-IoU unmatched ground truth at a threshold (0.5 by default), and
the interpolated precision envelope integrated over recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.detection.boxes import iou_matrix


@dataclass
class FrameResult:
    """Detections and ground truth for one evaluated frame."""

    gt_boxes: np.ndarray  # (g, 4)
    det_boxes: np.ndarray  # (d, 4)
    det_scores: np.ndarray  # (d,)

    def __post_init__(self) -> None:
        self.gt_boxes = np.asarray(self.gt_boxes, dtype=float).reshape(-1, 4)
        self.det_boxes = np.asarray(self.det_boxes, dtype=float).reshape(-1, 4)
        self.det_scores = np.asarray(self.det_scores, dtype=float).reshape(-1)
        if self.det_boxes.shape[0] != self.det_scores.shape[0]:
            raise ValueError(
                f"{self.det_boxes.shape[0]} boxes but {self.det_scores.shape[0]} scores"
            )


def match_detections(
    gt_boxes: np.ndarray,
    det_boxes: np.ndarray,
    det_scores: np.ndarray,
    *,
    iou_threshold: float = 0.5,
) -> np.ndarray:
    """Greedy confidence-ordered matching within one frame.

    Returns a boolean array (len = #detections, in *score-descending*
    order alignment with the caller's arrays) marking true positives.
    Each ground-truth box can match at most one detection; detections are
    processed from highest to lowest confidence, taking the best still
    unmatched ground truth with IoU >= threshold.
    """
    gt_boxes = np.asarray(gt_boxes, dtype=float).reshape(-1, 4)
    det_boxes = np.asarray(det_boxes, dtype=float).reshape(-1, 4)
    det_scores = np.asarray(det_scores, dtype=float).reshape(-1)
    n_det = det_boxes.shape[0]
    tp = np.zeros(n_det, dtype=bool)
    if n_det == 0 or gt_boxes.shape[0] == 0:
        return tp
    order = np.argsort(-det_scores, kind="stable")
    ious = iou_matrix(det_boxes[order], gt_boxes)
    gt_used = np.zeros(gt_boxes.shape[0], dtype=bool)
    for rank, det_idx in enumerate(order):
        row = ious[rank].copy()
        row[gt_used] = -1.0
        best = int(np.argmax(row))
        if row[best] >= iou_threshold:
            gt_used[best] = True
            tp[det_idx] = True
    return tp


def precision_recall_curve(
    frames: Sequence[FrameResult],
    *,
    iou_threshold: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Pooled precision/recall over all frames, ordered by confidence.

    Returns ``(recall, precision)`` arrays of length = total detections.
    Recall is relative to the total number of ground-truth boxes.
    """
    all_scores: list[np.ndarray] = []
    all_tp: list[np.ndarray] = []
    n_gt = 0
    for fr in frames:
        n_gt += fr.gt_boxes.shape[0]
        if fr.det_boxes.shape[0] == 0:
            continue
        tp = match_detections(
            fr.gt_boxes, fr.det_boxes, fr.det_scores, iou_threshold=iou_threshold
        )
        all_scores.append(fr.det_scores)
        all_tp.append(tp)
    if not all_scores or n_gt == 0:
        return np.zeros(0), np.zeros(0)
    scores = np.concatenate(all_scores)
    tps = np.concatenate(all_tp)
    order = np.argsort(-scores, kind="stable")
    tps = tps[order]
    cum_tp = np.cumsum(tps)
    cum_fp = np.cumsum(~tps)
    recall = cum_tp / n_gt
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1)
    return recall, precision


def average_precision(
    recall: np.ndarray,
    precision: np.ndarray,
    *,
    n_points: int = 101,
) -> float:
    """COCO 101-point interpolated AP.

    Precision is replaced by its running maximum from the right (the
    interpolation envelope), then sampled at ``n_points`` evenly spaced
    recall levels and averaged.
    """
    recall = np.asarray(recall, dtype=float)
    precision = np.asarray(precision, dtype=float)
    if recall.size == 0:
        return 0.0
    # Monotone envelope: p_interp(r) = max_{r' >= r} p(r').
    env = np.maximum.accumulate(precision[::-1])[::-1]
    levels = np.linspace(0.0, 1.0, n_points)
    # For each level find the first recall >= level.
    idx = np.searchsorted(recall, levels, side="left")
    sampled = np.where(idx < recall.size, env[np.minimum(idx, recall.size - 1)], 0.0)
    return float(np.mean(sampled))


def mean_average_precision(
    frames_by_class: dict[int, Sequence[FrameResult]] | Sequence[FrameResult],
    *,
    iou_threshold: float = 0.5,
) -> float:
    """mAP across classes (or plain AP when given a single frame list)."""
    if isinstance(frames_by_class, dict):
        if not frames_by_class:
            return 0.0
        aps = []
        for frames in frames_by_class.values():
            r, p = precision_recall_curve(frames, iou_threshold=iou_threshold)
            aps.append(average_precision(r, p))
        return float(np.mean(aps))
    r, p = precision_recall_curve(frames_by_class, iou_threshold=iou_threshold)
    return average_precision(r, p)


def mean_average_precision_range(
    frames: Sequence[FrameResult],
    *,
    iou_thresholds: Sequence[float] | None = None,
) -> float:
    """COCO primary metric: AP averaged over IoU ∈ {0.50, 0.55, …, 0.95}.

    Stricter than mAP@0.5 — localization noise that survives a 0.5
    threshold fails 0.75+, so this metric separates detectors (and
    configurations) with similar mAP@0.5 but different box quality.
    """
    if iou_thresholds is None:
        iou_thresholds = np.arange(0.5, 0.96, 0.05)
    thresholds = np.asarray(list(iou_thresholds), dtype=float)
    if thresholds.size == 0:
        raise ValueError("iou_thresholds must be non-empty")
    if np.any((thresholds <= 0) | (thresholds > 1)):
        raise ValueError(f"IoU thresholds must lie in (0, 1], got {thresholds}")
    aps = []
    for t in thresholds:
        r, p = precision_recall_curve(frames, iou_threshold=float(t))
        aps.append(average_precision(r, p))
    return float(np.mean(aps))
