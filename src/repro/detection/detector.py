"""A simulated object detector with resolution-dependent error modes.

The real system runs YOLOv8; here detection quality must *emerge* from the
video configuration the scheduler controls, the way it does for a real
DNN:

* **Resolution** — after downscaling a frame to width ``r``, an object's
  apparent area shrinks quadratically.  Detection probability follows a
  logistic curve in log apparent-area (small objects vanish first), and
  localization noise grows as the object covers fewer pixels.
* **Frame sampling rate** — frames that are not sampled reuse the last
  detection (the standard tracking-by-detection fallback).  Objects move
  between frames, so held boxes drift away from the ground truth and IoU
  decays with the sampling period — which is exactly why mAP in Fig. 2 of
  the paper falls with FPS.
* **False positives** — Poisson background clutter with low confidence.

The detector never sees ground truth directly at inference time beyond
what a perception system would: it perturbs, drops, and hallucinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils import as_generator, check_in_range, check_positive
from repro.utils.rng import RngLike
from repro.detection.boxes import clip_boxes


@dataclass(frozen=True)
class DetectorModel:
    """Static quality parameters of the simulated detector.

    Parameters
    ----------
    reference_width:
        Native capture width in pixels; resolutions are interpreted
        relative to it when scaling apparent object sizes.
    area50:
        Apparent box area (px^2, at detection resolution) at which the
        detection probability is 50%.
    area_slope:
        Logistic slope in log-area units; larger = sharper size cut-off.
    max_recall:
        Detection probability ceiling for huge objects (model capacity).
    loc_noise:
        Localization jitter as a fraction of box size at the reference
        resolution; scales with 1/sqrt(apparent area ratio).
    fp_rate:
        Expected false positives per processed frame.
    score_noise:
        Std of Gaussian noise on confidence scores.
    """

    reference_width: float = 1920.0
    area50: float = 220.0
    area_slope: float = 1.35
    max_recall: float = 0.97
    loc_noise: float = 0.06
    fp_rate: float = 0.35
    score_noise: float = 0.08

    def __post_init__(self) -> None:
        check_positive("reference_width", self.reference_width)
        check_positive("area50", self.area50)
        check_positive("area_slope", self.area_slope)
        check_in_range("max_recall", self.max_recall, 0.0, 1.0)
        check_positive("loc_noise", self.loc_noise, strict=False)
        check_positive("fp_rate", self.fp_rate, strict=False)
        check_positive("score_noise", self.score_noise, strict=False)

    def detection_probability(self, apparent_area: np.ndarray) -> np.ndarray:
        """Logistic recall curve in log apparent-area."""
        area = np.clip(np.asarray(apparent_area, dtype=float), 1e-9, None)
        z = self.area_slope * (np.log(area) - np.log(self.area50))
        return self.max_recall / (1.0 + np.exp(-z))


@dataclass
class Detection:
    """Scored detections for a single frame."""

    boxes: np.ndarray  # (d, 4) in *reference* pixel coordinates
    scores: np.ndarray  # (d,)
    frame_index: int
    processed: bool  # True if inferred on this frame; False if held over

    def __post_init__(self) -> None:
        self.boxes = np.asarray(self.boxes, dtype=float).reshape(-1, 4)
        self.scores = np.asarray(self.scores, dtype=float).reshape(-1)


class SimulatedDetector:
    """Runs the detector model over a clip at a given configuration.

    The clip supplies per-frame ground-truth boxes in reference-resolution
    coordinates (see :mod:`repro.video.synthetic`).  ``detect_clip``
    samples frames at rate ``fps`` out of the clip's native rate, infers
    on sampled frames at resolution ``width``, and holds detections on
    skipped frames.
    """

    def __init__(self, model: DetectorModel | None = None, *, rng: RngLike = None):
        self.model = model or DetectorModel()
        self._rng = as_generator(rng)

    def infer_frame(
        self,
        gt_boxes: np.ndarray,
        width: float,
        *,
        frame_index: int = 0,
        frame_height: float | None = None,
    ) -> Detection:
        """Simulate inference on one frame downscaled to width ``width``."""
        m = self.model
        check_positive("width", width)
        gt = np.asarray(gt_boxes, dtype=float).reshape(-1, 4)
        scale = float(width) / m.reference_width
        fh = frame_height if frame_height is not None else m.reference_width * 9.0 / 16.0

        if gt.shape[0] > 0:
            w = gt[:, 2] - gt[:, 0]
            h = gt[:, 3] - gt[:, 1]
            apparent_area = (w * scale) * (h * scale)
            p_det = self.model.detection_probability(apparent_area)
            detected = self._rng.random(gt.shape[0]) < p_det
            kept = gt[detected]
            if kept.shape[0] > 0:
                kw = kept[:, 2] - kept[:, 0]
                kh = kept[:, 3] - kept[:, 1]
                # Localization noise grows as apparent pixels shrink.
                noise_frac = m.loc_noise / np.sqrt(np.maximum(scale, 1e-6))
                jitter = self._rng.normal(
                    0.0, 1.0, size=(kept.shape[0], 4)
                ) * (noise_frac * np.stack([kw, kh, kw, kh], axis=1))
                kept = kept + jitter
                # Repair inverted corners produced by extreme jitter.
                x1 = np.minimum(kept[:, 0], kept[:, 2])
                x2 = np.maximum(kept[:, 0], kept[:, 2])
                y1 = np.minimum(kept[:, 1], kept[:, 3])
                y2 = np.maximum(kept[:, 1], kept[:, 3])
                kept = np.stack([x1, y1, x2, y2], axis=1)
                scores = np.clip(
                    p_det[detected] + self._rng.normal(0, m.score_noise, kept.shape[0]),
                    0.01,
                    0.999,
                )
            else:
                scores = np.zeros(0)
        else:
            kept = np.zeros((0, 4))
            scores = np.zeros(0)

        n_fp = int(self._rng.poisson(m.fp_rate))
        if n_fp > 0:
            cx = self._rng.uniform(0, m.reference_width, n_fp)
            cy = self._rng.uniform(0, fh, n_fp)
            bw = self._rng.uniform(20, 140, n_fp)
            bh = self._rng.uniform(20, 140, n_fp)
            fp_boxes = np.stack([cx - bw / 2, cy - bh / 2, cx + bw / 2, cy + bh / 2], axis=1)
            fp_scores = self._rng.uniform(0.05, 0.45, n_fp)
            kept = np.vstack([kept, fp_boxes])
            scores = np.concatenate([scores, fp_scores])

        kept = clip_boxes(kept, m.reference_width, fh)
        return Detection(boxes=kept, scores=scores, frame_index=frame_index, processed=True)

    def detect_clip(
        self,
        gt_frames: Sequence[np.ndarray],
        width: float,
        fps: float,
        *,
        native_fps: float = 30.0,
        frame_height: float | None = None,
    ) -> list[Detection]:
        """Sample-and-hold detection over a whole clip.

        ``gt_frames[i]`` is the ground truth of native frame ``i``.  A
        frame is *processed* when the accumulated sampling phase crosses
        1; otherwise the previous detection is reused (``processed=False``),
        which is where low-FPS accuracy loss comes from.
        """
        check_positive("fps", fps)
        check_positive("native_fps", native_fps)
        if fps > native_fps:
            fps = native_fps
        results: list[Detection] = []
        phase = 1.0  # force processing of frame 0
        last: Detection | None = None
        step = fps / native_fps
        for i, gt in enumerate(gt_frames):
            phase += step
            if phase >= 1.0 or last is None:
                phase -= 1.0
                last = self.infer_frame(
                    gt, width, frame_index=i, frame_height=frame_height
                )
                results.append(last)
            else:
                results.append(
                    Detection(
                        boxes=last.boxes.copy(),
                        scores=last.scores.copy(),
                        frame_index=i,
                        processed=False,
                    )
                )
        return results
