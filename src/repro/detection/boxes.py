"""Vectorized axis-aligned bounding-box operations.

Boxes use ``(x1, y1, x2, y2)`` corner format in pixels, stored as float
arrays of shape ``(n, 4)``.  All pairwise operations are fully broadcast —
no Python loops — per the HPC guide's vectorization idiom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """A single box; convenience wrapper around the array format."""

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(f"degenerate box: {self}")

    def as_array(self) -> np.ndarray:
        """(4,) array in (x1, y1, x2, y2) order."""
        return np.array([self.x1, self.y1, self.x2, self.y2], dtype=float)

    @property
    def area(self) -> float:
        return (self.x2 - self.x1) * (self.y2 - self.y1)

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)


def _as_boxes(arr) -> np.ndarray:
    a = np.asarray(arr, dtype=float)
    if a.size == 0:
        return a.reshape(0, 4)
    if a.ndim == 1:
        a = a.reshape(1, 4)
    if a.ndim != 2 or a.shape[1] != 4:
        raise ValueError(f"boxes must have shape (n, 4), got {a.shape}")
    return a


def box_area(boxes) -> np.ndarray:
    """Areas of ``(n, 4)`` boxes; degenerate boxes clamp to zero area."""
    b = _as_boxes(boxes)
    w = np.clip(b[:, 2] - b[:, 0], 0.0, None)
    h = np.clip(b[:, 3] - b[:, 1], 0.0, None)
    return w * h


def clip_boxes(boxes, width: float, height: float) -> np.ndarray:
    """Clip boxes to the frame rectangle [0, width] x [0, height]."""
    b = _as_boxes(boxes).copy()
    b[:, [0, 2]] = np.clip(b[:, [0, 2]], 0.0, float(width))
    b[:, [1, 3]] = np.clip(b[:, [1, 3]], 0.0, float(height))
    return b


def iou_matrix(boxes_a, boxes_b) -> np.ndarray:
    """Pairwise intersection-over-union, shape ``(len(a), len(b))``.

    Runs in one broadcast pass: intersection corners via ``maximum`` /
    ``minimum`` on expanded axes, then the standard IoU ratio with a zero
    guard for empty unions.
    """
    a = _as_boxes(boxes_a)
    b = _as_boxes(boxes_b)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]))
    lt = np.maximum(a[:, None, :2], b[None, :, :2])  # (na, nb, 2)
    rb = np.minimum(a[:, None, 2:], b[None, :, 2:])
    wh = np.clip(rb - lt, 0.0, None)
    inter = wh[..., 0] * wh[..., 1]
    union = box_area(a)[:, None] + box_area(b)[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou
