"""Tests for the true preference (Eq. 13) and decision maker."""

import numpy as np
import pytest

from repro.pref import DecisionMaker, LinearL1Preference


@pytest.fixture
def pref():
    k = 5
    return LinearL1Preference(
        weights=np.ones(k),
        utopia=np.array([0.0, 1.0, 0.0, 0.0, 0.0]),  # best ltc/net/com/eng=0, acc=1
        lo=np.zeros(k),
        hi=np.ones(k),
    )


class TestLinearL1Preference:
    def test_utopia_scores_zero(self, pref):
        assert pref.value(pref.utopia) == pytest.approx(0.0)

    def test_farther_is_worse(self, pref):
        near = np.array([0.1, 0.9, 0.1, 0.1, 0.1])
        far = np.array([0.9, 0.1, 0.9, 0.9, 0.9])
        assert pref.value(near) > pref.value(far)

    def test_weights_emphasize_objectives(self, pref):
        # Heavier latency weight punishes latency deviation more.
        heavy_ltc = pref.with_weights([5.0, 1.0, 1.0, 1.0, 1.0])
        y_bad_ltc = np.array([1.0, 1.0, 0.0, 0.0, 0.0])
        y_bad_net = np.array([0.0, 1.0, 1.0, 0.0, 0.0])
        assert pref.value(y_bad_ltc) == pytest.approx(pref.value(y_bad_net))
        assert heavy_ltc.value(y_bad_ltc) < heavy_ltc.value(y_bad_net)

    def test_batched_evaluation(self, pref):
        ys = np.stack([pref.utopia, np.ones(5)])
        vals = pref.value(ys)
        assert vals.shape == (2,)
        assert vals[0] > vals[1]

    def test_normalization_applied(self):
        pref = LinearL1Preference(
            weights=np.ones(5),
            utopia=np.zeros(5),
            lo=np.zeros(5),
            hi=np.full(5, 100.0),
        )
        # raw deviation of 50 -> normalized 0.5 per objective
        assert pref.value(np.full(5, 50.0)) == pytest.approx(-2.5)

    def test_worst_value(self, pref):
        assert pref.worst_value == pytest.approx(-2.5)

    def test_negative_weights_raise(self, pref):
        with pytest.raises(ValueError):
            pref.with_weights([-1, 1, 1, 1, 1])

    def test_wrong_size_raises(self):
        with pytest.raises(ValueError):
            LinearL1Preference(
                weights=np.ones(3),
                utopia=np.zeros(5),
                lo=np.zeros(5),
                hi=np.ones(5),
            )


class TestDecisionMaker:
    def test_noiseless_always_correct(self, pref):
        dm = DecisionMaker(pref, noise_scale=0.0)
        better = np.array([0.1, 0.9, 0.1, 0.1, 0.1])
        worse = np.array([0.9, 0.1, 0.9, 0.9, 0.9])
        assert dm.compare(better, worse)
        assert not dm.compare(worse, better)

    def test_query_counter(self, pref):
        dm = DecisionMaker(pref)
        dm.compare(np.zeros(5), np.ones(5))
        dm.compare(np.zeros(5), np.ones(5))
        assert dm.n_queries == 2

    def test_noisy_sometimes_wrong_on_close_calls(self, pref):
        dm = DecisionMaker(pref, noise_scale=0.5, rng=0)
        a = np.array([0.50, 0.5, 0.5, 0.5, 0.5])
        b = np.array([0.51, 0.5, 0.5, 0.5, 0.5])
        answers = [dm.compare(a, b) for _ in range(200)]
        # a is (barely) better; noisy DM should still flip sometimes
        assert 20 < sum(answers) < 180

    def test_noisy_reliable_on_clear_calls(self, pref):
        dm = DecisionMaker(pref, noise_scale=0.05, rng=0)
        best = pref.utopia
        worst = np.array([1.0, 0.0, 1.0, 1.0, 1.0])
        answers = [dm.compare(best, worst) for _ in range(50)]
        assert sum(answers) >= 48

    def test_rank_pair(self, pref):
        dm = DecisionMaker(pref)
        better = np.array([0.1, 0.9, 0.1, 0.1, 0.1])
        worse = np.ones(5)
        w, l = dm.rank_pair(worse, better)
        np.testing.assert_array_equal(w, better)
        np.testing.assert_array_equal(l, worse)

    def test_negative_noise_raises(self, pref):
        with pytest.raises(ValueError):
            DecisionMaker(pref, noise_scale=-0.1)
