"""Tests for tiered-tariff / QoS-revenue pricing preferences."""

import numpy as np
import pytest

from repro.pref import PricingPreference, QoSRevenue, TieredTariff


class TestTieredTariff:
    def test_single_tier_linear(self):
        t = TieredTariff(thresholds=(), rates=(2.0,))
        assert t.cost(10.0) == pytest.approx(20.0)

    def test_two_tiers_doc_example(self):
        t = TieredTariff(thresholds=(100.0,), rates=(1.0, 2.0))
        assert t.cost(150.0) == pytest.approx(200.0)

    def test_three_tiers(self):
        t = TieredTariff(thresholds=(10.0, 20.0), rates=(1.0, 2.0, 4.0))
        # 10@1 + 10@2 + 5@4 = 50
        assert t.cost(25.0) == pytest.approx(50.0)

    def test_zero_consumption(self):
        t = TieredTariff(thresholds=(10.0,), rates=(1.0, 2.0))
        assert t.cost(0.0) == 0.0

    def test_broadcasts(self):
        t = TieredTariff(thresholds=(10.0,), rates=(1.0, 2.0))
        np.testing.assert_allclose(t.cost([5.0, 15.0]), [5.0, 20.0])

    def test_cost_is_convex_increasing(self):
        t = TieredTariff(thresholds=(10.0, 20.0), rates=(1.0, 2.0, 4.0))
        xs = np.linspace(0, 40, 41)
        c = t.cost(xs)
        d1 = np.diff(c)
        assert np.all(d1 >= 0)  # increasing
        assert np.all(np.diff(d1) >= -1e-9)  # marginal rate non-decreasing

    def test_marginal_rate(self):
        t = TieredTariff(thresholds=(10.0,), rates=(1.0, 3.0))
        assert t.marginal_rate(5.0) == 1.0
        assert t.marginal_rate(15.0) == 3.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TieredTariff(thresholds=(10.0,), rates=(1.0,))
        with pytest.raises(ValueError):
            TieredTariff(thresholds=(10.0, 5.0), rates=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            TieredTariff(thresholds=(), rates=(-1.0,))

    def test_negative_consumption_raises(self):
        t = TieredTariff(thresholds=(), rates=(1.0,))
        with pytest.raises(ValueError):
            t.cost(-1.0)


class TestQoSRevenue:
    def test_full_quality_full_revenue(self):
        q = QoSRevenue(base_revenue=100.0, slo_seconds=0.2, acc_target=0.8)
        assert q.revenue(0.1, 0.9) == pytest.approx(100.0)

    def test_accuracy_floor_zero_revenue(self):
        q = QoSRevenue(acc_floor=0.3)
        assert q.revenue(0.1, 0.2) == 0.0

    def test_accuracy_ramps_linearly(self):
        q = QoSRevenue(base_revenue=100.0, acc_floor=0.0, acc_target=1.0)
        assert q.revenue(0.0, 0.5) == pytest.approx(50.0)

    def test_slo_violation_halves_at_one_slo_over(self):
        q = QoSRevenue(base_revenue=100.0, slo_seconds=0.2, acc_target=0.5, acc_floor=0.0)
        full = q.revenue(0.2, 0.9)
        late = q.revenue(0.4, 0.9)  # one SLO beyond
        assert late == pytest.approx(full / 2)

    def test_monotonicity(self):
        q = QoSRevenue()
        assert q.revenue(0.1, 0.9) >= q.revenue(0.5, 0.9)
        assert q.revenue(0.1, 0.9) >= q.revenue(0.1, 0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            QoSRevenue(acc_floor=0.9, acc_target=0.5)
        with pytest.raises(ValueError):
            QoSRevenue(base_revenue=0.0)


class TestPricingPreference:
    def test_good_outcome_profitable(self):
        pref = PricingPreference()
        y = np.array([0.1, 0.85, 5.0, 10.0, 20.0])
        assert pref.value(y) > 0

    def test_costly_outcome_unprofitable(self):
        pref = PricingPreference()
        y = np.array([1.5, 0.2, 100.0, 200.0, 300.0])
        assert pref.value(y) < 0

    def test_tier_crossing_nonlinearity(self):
        """Doubling energy use beyond the tier more than doubles cost —
        no linear weighting reproduces this."""
        pref = PricingPreference()
        base = np.array([0.1, 0.85, 5.0, 10.0, 40.0])
        doubled = base.copy()
        doubled[4] = 80.0
        cost_low = pref.value(base)
        cost_high = pref.value(doubled)
        drop1 = cost_low - cost_high
        tripled = base.copy()
        tripled[4] = 120.0
        drop2 = cost_high - pref.value(tripled)
        assert drop2 > drop1  # marginal cost rose across the tier

    def test_batched(self):
        pref = PricingPreference()
        ys = np.stack(
            [[0.1, 0.9, 5, 10, 20], [0.5, 0.5, 30, 50, 80]]
        ).astype(float)
        vals = pref.value(ys)
        assert vals.shape == (2,)
        assert vals[0] > vals[1]

    def test_learnable_by_preference_gp(self):
        """PaMO's preference learner handles the non-linear rule."""
        from repro.core import EVAProblem
        from repro.pref import DecisionMaker, PreferenceLearner
        from repro.pref.metrics import pairwise_accuracy, sample_test_pairs

        problem = EVAProblem(n_streams=4, bandwidths_mbps=[10.0, 20.0, 30.0])
        pref = PricingPreference()
        gen = np.random.default_rng(0)
        ys = np.stack(
            [problem.evaluate(*problem.sample_decision(gen)) for _ in range(35)]
        )
        dm = DecisionMaker(pref, rng=0)
        learner = PreferenceLearner(ys, dm, rng=0).initialize(3).run(15)
        pairs = sample_test_pairs(ys, 200, rng=1)
        acc = pairwise_accuracy(learner.utility, pref.value, pairs)
        assert acc > 0.75, f"pricing-rule pairwise accuracy {acc:.3f}"
