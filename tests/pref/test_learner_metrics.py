"""Tests for the preference learner and its accuracy metric (Fig. 9)."""

import numpy as np
import pytest

from repro.pref import DecisionMaker, LinearL1Preference, PreferenceLearner
from repro.pref.metrics import pairwise_accuracy, sample_test_pairs


def _setup(seed=0, n_outcomes=30, noise=0.0):
    gen = np.random.default_rng(seed)
    space = gen.uniform(0, 1, (n_outcomes, 5))
    pref = LinearL1Preference(
        weights=np.array([1.0, 2.0, 0.5, 1.0, 1.5]),
        utopia=np.array([0.0, 1.0, 0.0, 0.0, 0.0]),
        lo=np.zeros(5),
        hi=np.ones(5),
    )
    dm = DecisionMaker(pref, noise_scale=noise, rng=seed)
    learner = PreferenceLearner(space, dm, rng=seed)
    return space, pref, dm, learner


class TestPreferenceLearner:
    def test_initialize_fits_model(self):
        _, _, _, learner = _setup()
        learner.initialize(n_pairs=3)
        assert learner.is_fitted
        assert learner.n_comparisons == 3

    def test_query_step_adds_comparison(self):
        _, _, dm, learner = _setup()
        learner.initialize(3)
        learner.query_step()
        assert learner.n_comparisons == 4
        assert dm.n_queries == 4

    def test_query_before_init_raises(self):
        _, _, _, learner = _setup()
        with pytest.raises(RuntimeError):
            learner.query_step()

    def test_run_n_queries(self):
        _, _, _, learner = _setup()
        learner.initialize(3).run(5)
        assert learner.n_comparisons == 8

    def test_utility_shape(self):
        space, _, _, learner = _setup()
        learner.initialize(5)
        u = learner.utility(space[:4])
        assert u.shape == (4,)

    def test_utility_before_fit_raises(self):
        _, _, _, learner = _setup()
        with pytest.raises(RuntimeError):
            learner.utility(np.zeros((1, 5)))

    def test_learned_ordering_matches_truth(self):
        space, pref, _, learner = _setup(seed=1)
        learner.initialize(4).run(14)
        pairs = sample_test_pairs(space, 200, rng=9)
        acc = pairwise_accuracy(learner.utility, pref.value, pairs)
        assert acc > 0.8

    def test_accuracy_improves_with_queries(self):
        accs = []
        for n_q in (0, 15):
            space, pref, _, learner = _setup(seed=2)
            learner.initialize(3).run(n_q)
            pairs = sample_test_pairs(space, 150, rng=5)
            accs.append(pairwise_accuracy(learner.utility, pref.value, pairs))
        assert accs[1] >= accs[0]

    def test_sample_utility_shape(self):
        space, _, _, learner = _setup()
        learner.initialize(5)
        s = learner.sample_utility(space[:3], n_samples=10, rng=0)
        assert s.shape == (10, 3)

    def test_small_space_raises(self):
        _, pref, dm, _ = _setup()
        with pytest.raises(ValueError):
            PreferenceLearner(np.zeros((1, 5)), dm)

    def test_uncertainty_decreases_with_data(self):
        space, _, _, learner = _setup(seed=3)
        learner.initialize(3)
        _, v0 = learner.utility_with_uncertainty(space[:10])
        learner.run(12)
        _, v1 = learner.utility_with_uncertainty(space[:10])
        assert np.mean(v1) < np.mean(v0)


class TestPairwiseAccuracy:
    def test_perfect_predictor(self):
        truth = lambda y: y[:, 0]
        pairs = [(np.array([1.0, 0]), np.array([0.0, 0]))]
        assert pairwise_accuracy(truth, truth, pairs) == 1.0

    def test_inverted_predictor(self):
        truth = lambda y: y[:, 0]
        inv = lambda y: -y[:, 0]
        pairs = [(np.array([1.0, 0]), np.array([0.0, 0]))]
        assert pairwise_accuracy(inv, truth, pairs) == 0.0

    def test_ties_count_half(self):
        truth = lambda y: y[:, 0]
        const = lambda y: np.zeros(len(y))
        pairs = [(np.array([1.0, 0]), np.array([0.0, 0]))]
        assert pairwise_accuracy(const, truth, pairs) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pairwise_accuracy(lambda y: y, lambda y: y, [])


class TestSampleTestPairs:
    def test_count_and_distinct(self):
        space = np.arange(20).reshape(10, 2).astype(float)
        pairs = sample_test_pairs(space, 50, rng=0)
        assert len(pairs) == 50
        for a, b in pairs:
            assert not np.array_equal(a, b)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sample_test_pairs(np.zeros((1, 2)), 5)
        with pytest.raises(ValueError):
            sample_test_pairs(np.zeros((5, 2)), 0)
