"""Tests for repro.obs.health: SLO rules, hysteresis, alert edges."""

import pytest

from repro.obs import HealthMonitor, SloRule, default_rules
from repro.obs.health import SEVERITIES, severity_rank


class TestSloRule:
    def test_holds_is_healthy_while(self):
        rule = SloRule(metric="p95", op="<", threshold=0.25)
        assert rule.holds(0.1)
        assert not rule.holds(0.3)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="comparator"):
            SloRule(metric="x", op="==", threshold=1.0)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            SloRule(metric="x", op="<", threshold=1.0, severity="ok")

    def test_bad_for_count_rejected(self):
        with pytest.raises(ValueError, match="for_count"):
            SloRule(metric="x", op="<", threshold=1.0, for_count=0)

    def test_parse_minimal(self):
        rule = SloRule.parse("decision_p95_s < 0.25")
        assert rule.metric == "decision_p95_s"
        assert rule.op == "<"
        assert rule.threshold == 0.25
        assert rule.severity == "degraded"
        assert rule.for_count == 1

    def test_parse_full(self):
        rule = SloRule.parse("latency: decision_p95_s <= 0.1 for 3 ! unhealthy")
        assert rule.name == "latency"
        assert rule.op == "<="
        assert rule.for_count == 3
        assert rule.severity == "unhealthy"

    def test_parse_spec_roundtrip(self):
        rule = SloRule(
            metric="cache_hit_ratio",
            op=">=",
            threshold=0.5,
            severity="unhealthy",
            for_count=2,
        )
        assert SloRule.parse(rule.spec()) == rule

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError, match="cannot parse"):
            SloRule.parse("what even is this")

    def test_severity_rank_order(self):
        assert [severity_rank(s) for s in SEVERITIES] == [0, 1, 2]


class TestHealthMonitor:
    def _monitor(self, **kw):
        return HealthMonitor(
            [SloRule(metric="p95", op="<", threshold=0.25, **kw)]
        )

    def test_healthy_no_edges(self):
        mon = self._monitor()
        assert mon.evaluate({"p95": 0.1}) == []
        assert mon.state == "ok"
        assert mon.active == []

    def test_fire_and_resolve_edges_once(self):
        mon = self._monitor()
        edges = mon.evaluate({"p95": 0.5}, epoch=3)
        assert [e["event"] for e in edges] == ["alert.fired"]
        assert edges[0]["since_epoch"] == 3
        assert mon.state == "degraded"
        # Steady violation: no repeated fire.
        assert mon.evaluate({"p95": 0.6}, epoch=4) == []
        edges = mon.evaluate({"p95": 0.1}, epoch=5)
        assert [e["event"] for e in edges] == ["alert.resolved"]
        assert mon.state == "ok"

    def test_for_count_hysteresis(self):
        mon = self._monitor(for_count=3)
        assert mon.evaluate({"p95": 0.5}, epoch=0) == []
        assert mon.evaluate({"p95": 0.5}, epoch=1) == []
        edges = mon.evaluate({"p95": 0.5}, epoch=2)
        assert [e["event"] for e in edges] == ["alert.fired"]

    def test_for_count_resets_on_pass(self):
        mon = self._monitor(for_count=2)
        mon.evaluate({"p95": 0.5}, epoch=0)
        mon.evaluate({"p95": 0.1}, epoch=1)  # healthy resets the streak
        assert mon.evaluate({"p95": 0.5}, epoch=2) == []

    def test_missing_metric_abstains(self):
        mon = self._monitor()
        assert mon.evaluate({}) == []
        assert mon.evaluate({"p95": None}) == []
        assert mon.state == "ok"

    def test_state_is_worst_active_severity(self):
        mon = HealthMonitor(
            [
                SloRule(metric="a", op="<", threshold=1.0, severity="degraded"),
                SloRule(metric="b", op="<", threshold=1.0, severity="unhealthy"),
            ]
        )
        mon.evaluate({"a": 2.0, "b": 2.0})
        assert mon.state == "unhealthy"
        assert [a.severity for a in mon.active] == ["unhealthy", "degraded"]

    def test_status_document(self):
        mon = self._monitor()
        mon.evaluate({"p95": 0.5}, epoch=1)
        doc = mon.status()
        assert doc["status"] == "degraded"
        assert len(doc["alerts"]) == 1
        assert doc["alerts"][0]["metric"] == "p95"
        assert doc["rules"] == [r.spec() for r in mon.rules]

    def test_picklable(self):
        import pickle

        mon = self._monitor()
        mon.evaluate({"p95": 0.5}, epoch=1)
        clone = pickle.loads(pickle.dumps(mon))
        assert clone.state == "degraded"
        # The clone continues the state machine where it left off.
        assert [e["event"] for e in clone.evaluate({"p95": 0.1})] == [
            "alert.resolved"
        ]


class TestDefaultRules:
    def test_latency_rule_fires_unhealthy_after_three(self):
        mon = HealthMonitor(default_rules(p95_budget_s=0.25))
        bad = {"decision_p95_s": 0.5, "benefit_drop_ratio": 0.0}
        mon.evaluate(bad)
        mon.evaluate(bad)
        edges = mon.evaluate(bad)
        assert [e["event"] for e in edges] == ["alert.fired"]
        assert mon.state == "unhealthy"

    def test_benefit_drop_rule(self):
        mon = HealthMonitor(default_rules(max_benefit_drop=0.5))
        edges = mon.evaluate(
            {"decision_p95_s": 0.001, "benefit_drop_ratio": 0.9}
        )
        assert [e["event"] for e in edges] == ["alert.fired"]
        assert mon.state == "degraded"

    def test_cache_hit_rule_optional(self):
        rules = default_rules(min_cache_hit_ratio=0.5)
        assert any(r.metric == "cache_hit_ratio" for r in rules)
        assert not any(
            r.metric == "cache_hit_ratio" for r in default_rules()
        )
