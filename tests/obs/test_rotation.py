"""Tests for JsonlSink size-based rotation and segment reconstruction."""

import json

import pytest

from repro.obs import JsonlSink, Telemetry
from repro.obs.sinks import iter_jsonl_records, jsonl_segments
from repro.obs.trace import load_events


def _emit_n(sink, n, start=0):
    for i in range(start, start + n):
        sink.emit({"event": "tick", "i": i})


class TestRotation:
    def test_no_rotation_by_default(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        _emit_n(sink, 100)
        sink.close()
        assert sink.rotations == 0
        assert jsonl_segments(tmp_path / "run.jsonl") == [tmp_path / "run.jsonl"]

    def test_rotates_at_size_limit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=200, backup_count=3)
        _emit_n(sink, 30)
        sink.close()
        assert sink.rotations > 0
        assert (tmp_path / "run.jsonl.1").exists()
        # Every segment respects the cap.
        for seg in jsonl_segments(path):
            assert seg.stat().st_size <= 200

    def test_backup_count_caps_segments(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=120, backup_count=2)
        _emit_n(sink, 60)
        sink.close()
        segments = jsonl_segments(path)
        assert len(segments) <= 3  # .2, .1, base
        assert not (tmp_path / "run.jsonl.3").exists()

    def test_backup_count_zero_truncates_in_place(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=120, backup_count=0)
        _emit_n(sink, 60)
        sink.close()
        assert sink.rotations > 0
        assert jsonl_segments(path) == [path]
        assert path.stat().st_size <= 120

    def test_oversize_single_record_still_written(self, tmp_path):
        # A record bigger than max_bytes rotates then writes anyway:
        # the limit bounds segments, it never drops data.
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=64, backup_count=1)
        sink.emit({"event": "big", "blob": "x" * 200})
        sink.emit({"event": "after"})
        sink.close()
        recs = list(iter_jsonl_records(path))
        assert [r["event"] for r in recs] == ["big", "after"]

    def test_validates_args(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(tmp_path / "x.jsonl", max_bytes=-1)
        with pytest.raises(ValueError, match="backup_count"):
            JsonlSink(tmp_path / "x.jsonl", backup_count=-1)


class TestReconstruction:
    def test_segments_ordered_oldest_first(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, max_bytes=150, backup_count=5)
        _emit_n(sink, 40)
        sink.close()
        order = [
            rec["i"] for rec in iter_jsonl_records(path)
        ]
        # Rotation must not reorder or duplicate the retained suffix.
        assert order == list(range(order[0], 40))

    def test_missing_base_reads_numbered_segments(self, tmp_path):
        path = tmp_path / "run.jsonl"
        (tmp_path / "run.jsonl.1").write_text(
            json.dumps({"event": "old"}) + "\n"
        )
        assert [r["event"] for r in iter_jsonl_records(path)] == ["old"]

    def test_tolerates_torn_and_blank_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"\n{"event": "c"}\n')
        assert [r["event"] for r in iter_jsonl_records(path)] == ["a", "c"]

    def test_no_segments_is_empty_iter(self, tmp_path):
        assert list(iter_jsonl_records(tmp_path / "ghost.jsonl")) == []
        assert jsonl_segments(tmp_path / "ghost.jsonl") == []

    def test_trace_load_events_spans_rotation(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = Telemetry()
        tel.enable(JsonlSink(path, max_bytes=400, backup_count=30))
        for i in range(50):
            tel.event("work", i=i)
        tel.disable()
        assert (tmp_path / "run.jsonl.1").exists()
        events = load_events(path)
        idx = [e["i"] for e in events if e.get("event") == "work"]
        assert idx == list(range(50))

    def test_trace_load_events_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events(tmp_path / "ghost.jsonl")
