"""Tests for the run report / compare analysis layer and its CLI."""

import json

import pytest

from repro.cli import main
from repro.obs.report import (
    WALL_TIME_SLACK_S,
    compare_runs,
    parse_threshold,
    render_markdown,
    render_text,
    summarize_events,
    summarize_file,
    to_json,
)

TRACE = "f" * 32
ROOT = "a" * 16


def _events(*, wall=1.0, benefit=0.8, n_iter=3, trace=TRACE):
    recs = [{"event": "trace.start", "ts": 100.0, "pid": 1, "trace_id": trace}]
    for i in range(1, n_iter + 1):
        recs.append(
            {
                "event": "bo.iteration",
                "ts": 100.0 + 0.1 * i,
                "pid": 1,
                "iteration": i,
                "batch_benefit": benefit * i / n_iter - 0.05,
                "incumbent_benefit": benefit * i / n_iter,
                "acquisition_value": 0.5 / i,
                "t_iteration_s": 0.1,
                "counters": {"bo.iterations": i},
            }
        )
        recs.append(
            {
                "event": "pref.diagnostics",
                "ts": 100.0 + 0.1 * i,
                "pid": 1,
                "iteration": i,
                "n_comparisons": 3 * i,
                "n_items": 10,
                "kendall_tau": 0.8,
            }
        )
    recs.append(
        {
            "event": "gp.diagnostics",
            "ts": 100.4,
            "pid": 1,
            "phase": "update",
            "iteration": n_iter,
            "objectives": {
                "acc": {
                    "noise": 1e-3,
                    "lengthscales": [0.3, 0.3],
                    "outputscale": 1.0,
                    "log_marginal_likelihood": -5.0,
                    "holdout_rmse": 0.01,
                }
            },
        }
    )
    recs.append(
        {
            "event": "span",
            "ts": 100.0 + wall,
            "pid": 1,
            "span": "cli.optimize",
            "name": "cli.optimize",
            "duration_s": wall,
            "start_ts": 100.0,
            "trace_id": trace,
            "span_id": ROOT,
            "parent_id": None,
            "tid": 1,
        }
    )
    recs.append(
        {
            "event": "optimize.done",
            "ts": 100.0 + wall,
            "pid": 1,
            "method": "PaMO",
            "seed": 0,
            "outcome": {
                "converged": True,
                "n_dm_queries": 9,
                "decision": {"benefit": benefit},
            },
        }
    )
    recs.append(
        {
            "event": "run.summary",
            "ts": 100.0 + wall,
            "pid": 1,
            "trace_id": trace,
            "report": {
                "counters": {"pamo.observed_decisions": 12},
                "gauges": {"pref.kendall_tau": 0.8},
                "spans": {
                    "cli.optimize": {
                        "count": 1,
                        "total_s": wall,
                        "min_s": wall,
                        "max_s": wall,
                        "p50_s": wall,
                        "p95_s": wall,
                    }
                },
            },
        }
    )
    return recs


def _write_log(path, **kw):
    path.write_text("".join(json.dumps(r) + "\n" for r in _events(**kw)))
    return path


class TestSummarize:
    def test_core_fields(self):
        s = summarize_events(_events())
        assert s.trace_id == TRACE
        assert s.method == "PaMO" and s.seed == 0
        assert s.n_iterations == 3
        assert s.converged is True
        assert s.final_benefit == pytest.approx(0.8)
        assert s.wall_time_s == pytest.approx(1.0)
        assert s.counters["pamo.observed_decisions"] == 12
        assert s.roots and s.roots[0].trace_id == TRACE
        assert s.orphan_parents == []

    def test_span_fallback_without_run_summary(self):
        events = [e for e in _events() if e["event"] != "run.summary"]
        s = summarize_events(events)
        assert s.spans["cli.optimize"]["count"] == 1
        assert s.spans["cli.optimize"]["p95_s"] == pytest.approx(1.0)
        # counters fall back to the last bo.iteration's cumulative dict
        assert s.counters == {"bo.iterations": 3}

    def test_to_json_is_serializable(self):
        d = to_json(summarize_events(_events()))
        json.dumps(d)
        assert d["trace_id"] == TRACE
        assert len(d["iterations"]) == 3
        assert d["pref_diagnostics"][0]["kendall_tau"] == 0.8

    def test_render_text_sections(self):
        text = render_text(summarize_events(_events()))
        for needle in (
            TRACE,
            "span tree",
            "convergence",
            "diagnostics per iteration",
            "outcome GPs",
            "top counters",
        ):
            assert needle in text

    def test_render_markdown_tables(self):
        md = render_markdown(summarize_events(_events()))
        assert "| field | value |" in md
        assert "## Span tree" in md
        assert "## Diagnostics per iteration" in md


class TestThreshold:
    def test_percent(self):
        assert parse_threshold("10%") == pytest.approx(0.10)

    def test_fraction(self):
        assert parse_threshold("0.25") == pytest.approx(0.25)

    def test_junk_raises(self):
        with pytest.raises(ValueError):
            parse_threshold("fast")

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            parse_threshold("-5%")


class TestCompare:
    def test_identical_runs_pass(self):
        s = summarize_events(_events())
        result = compare_runs(s, s, threshold=0.10)
        assert not result.regressed

    def test_slower_candidate_regresses(self):
        base = summarize_events(_events(wall=1.0))
        cand = summarize_events(_events(wall=2.0))
        result = compare_runs(base, cand, threshold=0.10)
        assert result.regressed
        assert [m.name for m in result.metrics if m.regressed] == ["wall_time_s"]

    def test_slack_absorbs_sub_threshold_noise(self):
        base = summarize_events(_events(wall=1.0))
        cand = summarize_events(_events(wall=1.0 + 0.8 * WALL_TIME_SLACK_S))
        assert not compare_runs(base, cand, threshold=0.10).regressed

    def test_lower_benefit_regresses(self):
        base = summarize_events(_events(benefit=0.8))
        cand = summarize_events(_events(benefit=0.6))
        result = compare_runs(base, cand, threshold=0.10)
        assert any(
            m.name == "final_benefit" and m.regressed for m in result.metrics
        )

    def test_more_iterations_regress(self):
        base = summarize_events(_events(n_iter=4))
        cand = summarize_events(_events(n_iter=8))
        result = compare_runs(base, cand, threshold=0.10)
        assert any(
            m.name == "bo_iterations" and m.regressed for m in result.metrics
        )

    def test_faster_higher_benefit_passes(self):
        base = summarize_events(_events(wall=2.0, benefit=0.5))
        cand = summarize_events(_events(wall=1.0, benefit=0.9))
        assert not compare_runs(base, cand, threshold=0.10).regressed


class TestReportCLI:
    def test_text_report(self, capsys, tmp_path):
        log = _write_log(tmp_path / "run.jsonl")
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert TRACE in out and "convergence" in out

    def test_json_report(self, capsys, tmp_path):
        log = _write_log(tmp_path / "run.jsonl")
        assert main(["report", str(log), "--format", "json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["n_iterations"] == 3

    def test_missing_file_errors(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_log_errors(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2


class TestCompareCLI:
    def test_identical_logs_exit_zero(self, capsys, tmp_path):
        a = _write_log(tmp_path / "a.jsonl")
        b = _write_log(tmp_path / "b.jsonl")
        assert main(["compare", str(a), str(b)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_slowed_candidate_exits_nonzero(self, capsys, tmp_path):
        a = _write_log(tmp_path / "a.jsonl", wall=1.0)
        b = _write_log(tmp_path / "b.jsonl", wall=3.0)
        assert main(["compare", str(a), str(b)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_custom_threshold_loosens_gate(self, capsys, tmp_path):
        a = _write_log(tmp_path / "a.jsonl", wall=1.0)
        b = _write_log(tmp_path / "b.jsonl", wall=3.0)
        assert main(["compare", str(a), str(b), "--threshold", "300%"]) == 0

    def test_bad_threshold_errors(self, capsys, tmp_path):
        a = _write_log(tmp_path / "a.jsonl")
        assert main(["compare", str(a), str(a), "--threshold", "soon"]) == 2

    def test_missing_candidate_errors(self, capsys, tmp_path):
        a = _write_log(tmp_path / "a.jsonl")
        assert main(["compare", str(a), str(tmp_path / "nope.jsonl")]) == 2


class TestTraceCLI:
    def test_export_default_path(self, capsys, tmp_path):
        log = _write_log(tmp_path / "run.jsonl")
        assert main(["trace", str(log)]) == 0
        out_path = tmp_path / "run.jsonl.trace.json"
        assert out_path.exists()
        doc = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_explicit_output(self, capsys, tmp_path):
        log = _write_log(tmp_path / "run.jsonl")
        out = tmp_path / "t.json"
        assert main(["trace", str(log), "-o", str(out)]) == 0
        json.loads(out.read_text())

    def test_empty_log_errors(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 2


class TestEndToEnd:
    def test_pamo_run_report_compare_cycle(self, capsys, tmp_path):
        """Acceptance: seeded run → report carries diagnostics + trace
        root; compare of a run against itself passes."""
        log = tmp_path / "run.jsonl"
        rc = main(
            ["pamo", "--streams", "2", "--servers", "2", "--seed", "1",
             "--telemetry", str(log)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry: trace" in out
        assert f"repro report {log}" in out

        s = summarize_file(log)
        assert s.trace_id and len(s.trace_id) == 32
        assert s.n_iterations >= 1
        assert s.pref_diagnostics and s.gp_diagnostics
        assert s.roots and s.roots[0].trace_id == s.trace_id
        assert s.orphan_parents == []
        assert "pamo.optimize" in {n.name for n in s.roots[0].walk()}

        assert main(["compare", str(log), str(log)]) == 0
