"""Tests for domain diagnostics emission (GP / preference / schedule)."""

import numpy as np
import pytest

from repro.obs import MemorySink, telemetry
from repro.obs.diagnostics import (
    emit_outcome_gp_diagnostics,
    emit_preference_diagnostics,
    emit_schedule_diagnostics,
    gp_hyperparameters,
    holdout_rmse,
    rank_agreement,
)
from repro.outcomes.functions import OBJECTIVES
from repro.outcomes.surrogate import OutcomeSurrogateBank
from repro.pref import DecisionMaker, LinearL1Preference, PreferenceLearner
from repro.sched import PeriodicStream


@pytest.fixture
def sink():
    telemetry.reset()
    s = MemorySink()
    telemetry.enable(s)
    yield s
    telemetry.disable()
    telemetry.reset()


def _fitted_bank(n=12, seed=0):
    gen = np.random.default_rng(seed)
    x = np.column_stack(
        [gen.uniform(200, 2000, n), gen.uniform(1, 30, n)]
    )
    y = gen.uniform(0.1, 1.0, (n, 5))
    return OutcomeSurrogateBank().fit(x, y, rng=seed), x, y


def _learner(seed=0):
    gen = np.random.default_rng(seed)
    space = gen.uniform(0, 1, (20, 5))
    pref = LinearL1Preference(
        weights=np.ones(5),
        utopia=np.array([0.0, 1.0, 0.0, 0.0, 0.0]),
        lo=np.zeros(5),
        hi=np.ones(5),
    )
    dm = DecisionMaker(pref, noise_scale=0.0, rng=seed)
    return PreferenceLearner(space, decision_maker=dm, rng=seed), dm


class TestRankAgreement:
    def test_perfect_agreement(self):
        assert rank_agreement([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert rank_agreement([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_collapses_to_zero(self):
        assert rank_agreement([1.0, 1.0, 1.0], [1, 2, 3]) == 0.0

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            rank_agreement([1, 2], [1, 2, 3])


class TestGPDiagnostics:
    def test_hyperparameters_snapshot(self):
        bank, _, _ = _fitted_bank()
        hp = gp_hyperparameters(bank.models["acc"])
        assert "noise" in hp
        assert "lengthscales" in hp and len(hp["lengthscales"]) >= 1
        assert "log_marginal_likelihood" in hp

    def test_holdout_rmse_keys_and_range(self):
        bank, x, y = _fitted_bank()
        rmse = holdout_rmse(bank, x, y)
        assert set(rmse) == set(OBJECTIVES)
        for v in rmse.values():
            assert np.isfinite(v) and v >= 0.0

    def test_emit_event_per_objective(self, sink):
        bank, x, y = _fitted_bank()
        emit_outcome_gp_diagnostics(bank, phase="fit", holdout=(x, y))
        evs = [r for r in sink.records if r["event"] == "gp.diagnostics"]
        assert len(evs) == 1
        objectives = evs[0]["objectives"]
        assert set(objectives) == set(OBJECTIVES)
        for d in objectives.values():
            assert "holdout_rmse" in d

    def test_precomputed_rmse_takes_precedence(self, sink):
        bank, x, y = _fitted_bank()
        emit_outcome_gp_diagnostics(bank, rmse={"acc": 0.123})
        ev = [r for r in sink.records if r["event"] == "gp.diagnostics"][0]
        assert ev["objectives"]["acc"]["holdout_rmse"] == 0.123
        assert "holdout_rmse" not in ev["objectives"]["ltc"]

    def test_noop_when_disabled(self):
        bank, _, _ = _fitted_bank()
        assert not telemetry.enabled
        emit_outcome_gp_diagnostics(bank)  # must not raise or emit


class TestPreferenceDiagnostics:
    def test_emits_kendall_tau_with_oracle(self, sink):
        learner, dm = _learner()
        learner.initialize(6)
        emit_preference_diagnostics(learner, oracle=dm.preference, iteration=1)
        evs = [r for r in sink.records if r["event"] == "pref.diagnostics"]
        assert len(evs) == 1
        assert evs[0]["n_comparisons"] == 6
        assert evs[0]["n_items"] == 20
        assert -1.0 <= evs[0]["kendall_tau"] <= 1.0
        assert telemetry.report()["gauges"]["pref.kendall_tau"] == evs[0]["kendall_tau"]

    def test_unfitted_learner_skips_tau(self, sink):
        learner, dm = _learner()
        emit_preference_diagnostics(learner, oracle=dm.preference)
        ev = [r for r in sink.records if r["event"] == "pref.diagnostics"][0]
        assert "kendall_tau" not in ev

    def test_none_learner_is_noop(self, sink):
        emit_preference_diagnostics(None)
        assert not [r for r in sink.records if r["event"] == "pref.diagnostics"]


class TestScheduleDiagnostics:
    def _streams(self):
        return [
            PeriodicStream(
                stream_id=i,
                fps=fps,
                resolution=960.0,
                processing_time=0.01,
                bits_per_frame=1.0,
            )
            for i, fps in enumerate([10.0, 5.0])
        ]

    def test_counters_for_valid_schedule(self, sink):
        emit_schedule_diagnostics(self._streams(), [0, 0])
        counters = telemetry.report()["counters"]
        assert counters["sched.schedules"] == 1
        assert counters["sched.groups"] == 1
        assert counters["sched.zero_jitter_groups"] == 1
        assert "sched.const1_violations" not in counters
        assert telemetry.report()["gauges"]["sched.max_utilization"] > 0

    def test_overloaded_schedule_counts_violations(self, sink):
        streams = [
            PeriodicStream(
                stream_id=i,
                fps=30.0,
                resolution=960.0,
                processing_time=0.05,
                bits_per_frame=1.0,
            )
            for i in range(2)
        ]
        emit_schedule_diagnostics(streams, [0, 0])
        counters = telemetry.report()["counters"]
        assert counters["sched.const1_violations"] == 1

    def test_unassigned_streams_excluded(self, sink):
        emit_schedule_diagnostics(self._streams(), [0, -1])
        assert telemetry.report()["counters"]["sched.groups"] == 1
