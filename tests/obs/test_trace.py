"""Tests for trace reconstruction and Chrome trace export."""

import json

import pytest

from repro.bench import run_parallel
from repro.obs import MemorySink, Telemetry, telemetry
from repro.obs.trace import (
    build_span_forest,
    load_events,
    orphan_parent_ids,
    to_chrome_trace,
    trace_ids,
    write_chrome_trace,
)


def _traced_arm(x):
    with telemetry.span("arm"):
        with telemetry.span("inner"):
            telemetry.counter("arm.calls")
    return x


@pytest.fixture
def log(tmp_path):
    return tmp_path / "run.jsonl"


def _record_simple_run(path):
    t = Telemetry()
    t.enable(path)
    with t.span("root"):
        with t.span("child"):
            pass
        with t.span("child"):
            pass
        t.event("bo.iteration", iteration=1, incumbent_benefit=0.5)
    t.emit_summary()
    t.disable()
    return t


class TestLoadEvents:
    def test_parses_jsonl(self, log):
        _record_simple_run(log)
        events = load_events(log)
        kinds = {e["event"] for e in events}
        assert {"trace.start", "span", "bo.iteration", "run.summary"} <= kinds

    def test_skips_blank_and_torn_lines(self, log):
        log.write_text('{"event": "a", "ts": 1.0}\n\n{"event": "b", "ts"')
        events = load_events(log)
        assert [e["event"] for e in events] == ["a"]


class TestSpanForest:
    def test_single_process_tree(self, log):
        _record_simple_run(log)
        events = load_events(log)
        roots = build_span_forest(events)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert root.parent_id is None
        assert [c.name for c in root.children] == ["child", "child"]
        assert orphan_parent_ids(events) == set()

    def test_walk_visits_all(self, log):
        _record_simple_run(log)
        roots = build_span_forest(load_events(log))
        names = [n.name for n in roots[0].walk()]
        assert names == ["root", "child", "child"]

    def test_root_carries_trace_id(self, log):
        t = _record_simple_run(log)
        events = load_events(log)
        roots = build_span_forest(events)
        assert roots[0].trace_id == t.trace_id
        assert trace_ids(events) == [t.trace_id]


class TestCrossProcessTrace:
    def test_merged_log_reconstructs_one_tree(self, log):
        """run_parallel workers join the parent trace: merged JSONL has a
        single trace ID, no orphaned parent IDs, and worker spans hang
        under the span enclosing the run_parallel call."""
        telemetry.reset()
        telemetry.enable(log)
        try:
            with telemetry.span("sweep"):
                out = run_parallel(
                    _traced_arm, [(i,) for i in range(3)], n_workers=2
                )
            telemetry.emit_summary()
            parent_trace = telemetry.trace_id
        finally:
            telemetry.disable()
            telemetry.reset()
        assert out == [0, 1, 2]

        events = load_events(log)
        assert trace_ids(events) == [parent_trace]
        assert orphan_parent_ids(events) == set()

        roots = build_span_forest(events)
        assert len(roots) == 1
        sweep = roots[0]
        assert sweep.name == "sweep"
        arms = [c for c in sweep.children if c.name == "arm"]
        assert len(arms) == 3
        for arm in arms:
            assert arm.trace_id == parent_trace
            assert [g.name for g in arm.children] == ["inner"]
        # at least two distinct worker processes contributed spans
        pids = {a.pid for a in arms}
        assert len(pids) >= 2

    def test_worker_events_report_their_own_pid(self, log):
        telemetry.reset()
        telemetry.enable(log)
        try:
            with telemetry.span("sweep"):
                run_parallel(_traced_arm, [(i,) for i in range(3)], n_workers=2)
        finally:
            telemetry.disable()
            telemetry.reset()
        events = load_events(log)
        arm_pids = {
            e["pid"] for e in events if e.get("event") == "span" and e["name"] == "arm"
        }
        sweep_pids = {
            e["pid"]
            for e in events
            if e.get("event") == "span" and e["name"] == "sweep"
        }
        assert arm_pids.isdisjoint(sweep_pids)


class TestChromeExport:
    def test_round_trips_json_loads(self, log, tmp_path):
        _record_simple_run(log)
        out = tmp_path / "trace.json"
        write_chrome_trace(load_events(log), out)
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc

    def test_span_events_are_complete_phases(self, log):
        _record_simple_run(log)
        doc = to_chrome_trace(load_events(log))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3  # root + 2 children
        for e in xs:
            assert e["ts"] >= 0
            assert e["dur"] >= 0
            assert "span_id" in e["args"]

    def test_instant_events_carry_kind(self, log):
        _record_simple_run(log)
        doc = to_chrome_trace(load_events(log))
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert "bo.iteration" in names

    def test_process_metadata_present(self, log):
        _record_simple_run(log)
        doc = to_chrome_trace(load_events(log))
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metas and metas[0]["name"] == "process_name"
