"""Tests for the repro.obs telemetry registry."""

import json
import threading

import pytest

from repro.obs import JsonlSink, MemorySink, NullSink, Telemetry, get_telemetry
from repro.obs import telemetry as global_telemetry
from repro.obs.telemetry import _NULL_SPAN, RESERVOIR_SIZE


@pytest.fixture
def tel():
    t = Telemetry()
    t.enable(MemorySink())
    yield t
    t.disable()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not Telemetry().enabled

    def test_span_returns_shared_null_span(self):
        t = Telemetry()
        assert t.span("a") is _NULL_SPAN
        assert t.span("b") is t.span("c")

    def test_null_span_is_context_manager(self):
        t = Telemetry()
        with t.span("x"):
            pass

    def test_counter_gauge_event_noop(self):
        t = Telemetry()
        t.counter("c")
        t.gauge("g", 1.0)
        t.event("e", x=1)
        rep = t.report()
        assert rep["counters"] == {}
        assert rep["gauges"] == {}
        assert rep["spans"] == {}

    def test_global_singleton(self):
        assert get_telemetry() is global_telemetry


class TestSpans:
    def test_records_count_and_time(self, tel):
        with tel.span("phase"):
            pass
        st = tel.report()["spans"]["phase"]
        assert st["count"] == 1
        assert st["total_s"] >= 0.0
        assert st["min_s"] <= st["max_s"]

    def test_nesting_builds_slash_paths(self, tel):
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        spans = tel.report()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert "inner" not in spans

    def test_span_emits_event(self, tel):
        with tel.span("a"):
            pass
        kinds = [r["event"] for r in tel.sink.records]
        assert "span" in kinds
        rec = [r for r in tel.sink.records if r["event"] == "span"][0]
        assert rec["span"] == "a"
        assert rec["duration_s"] >= 0.0

    def test_exception_still_closes_span(self, tel):
        with pytest.raises(RuntimeError):
            with tel.span("broken"):
                raise RuntimeError("boom")
        assert tel.report()["spans"]["broken"]["count"] == 1
        # the stack unwound: a new span is top-level again
        with tel.span("after"):
            pass
        assert "after" in tel.report()["spans"]


class TestCountersGaugesEvents:
    def test_counter_accumulates(self, tel):
        tel.counter("hits")
        tel.counter("hits", 2)
        assert tel.report()["counters"]["hits"] == 3

    def test_gauge_last_wins(self, tel):
        tel.gauge("temp", 1.0)
        tel.gauge("temp", 7.5)
        assert tel.report()["gauges"]["temp"] == 7.5

    def test_event_record_shape(self, tel):
        tel.event("bo.iteration", iteration=3, value=1.5)
        rec = tel.sink.records[-1]
        assert rec["event"] == "bo.iteration"
        assert rec["iteration"] == 3
        assert "ts" in rec

    def test_reset_clears(self, tel):
        tel.counter("c")
        with tel.span("s"):
            pass
        tel.reset()
        rep = tel.report()
        assert rep["counters"] == {} and rep["spans"] == {}


class TestSnapshotDelta:
    def test_report_since_snapshot_is_delta(self, tel):
        tel.counter("n", 5)
        snap = tel.snapshot()
        tel.counter("n", 2)
        tel.counter("fresh")
        rep = tel.report(since=snap)
        assert rep["counters"] == {"n": 2, "fresh": 1}

    def test_unchanged_spans_dropped_from_delta(self, tel):
        with tel.span("old"):
            pass
        snap = tel.snapshot()
        with tel.span("new"):
            pass
        rep = tel.report(since=snap)
        assert "old" not in rep["spans"]
        assert rep["spans"]["new"]["count"] == 1


class TestMergeReport:
    def test_counters_sum_and_spans_combine(self):
        a, b = Telemetry(), Telemetry()
        for t, n in ((a, 2), (b, 3)):
            t.enable()
            t.counter("arm.evals", n)
            with t.span("arm"):
                pass
            t.gauge("last_seed", n)
        parent = Telemetry()
        parent.enable()
        parent.merge_report(a.report())
        parent.merge_report(b.report())
        rep = parent.report()
        assert rep["counters"]["arm.evals"] == 5
        assert rep["spans"]["arm"]["count"] == 2
        assert rep["gauges"]["last_seed"] == 3
        for t in (a, b, parent):
            t.disable()

    def test_merge_none_is_noop(self, tel):
        tel.merge_report(None)
        assert tel.report()["counters"] == {}


class TestProfiling:
    def test_profile_top_functions(self):
        t = Telemetry()
        t.enable(profile=True)
        with t.span("work"):
            sum(i * i for i in range(1000))
        rep = t.report()
        t.disable()
        assert "profile" in rep
        assert rep["profile"]["top"]
        row = rep["profile"]["top"][0]
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(row)


class TestSinks:
    def test_jsonl_sink_writes_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        t = Telemetry()
        t.enable(path)
        assert isinstance(t.sink, JsonlSink)
        t.event("one", x=1)
        t.event("two", y=[1, 2])
        t.disable()
        lines = path.read_text().strip().splitlines()
        kinds = [json.loads(ln)["event"] for ln in lines]
        assert kinds == ["trace.start", "one", "two"]

    def test_null_sink_discards(self):
        s = NullSink()
        s.emit({"event": "x"})
        s.flush()
        s.close()

    def test_memory_sink_clear(self):
        s = MemorySink()
        s.emit({"event": "x"})
        assert len(s.records) == 1
        s.clear()
        assert s.records == []

    def test_jsonl_sink_concurrent_writes_stay_line_atomic(self, tmp_path):
        path = tmp_path / "concurrent.jsonl"
        sink = JsonlSink(path)
        n_threads, n_each = 4, 50

        def worker(tid):
            for i in range(n_each):
                sink.emit({"event": "e", "tid": tid, "i": i, "pad": "x" * 64})

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == n_threads * n_each
        for ln in lines:
            assert json.loads(ln)["event"] == "e"  # no torn/interleaved lines

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.emit({"event": "a"})
        sink.close()
        sink.close()


class TestTraceContext:
    def test_enable_assigns_trace_id(self):
        t = Telemetry()
        t.enable(MemorySink())
        assert t.trace_id and len(t.trace_id) == 32
        t.disable()

    def test_trace_start_event_emitted(self):
        t = Telemetry()
        sink = MemorySink()
        t.enable(sink)
        start = [r for r in sink.records if r["event"] == "trace.start"]
        assert len(start) == 1
        assert start[0]["trace_id"] == t.trace_id
        t.disable()

    def test_inherited_trace_and_parent(self):
        t = Telemetry()
        sink = MemorySink()
        t.enable(sink, trace_id="cafe" * 8, parent_span_id="beef" * 4)
        assert t.trace_id == "cafe" * 8
        assert t.current_span_id() == "beef" * 4
        with t.span("child"):
            pass
        rec = [r for r in sink.records if r["event"] == "span"][0]
        assert rec["trace_id"] == "cafe" * 8
        assert rec["parent_id"] == "beef" * 4
        t.disable()

    def test_nested_spans_link_parent_ids(self, tel):
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        spans = {r["name"]: r for r in tel.sink.records if r["event"] == "span"}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["span_id"] != spans["outer"]["span_id"]

    def test_fresh_enable_rotates_trace_id(self):
        t = Telemetry()
        t.enable(MemorySink())
        first = t.trace_id
        t.disable()
        t.enable(MemorySink())
        assert t.trace_id != first
        t.disable()

    def test_emit_raw_forwards_verbatim(self, tel):
        tel.emit_raw({"event": "span", "span_id": "x", "custom": 1})
        assert tel.sink.records[-1] == {"event": "span", "span_id": "x", "custom": 1}

    def test_emit_summary_embeds_report(self, tel):
        tel.counter("c", 2)
        tel.emit_summary(method="test")
        rec = [r for r in tel.sink.records if r["event"] == "run.summary"][0]
        assert rec["trace_id"] == tel.trace_id
        assert rec["method"] == "test"
        assert rec["report"]["counters"]["c"] == 2


class TestPercentiles:
    def test_report_includes_p50_p95(self, tel):
        for _ in range(10):
            with tel.span("work"):
                pass
        st = tel.report()["spans"]["work"]
        assert st["min_s"] <= st["p50_s"] <= st["p95_s"] <= st["max_s"]
        assert len(st["sample"]) == 10

    def test_reservoir_is_bounded(self, tel):
        for _ in range(RESERVOIR_SIZE * 3):
            with tel.span("hot"):
                pass
        st = tel.report()["spans"]["hot"]
        assert st["count"] == RESERVOIR_SIZE * 3
        assert len(st["sample"]) == RESERVOIR_SIZE

    def test_merge_folds_samples(self):
        a, b, parent = Telemetry(), Telemetry(), Telemetry()
        for t in (a, b):
            t.enable()
            for _ in range(5):
                with t.span("arm"):
                    pass
        parent.enable()
        parent.merge_report(a.report())
        parent.merge_report(b.report())
        st = parent.report()["spans"]["arm"]
        assert len(st["sample"]) == 10
        assert st["p95_s"] >= st["p50_s"]
        for t in (a, b, parent):
            t.disable()

    def test_merged_reservoir_stays_bounded(self):
        parent = Telemetry()
        parent.enable()
        for k in range(3):
            child = Telemetry()
            child.enable()
            for _ in range(RESERVOIR_SIZE):
                with child.span("arm"):
                    pass
            parent.merge_report(child.report())
            child.disable()
        st = parent.report()["spans"]["arm"]
        assert st["count"] == RESERVOIR_SIZE * 3
        assert len(st["sample"]) == RESERVOIR_SIZE
        parent.disable()
