"""Tests for the repro.obs telemetry registry."""

import json

import pytest

from repro.obs import JsonlSink, MemorySink, NullSink, Telemetry, get_telemetry
from repro.obs import telemetry as global_telemetry
from repro.obs.telemetry import _NULL_SPAN


@pytest.fixture
def tel():
    t = Telemetry()
    t.enable(MemorySink())
    yield t
    t.disable()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not Telemetry().enabled

    def test_span_returns_shared_null_span(self):
        t = Telemetry()
        assert t.span("a") is _NULL_SPAN
        assert t.span("b") is t.span("c")

    def test_null_span_is_context_manager(self):
        t = Telemetry()
        with t.span("x"):
            pass

    def test_counter_gauge_event_noop(self):
        t = Telemetry()
        t.counter("c")
        t.gauge("g", 1.0)
        t.event("e", x=1)
        rep = t.report()
        assert rep["counters"] == {}
        assert rep["gauges"] == {}
        assert rep["spans"] == {}

    def test_global_singleton(self):
        assert get_telemetry() is global_telemetry


class TestSpans:
    def test_records_count_and_time(self, tel):
        with tel.span("phase"):
            pass
        st = tel.report()["spans"]["phase"]
        assert st["count"] == 1
        assert st["total_s"] >= 0.0
        assert st["min_s"] <= st["max_s"]

    def test_nesting_builds_slash_paths(self, tel):
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        spans = tel.report()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert "inner" not in spans

    def test_span_emits_event(self, tel):
        with tel.span("a"):
            pass
        kinds = [r["event"] for r in tel.sink.records]
        assert "span" in kinds
        rec = [r for r in tel.sink.records if r["event"] == "span"][0]
        assert rec["span"] == "a"
        assert rec["duration_s"] >= 0.0

    def test_exception_still_closes_span(self, tel):
        with pytest.raises(RuntimeError):
            with tel.span("broken"):
                raise RuntimeError("boom")
        assert tel.report()["spans"]["broken"]["count"] == 1
        # the stack unwound: a new span is top-level again
        with tel.span("after"):
            pass
        assert "after" in tel.report()["spans"]


class TestCountersGaugesEvents:
    def test_counter_accumulates(self, tel):
        tel.counter("hits")
        tel.counter("hits", 2)
        assert tel.report()["counters"]["hits"] == 3

    def test_gauge_last_wins(self, tel):
        tel.gauge("temp", 1.0)
        tel.gauge("temp", 7.5)
        assert tel.report()["gauges"]["temp"] == 7.5

    def test_event_record_shape(self, tel):
        tel.event("bo.iteration", iteration=3, value=1.5)
        rec = tel.sink.records[-1]
        assert rec["event"] == "bo.iteration"
        assert rec["iteration"] == 3
        assert "ts" in rec

    def test_reset_clears(self, tel):
        tel.counter("c")
        with tel.span("s"):
            pass
        tel.reset()
        rep = tel.report()
        assert rep["counters"] == {} and rep["spans"] == {}


class TestSnapshotDelta:
    def test_report_since_snapshot_is_delta(self, tel):
        tel.counter("n", 5)
        snap = tel.snapshot()
        tel.counter("n", 2)
        tel.counter("fresh")
        rep = tel.report(since=snap)
        assert rep["counters"] == {"n": 2, "fresh": 1}

    def test_unchanged_spans_dropped_from_delta(self, tel):
        with tel.span("old"):
            pass
        snap = tel.snapshot()
        with tel.span("new"):
            pass
        rep = tel.report(since=snap)
        assert "old" not in rep["spans"]
        assert rep["spans"]["new"]["count"] == 1


class TestMergeReport:
    def test_counters_sum_and_spans_combine(self):
        a, b = Telemetry(), Telemetry()
        for t, n in ((a, 2), (b, 3)):
            t.enable()
            t.counter("arm.evals", n)
            with t.span("arm"):
                pass
            t.gauge("last_seed", n)
        parent = Telemetry()
        parent.enable()
        parent.merge_report(a.report())
        parent.merge_report(b.report())
        rep = parent.report()
        assert rep["counters"]["arm.evals"] == 5
        assert rep["spans"]["arm"]["count"] == 2
        assert rep["gauges"]["last_seed"] == 3
        for t in (a, b, parent):
            t.disable()

    def test_merge_none_is_noop(self, tel):
        tel.merge_report(None)
        assert tel.report()["counters"] == {}


class TestProfiling:
    def test_profile_top_functions(self):
        t = Telemetry()
        t.enable(profile=True)
        with t.span("work"):
            sum(i * i for i in range(1000))
        rep = t.report()
        t.disable()
        assert "profile" in rep
        assert rep["profile"]["top"]
        row = rep["profile"]["top"][0]
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(row)


class TestSinks:
    def test_jsonl_sink_writes_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        t = Telemetry()
        t.enable(path)
        assert isinstance(t.sink, JsonlSink)
        t.event("one", x=1)
        t.event("two", y=[1, 2])
        t.disable()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(ln)["event"] for ln in lines] == ["one", "two"]

    def test_null_sink_discards(self):
        s = NullSink()
        s.emit({"event": "x"})
        s.flush()
        s.close()

    def test_memory_sink_clear(self):
        s = MemorySink()
        s.emit({"event": "x"})
        assert len(s.records) == 1
        s.clear()
        assert s.records == []
