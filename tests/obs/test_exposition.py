"""Tests for repro.obs.exposition: Prometheus text + the HTTP endpoints."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, MetricsServer, render_prometheus
from repro.obs.exposition import CONTENT_TYPE_LATEST


def _get(url, path):
    return urllib.request.urlopen(f"{url}{path}", timeout=5)


class TestRenderPrometheus:
    def test_empty_registry_empty_body(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_golden_output(self):
        reg = MetricsRegistry(namespace="repro")
        reg.counter("serve_epochs_total", "epoch decisions made").inc(3)
        reg.gauge("serve_queue_depth", "events waiting").set(2)
        h = reg.histogram(
            "serve_decision_latency_seconds",
            "per-epoch decision latency",
            buckets=(0.01, 0.1),
        )
        # Dyadic values: the _sum line reprs exactly (0.5703125).
        h.observe(0.0078125)
        h.observe(0.0625)
        h.observe(0.5)
        assert render_prometheus(reg) == (
            "# HELP repro_serve_decision_latency_seconds"
            " per-epoch decision latency\n"
            "# TYPE repro_serve_decision_latency_seconds histogram\n"
            'repro_serve_decision_latency_seconds_bucket{le="0.01"} 1\n'
            'repro_serve_decision_latency_seconds_bucket{le="0.1"} 2\n'
            'repro_serve_decision_latency_seconds_bucket{le="+Inf"} 3\n'
            "repro_serve_decision_latency_seconds_sum 0.5703125\n"
            "repro_serve_decision_latency_seconds_count 3\n"
            "# HELP repro_serve_epochs_total epoch decisions made\n"
            "# TYPE repro_serve_epochs_total counter\n"
            "repro_serve_epochs_total 3\n"
            "# HELP repro_serve_queue_depth events waiting\n"
            "# TYPE repro_serve_queue_depth gauge\n"
            "repro_serve_queue_depth 2\n"
        )

    def test_no_help_line_when_help_empty(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        text = render_prometheus(reg)
        assert "# HELP" not in text
        assert "# TYPE repro_c counter" in text

    def test_integer_values_render_without_decimal(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.0)
        assert "repro_g 4\n" in render_prometheus(reg)

    def test_bucket_counts_are_cumulative_and_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in render_prometheus(reg).splitlines()
            if "_bucket" in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestMetricsServer:
    @pytest.fixture
    def served(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "scrape fodder").inc(5)
        health = {"status": "ok", "alerts": []}
        server = MetricsServer(
            reg,
            health=lambda: dict(health),
            varz=lambda: {"summary": {"epochs": 1}},
        )
        server.start()
        yield server, reg, health
        server.stop()

    def test_metrics_route(self, served):
        server, _, _ = served
        with _get(server.url, "/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == CONTENT_TYPE_LATEST
            body = resp.read().decode()
        assert "repro_hits_total 5" in body

    def test_healthz_ok_and_unhealthy_codes(self, served):
        server, _, health = served
        with _get(server.url, "/healthz") as resp:
            assert resp.status == 200
            assert json.loads(resp.read())["status"] == "ok"
        health["status"] = "unhealthy"
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server.url, "/healthz")
        assert exc_info.value.code == 503
        assert json.loads(exc_info.value.read())["status"] == "unhealthy"

    def test_healthz_degraded_is_200(self, served):
        server, _, health = served
        health["status"] = "degraded"
        with _get(server.url, "/healthz") as resp:
            assert resp.status == 200

    def test_varz_combines_metrics_health_service(self, served):
        server, _, _ = served
        with _get(server.url, "/varz") as resp:
            doc = json.loads(resp.read())
        assert doc["metrics"]["repro_hits_total"]["value"] == 5
        assert doc["health"]["status"] == "ok"
        assert doc["service"]["summary"]["epochs"] == 1

    def test_unknown_route_404(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server.url, "/nope")
        assert exc_info.value.code == 404

    def test_broken_varz_fn_is_500_not_crash(self):
        reg = MetricsRegistry()
        with MetricsServer(reg, varz=lambda: 1 / 0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _get(server.url, "/varz")
            assert exc_info.value.code == 500
            # The server survives: the next scrape still works.
            with _get(server.url, "/metrics") as resp:
                assert resp.status == 200

    def test_ephemeral_port_and_idempotent_lifecycle(self):
        server = MetricsServer(MetricsRegistry())
        port = server.start()
        assert port > 0
        assert server.start() == port
        server.stop()
        server.stop()

    def test_concurrent_scrape_while_updating(self):
        """Scrapes racing writer threads stay well-formed and monotone."""
        reg = MetricsRegistry()
        c = reg.counter("work_total")
        h = reg.histogram("lat_seconds", buckets=(0.001, 0.01, 0.1))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                c.inc()
                h.observe(0.002)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for th in threads:
            th.start()
        try:
            with MetricsServer(reg) as server:
                last_count = -1.0
                for _ in range(20):
                    with _get(server.url, "/metrics") as resp:
                        body = resp.read().decode()
                    sample = {}
                    for line in body.splitlines():
                        if line.startswith("#"):
                            continue
                        key, val = line.rsplit(" ", 1)
                        sample[key] = float(val)
                    # Counter never goes backwards across scrapes.
                    assert sample["repro_work_total"] >= last_count
                    last_count = sample["repro_work_total"]
                    # Histogram count equals its +Inf cumulative bucket:
                    # the scrape saw one consistent point-in-time view.
                    assert (
                        sample['repro_lat_seconds_bucket{le="+Inf"}']
                        == sample["repro_lat_seconds_count"]
                    )
        finally:
            stop.set()
            for th in threads:
                th.join()
