"""Tests for repro.obs.metrics: instruments, windows, registry bridge."""

import math
import threading

import pytest

from repro.obs import Ewma, MetricsRegistry, RollingWindow, Telemetry
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_WINDOW_SAMPLES,
    percentile,
    sanitize_metric_name,
)
from repro.obs.sinks import MemorySink


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestNames:
    def test_valid_name_unchanged(self):
        assert sanitize_metric_name("serve_epochs_total") == "serve_epochs_total"

    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.cache_hits") == "serve_cache_hits"

    def test_leading_digit_prefixed(self):
        name = sanitize_metric_name("3d.render")
        assert name.startswith("_")

    def test_idempotent(self):
        once = sanitize_metric_name("a.b-c d")
        assert sanitize_metric_name(once) == once


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_value(self):
        assert percentile([4.0], 0.5) == 4.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0

    def test_extremes(self):
        vals = sorted(float(i) for i in range(100))
        assert percentile(vals, 0.0) == 0.0
        assert percentile(vals, 1.0) == 99.0


class TestRollingWindow:
    def test_sample_bound(self):
        w = RollingWindow(max_samples=3, clock=FakeClock())
        for v in range(5):
            w.observe(float(v))
        assert w.values() == [2.0, 3.0, 4.0]

    def test_time_bound_prunes_old(self):
        clock = FakeClock()
        w = RollingWindow(horizon_s=10.0, max_samples=100, clock=clock)
        w.observe(1.0)
        clock.advance(5.0)
        w.observe(2.0)
        clock.advance(6.0)  # first sample now 11s old
        assert w.values() == [2.0]

    def test_percentiles_track_recent_samples_only(self):
        # The stale-reservoir regression: after a latency regime change,
        # windowed p95 must reflect the new regime, not run history.
        w = RollingWindow(max_samples=100, clock=FakeClock())
        for _ in range(1000):
            w.observe(0.001)
        for _ in range(100):
            w.observe(1.0)
        assert w.percentile(0.95) == pytest.approx(1.0)
        assert w.percentile(0.50) == pytest.approx(1.0)

    def test_rate_per_s(self):
        clock = FakeClock()
        w = RollingWindow(horizon_s=100.0, max_samples=1000, clock=clock)
        for _ in range(10):
            w.observe(1.0)
            clock.advance(1.0)
        assert w.rate_per_s() == pytest.approx(1.0)

    def test_snapshot_keys_and_empty(self):
        w = RollingWindow(clock=FakeClock())
        snap = w.snapshot()
        assert snap == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
            "p99": 0.0, "max": 0.0, "rate_per_s": 0.0,
        }
        w.observe(2.0)
        w.observe(4.0)
        snap = w.snapshot()
        assert snap["count"] == 2
        assert snap["mean"] == 3.0
        assert snap["max"] == 4.0

    def test_validates_args(self):
        with pytest.raises(ValueError, match="horizon_s"):
            RollingWindow(horizon_s=0.0)
        with pytest.raises(ValueError, match="max_samples"):
            RollingWindow(max_samples=0)


class TestEwma:
    def test_first_sample_is_value(self):
        e = Ewma(halflife_s=10.0, clock=FakeClock())
        assert e.update(5.0) == 5.0

    def test_halflife_semantics(self):
        clock = FakeClock()
        e = Ewma(halflife_s=10.0, clock=clock)
        e.update(0.0)
        clock.advance(10.0)
        # One half-life later, a new sample closes half the gap.
        assert e.update(1.0) == pytest.approx(0.5)

    def test_zero_dt_no_decay(self):
        clock = FakeClock()
        e = Ewma(halflife_s=10.0, clock=clock)
        e.update(1.0)
        assert e.update(100.0) == pytest.approx(1.0)

    def test_validates(self):
        with pytest.raises(ValueError, match="halflife_s"):
            Ewma(halflife_s=0.0)


class TestCounterGauge:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0


class TestHistogram:
    def test_cumulative_buckets_end_at_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        assert h.cumulative_buckets() == [(0.1, 1), (1.0, 2), (math.inf, 3)]
        assert h.count == 3
        assert h.sum == pytest.approx(2.55)

    def test_boundary_value_lands_in_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1)  # le is inclusive
        assert h.cumulative_buckets()[0] == (0.1, 1)

    def test_snapshot_has_window_stats(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.002)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["window"]["count"] == 1
        assert snap["buckets"][-1][0] == "+Inf"

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry().histogram("lat", buckets=())


class TestRegistry:
    def test_namespace_prefix(self):
        reg = MetricsRegistry(namespace="repro")
        c = reg.counter("epochs_total")
        assert c.name == "repro_epochs_total"
        # Already-prefixed names are not double-prefixed.
        assert reg.counter("repro_epochs_total") is c

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        assert "a" in reg
        assert len(reg) == 1

    def test_collect_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa")
        assert [n for n, _ in reg.collect()] == ["repro_aa", "repro_zz"]

    def test_to_dict_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        json.dumps(reg.to_dict())  # must not raise

    def test_bridge_hooks(self):
        reg = MetricsRegistry()
        reg.inc("serve.cache_hits", 3)
        reg.set("serve.depth", 7)
        reg.observe_span("serve.decision", 0.01)
        d = reg.to_dict()
        assert d["repro_serve_cache_hits"]["value"] == 3
        assert d["repro_serve_depth"]["value"] == 7
        assert d["repro_serve_decision_duration_seconds"]["count"] == 1

    def test_default_window_shape(self):
        h = MetricsRegistry().histogram("h")
        assert h.window.max_samples == DEFAULT_WINDOW_SAMPLES
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))


class TestTelemetryBridge:
    def test_counters_spans_gauges_mirrored(self):
        t = Telemetry()
        t.enable(MemorySink())
        reg = MetricsRegistry()
        t.attach_metrics(reg)
        try:
            t.counter("serve.epochs", 2)
            t.gauge("serve.benefit", 1.25)
            with t.span("serve.decision"):
                pass
        finally:
            t.attach_metrics(None)
            t.disable()
        d = reg.to_dict()
        assert d["repro_serve_epochs"]["value"] == 2
        assert d["repro_serve_benefit"]["value"] == 1.25
        assert d["repro_serve_decision_duration_seconds"]["count"] == 1

    def test_detach_stops_mirroring(self):
        t = Telemetry()
        t.enable(MemorySink())
        reg = MetricsRegistry()
        t.attach_metrics(reg)
        t.attach_metrics(None)
        t.counter("late", 1)
        t.disable()
        assert "late" not in reg


class TestThreadSafety:
    def test_concurrent_updates_sum_exactly(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        h = reg.histogram("lat", window_samples=10_000)
        n_threads, n_iter = 8, 500

        def work():
            for _ in range(n_iter):
                c.inc()
                h.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert c.value == n_threads * n_iter
        assert h.count == n_threads * n_iter
